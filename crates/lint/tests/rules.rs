//! Fixture-driven tests for each rule family: every rule has at least
//! one fixture proving it fires, and one proving the allowlist (or an
//! exemption) silences it. Fixtures live under `tests/fixtures/`, which
//! the workspace walker deliberately skips, and are linted under
//! *virtual* paths so crate/hot-path scoping applies.

use mlcd_lint::{lint_source, Rule};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint a fixture as if it lived at `virtual_path`; return the fired
/// rule names in order.
fn fired(virtual_path: &str, name: &str) -> Vec<&'static str> {
    lint_source(virtual_path, &fixture(name)).iter().map(|v| v.rule.name()).collect()
}

#[test]
fn hash_iter_fires_on_both_iteration_forms() {
    let v = lint_source("crates/core/src/search/policies/example.rs", &fixture("hash_iter_bad.rs"));
    let hash: Vec<_> = v.iter().filter(|v| v.rule == Rule::HashIter).collect();
    assert_eq!(hash.len(), 2, "for-loop + .values(): {v:?}");
    assert!(hash.iter().any(|v| v.message.contains("for .. in by_type")));
    assert!(hash.iter().any(|v| v.message.contains("by_type.values()")));
}

#[test]
fn hash_iter_is_scoped_to_ordered_crates() {
    // Same source under the bench crate (free to iterate) and under a
    // test target of an ordered crate: both clean.
    assert_eq!(fired("crates/bench/src/report.rs", "hash_iter_bad.rs"), Vec::<&str>::new());
    assert_eq!(fired("crates/core/tests/golden.rs", "hash_iter_bad.rs"), Vec::<&str>::new());
}

#[test]
fn hash_iter_allow_annotation_silences_the_line() {
    assert_eq!(
        fired("crates/core/src/search/policies/example.rs", "hash_iter_allowed.rs"),
        Vec::<&str>::new()
    );
}

#[test]
fn nondet_source_fires_outside_bench() {
    let rules = fired("crates/core/src/sim/clock.rs", "nondet_bad.rs");
    assert_eq!(rules, vec!["nondet-source", "nondet-source"]);
    let v = lint_source("crates/core/src/sim/clock.rs", &fixture("nondet_bad.rs"));
    assert!(v[0].message.contains("Instant::now()"));
    assert!(v[1].message.contains("thread_rng"));
}

#[test]
fn nondet_source_is_exempt_in_bench_crate() {
    assert_eq!(fired("crates/bench/src/timing.rs", "nondet_bad.rs"), Vec::<&str>::new());
}

#[test]
fn nondet_source_exemption_covers_only_the_service_net_layer() {
    // The connection layer may stamp log lines with the wall clock …
    assert_eq!(fired("crates/service/src/net/mod.rs", "net_clock.rs"), Vec::<&str>::new());
    assert_eq!(fired("crates/service/src/net/server.rs", "nondet_bad.rs"), Vec::<&str>::new());
    // … but the session path — everything that can feed a SearchOutcome —
    // stays under the full rule, as does the rest of the service crate.
    assert_eq!(
        fired("crates/service/src/net_clock_lookalike.rs", "net_clock.rs"),
        vec!["nondet-source"]
    );
    for session_path in [
        "crates/service/src/session.rs",
        "crates/service/src/journal.rs",
        "crates/service/src/cache.rs",
    ] {
        assert_eq!(
            fired(session_path, "nondet_bad.rs"),
            vec!["nondet-source", "nondet-source"],
            "{session_path} must stay under R2"
        );
    }
}

#[test]
fn float_cmp_fires_on_eq_and_partial_cmp_unwrap() {
    let rules = fired("crates/gp/src/kernels.rs", "float_cmp_bad.rs");
    assert_eq!(rules, vec!["float-cmp", "float-cmp"]);
}

#[test]
fn float_cmp_allow_and_test_module_exemption() {
    assert_eq!(fired("crates/gp/src/kernels.rs", "float_cmp_allowed.rs"), Vec::<&str>::new());
    assert_eq!(fired("crates/gp/src/kernels.rs", "float_cmp_testmod.rs"), Vec::<&str>::new());
}

#[test]
fn unsafe_without_safety_comment_fires_everywhere() {
    // Even the bench crate (exempt from R2) is held to unsafe hygiene.
    assert_eq!(fired("crates/bench/src/mem.rs", "unsafe_bad.rs"), vec!["unsafe-hygiene"]);
    assert_eq!(fired("crates/bench/src/mem.rs", "unsafe_good.rs"), Vec::<&str>::new());
}

#[test]
fn core_crate_roots_must_keep_forbid_unsafe() {
    // A crate root missing `#![forbid(unsafe_code)]` is a violation …
    let v = lint_source("crates/core/src/lib.rs", "pub fn x() {}\n");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::UnsafeHygiene);
    assert!(v[0].message.contains("forbid(unsafe_code)"));
    // … and the attribute satisfies it.
    let ok = lint_source("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\npub fn x() {}\n");
    assert!(ok.is_empty(), "{ok:?}");
    // Crates outside the pinned list are not required to carry it.
    let bench = lint_source("crates/bench/src/lib.rs", "pub fn x() {}\n");
    assert!(bench.is_empty(), "{bench:?}");
}

#[test]
fn hot_panic_fires_only_in_hot_paths() {
    assert_eq!(fired("crates/core/src/search/kernel.rs", "hot_panic_bad.rs"), vec!["hot-panic"]);
    // The same code one module over is fine.
    assert_eq!(fired("crates/core/src/search/trace.rs", "hot_panic_bad.rs"), Vec::<&str>::new());
}

#[test]
fn hot_index_fires_in_every_pinned_hot_path() {
    for hot in [
        "crates/core/src/search/kernel.rs",
        "crates/gp/src/fit.rs",
        "crates/linalg/src/chol.rs",
        "crates/cloudsim/src/sim.rs",
    ] {
        let rules = fired(hot, "hot_index_bad.rs");
        assert_eq!(rules, vec!["hot-index", "hot-index"], "{hot}");
    }
    // A non-pinned module in the same crate stays out of the discipline.
    assert_eq!(fired("crates/linalg/src/qr.rs", "hot_index_bad.rs"), Vec::<&str>::new());
}

#[test]
fn fn_scoped_allow_covers_the_whole_body() {
    assert_eq!(fired("crates/gp/src/fit.rs", "hot_allowed_fn.rs"), Vec::<&str>::new());
}

#[test]
fn file_scoped_allow_covers_every_site() {
    assert_eq!(fired("crates/linalg/src/chol.rs", "hot_allowed_file.rs"), Vec::<&str>::new());
}

#[test]
fn malformed_annotations_are_violations() {
    let v = lint_source("crates/core/src/anywhere.rs", &fixture("bad_annotation.rs"));
    let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec![Rule::BadAnnotation, Rule::BadAnnotation, Rule::BadAnnotation], "{v:?}");
    assert!(v[0].message.contains("no reason"), "{}", v[0].message);
    assert!(v[1].message.contains("unknown rule"), "{}", v[1].message);
    assert!(v[2].message.contains("unknown scope"), "{}", v[2].message);
}

#[test]
fn stale_allows_are_flagged() {
    let v = lint_source("crates/gp/src/kernels.rs", &fixture("unused_allow.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::UnusedAllow);
}

// --- R6: guard-across-blocking ---------------------------------------------

#[test]
fn guard_blocking_fires_on_the_rebroadened_submit_shape() {
    let v = lint_source("crates/core/src/queue.rs", &fixture("guard_bad.rs"));
    assert!(v.iter().all(|f| f.rule == Rule::GuardBlocking), "{v:?}");
    assert_eq!(v.len(), 4, "{v:?}");
    // The deliberately re-broadened PR 5 submit(): the queue guard is
    // live across the journal write and the fsync.
    assert!(
        v[0].message.contains("`queue`") && v[0].message.contains("write_all"),
        "{}",
        v[0].message
    );
    assert!(
        v[1].message.contains("`queue`") && v[1].message.contains("sync_data"),
        "{}",
        v[1].message
    );
    // A read guard held across file IO counts too.
    assert!(v[2].message.contains("`snapshot`"), "{}", v[2].message);
    // A second guard sleeping through a condvar wait (the wait only
    // consumes the guard it is handed).
    assert!(v[3].message.contains("`stats`") && v[3].message.contains("wait"), "{}", v[3].message);
}

#[test]
fn guard_blocking_is_silent_on_disciplined_sections() {
    // Scoped staging, drop(guard), shadowing, condvar loops, and a
    // Mutex<File> serializing its own IO are all sanctioned shapes.
    assert_eq!(fired("crates/core/src/queue.rs", "guard_good.rs"), Vec::<&str>::new());
}

#[test]
fn guard_blocking_allows_cover_line_fn_and_file_scopes() {
    assert_eq!(fired("crates/core/src/queue.rs", "guard_allowed.rs"), Vec::<&str>::new());
    assert_eq!(fired("crates/core/src/queue.rs", "guard_allowed_file.rs"), Vec::<&str>::new());
}

// --- R7: lock-order --------------------------------------------------------

#[test]
fn lock_order_fires_on_inversion_alias_shard_family_and_reentry() {
    let v = lint_source("crates/core/src/svc.rs", &fixture("lock_order_bad.rs"));
    assert!(v.iter().all(|f| f.rule == Rule::LockOrder), "{v:?}");
    assert_eq!(v.len(), 4, "{v:?}");
    assert!(v[0].message.contains("inversion") && v[0].message.contains("`control < state`"));
    // `registry_shards` canonicalises to `registry` via the declaration's
    // alias group.
    assert!(v[1].message.contains("`control < registry`"), "{}", v[1].message);
    assert!(v[2].message.contains("shards of one family"), "{}", v[2].message);
    assert!(v[3].message.contains("self-deadlocks"), "{}", v[3].message);
}

#[test]
fn lock_order_respects_declared_nesting() {
    assert_eq!(fired("crates/core/src/svc.rs", "lock_order_good.rs"), Vec::<&str>::new());
}

// --- R8: sim-handler purity ------------------------------------------------

#[test]
fn sim_handler_purity_is_scoped_to_handler_fns_in_handler_files() {
    let v = lint_source("crates/cloudsim/src/sim.rs", &fixture("handler_bad.rs"));
    let sim: Vec<_> = v.iter().filter(|f| f.rule == Rule::SimHandler).collect();
    assert_eq!(sim.len(), 3, "{v:?}");
    assert!(sim[0].message.contains("console IO"), "{}", sim[0].message);
    assert!(sim[1].message.contains("lock acquisition"), "{}", sim[1].message);
    assert!(sim[2].message.contains("wall-clock time"), "{}", sim[2].message);
    // The same source outside the pinned handler files carries no purity
    // contract.
    let away = lint_source("crates/core/src/sim.rs", &fixture("handler_bad.rs"));
    assert!(away.iter().all(|f| f.rule != Rule::SimHandler), "{away:?}");
}

#[test]
fn sim_handler_ignores_pure_handlers_and_effectful_non_handlers() {
    let v = lint_source("crates/cloudsim/src/sim.rs", &fixture("handler_good.rs"));
    assert!(v.iter().all(|f| f.rule != Rule::SimHandler), "{v:?}");
}

// --- R9: lock-unwrap discipline --------------------------------------------

#[test]
fn lock_unwrap_fires_only_in_service_outside_the_boundary() {
    let v = lint_source("crates/service/src/metrics.rs", &fixture("lock_unwrap_bad.rs"));
    let rules: Vec<_> = v.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec![Rule::LockUnwrap; 4], "{v:?}");
    // The designated boundary file may unwrap poison: that is its job.
    assert_eq!(fired("crates/service/src/sync.rs", "lock_unwrap_bad.rs"), Vec::<&str>::new());
    // Crates outside mlcd-service fall outside the discipline.
    assert_eq!(fired("crates/core/src/metrics.rs", "lock_unwrap_bad.rs"), Vec::<&str>::new());
}

#[test]
fn lock_unwrap_accepts_boundary_helpers_and_test_code() {
    assert_eq!(fired("crates/service/src/metrics.rs", "lock_unwrap_good.rs"), Vec::<&str>::new());
}
