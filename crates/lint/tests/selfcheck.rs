//! The lint's own acceptance gate: the shipped workspace must be clean
//! under `--deny`. This is the same check CI runs via
//! `cargo run -p mlcd-lint -- --deny`, exercised through the library so
//! a failure prints the diagnostics inline.

use mlcd_lint::{find_workspace_root, lint_workspace};

#[test]
fn workspace_lints_clean_in_deny_mode() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let violations = lint_workspace(&root).expect("workspace lint IO");
    assert!(
        violations.is_empty(),
        "mlcd-lint found {} violation(s) in the shipped workspace:\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule.name(), v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
