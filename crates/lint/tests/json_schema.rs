//! Pins the `--json` format-2 document shape. CI and editor tooling
//! parse this output; any change to the schema must bump
//! [`mlcd_lint::JSON_FORMAT`] and update this test deliberately.

use mlcd_lint::{to_json, Rule, Violation, JSON_FORMAT};

#[test]
fn format_version_is_two() {
    assert_eq!(JSON_FORMAT, 2);
}

#[test]
fn empty_report_shape() {
    assert_eq!(to_json(&[]), r#"{"format":2,"violations":[],"count":0}"#);
}

#[test]
fn violation_fields_and_order_are_pinned() {
    let v = vec![
        Violation {
            file: "crates/service/src/session.rs".into(),
            line: 12,
            col: 9,
            rule: Rule::GuardBlocking,
            message: "guard `q` is still live across blocking `sync_data`".into(),
        },
        Violation {
            file: "crates/service/src/cache.rs".into(),
            line: 3,
            col: 1,
            rule: Rule::LockUnwrap,
            message: "say \"why\"".into(),
        },
    ];
    let j = to_json(&v);
    assert_eq!(
        j,
        concat!(
            r#"{"format":2,"violations":["#,
            r#"{"file":"crates/service/src/session.rs","line":12,"col":9,"#,
            r#""rule":"guard-blocking","#,
            r#""message":"guard `q` is still live across blocking `sync_data`"},"#,
            r#"{"file":"crates/service/src/cache.rs","line":3,"col":1,"#,
            r#""rule":"lock-unwrap","message":"say \"why\""}"#,
            r#"],"count":2}"#
        )
    );
}

#[test]
fn every_rule_name_round_trips_through_the_schema() {
    // The `rule` field must hold exactly the names `--explain` accepts.
    for &rule in Rule::ALL {
        let v = vec![Violation { file: "x.rs".into(), line: 1, col: 1, rule, message: "m".into() }];
        let j = to_json(&v);
        assert!(j.contains(&format!("\"rule\":\"{}\"", rule.name())), "{j}");
    }
}
