// Fixture: R4 unsafe-hygiene must fire on `unsafe` without `// SAFETY:`.
pub fn read_first(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() }
}
