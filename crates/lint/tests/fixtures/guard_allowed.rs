// Fixture: reasoned allows silence R6 at line and fn scope.

use std::fs::File;
use std::io::Write as _;
use std::sync::Mutex;

struct Log {
    seq: Mutex<u64>,
    file: File,
}

impl Log {
    fn stamp(&mut self) {
        let mut seq = self.seq.lock().unwrap();
        *seq += 1;
        // lint: allow(guard-blocking) — seq must not advance until this line is on disk
        self.file.write_all(b"tick\n").ok();
    }

    // lint: allow(guard-blocking, fn) — single-writer file; the guard IS the write token
    fn stamp_twice(&mut self) {
        let mut seq = self.seq.lock().unwrap();
        *seq += 2;
        self.file.write_all(b"tick\n").ok();
        self.file.sync_data().ok();
    }
}
