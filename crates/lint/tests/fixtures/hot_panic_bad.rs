// Fixture: R5 hot-panic must fire on `.unwrap()` when linted under a
// kernel hot-path virtual path.
pub fn best(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
