// Fixture: nestings that respect the declared order — silent under R7.

// lint: lock-order: control < registry|registry_shards < state

use std::sync::Mutex;

struct Svc {
    control: Mutex<bool>,
    registry: Mutex<Vec<u64>>,
    registry_shards: Mutex<Vec<u64>>,
    queue_shards: Vec<Mutex<u64>>,
    state: Mutex<u64>,
}

impl Svc {
    // Declared order, outermost first: control, then registry, then state.
    fn ordered(&self) {
        let c = self.control.lock().unwrap();
        let r = self.registry.lock().unwrap();
        let s = self.state.lock().unwrap();
        drop(s);
        drop(r);
        drop(c);
    }

    // The alias sits at the same rank as its canonical name.
    fn ordered_alias(&self) {
        let c = self.control.lock().unwrap();
        let r = self.registry_shards.lock().unwrap();
        drop(r);
        drop(c);
    }

    // Shards of one family are fine taken one at a time: each guard is
    // scoped to its own block, so they are never held together.
    fn per_shard(&self, i: usize, j: usize) {
        {
            let a = self.queue_shards[i].lock().unwrap();
            drop(a);
        }
        {
            let b = self.queue_shards[j].lock().unwrap();
            drop(b);
        }
    }
}
