// Fixture: a reasoned trailing allow silences R1 on exactly that line.
use std::collections::HashMap;

pub fn total(obs: &[u32]) -> u64 {
    let mut by_type: HashMap<u32, u64> = HashMap::new();
    for o in obs {
        *by_type.entry(*o).or_insert(0) += 1;
    }
    by_type.values().sum() // lint: allow(hash-iter) — summation is order-independent
}
