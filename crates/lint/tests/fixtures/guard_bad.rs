// Fixture: every shape below holds a lock guard across a blocking call
// and must fire R6 (guard-blocking).

use std::fs::File;
use std::io::Write as _;
use std::sync::{Condvar, Mutex, RwLock};

struct Journal {
    queue: Mutex<Vec<String>>,
    file: File,
}

impl Journal {
    // The PR 5 `submit()` bug shape, deliberately re-broadened: the
    // queue guard stays live across the journal write AND the fsync.
    fn submit(&mut self, line: String) {
        let mut queue = self.queue.lock().unwrap();
        queue.push(line.clone());
        self.file.write_all(line.as_bytes()).ok(); // fires (write_all)
        self.file.sync_data().ok(); // fires (sync_data)
    }
}

struct Index {
    map: RwLock<Vec<u64>>,
}

// A read guard is still a guard: writers starve behind the snapshot.
fn flush(idx: &Index, out: &mut File) {
    let snapshot = idx.map.read().unwrap();
    out.write_all(format!("{}\n", snapshot.len()).as_bytes()).ok(); // fires
}

struct Pair {
    stats: Mutex<u64>,
    slot: Mutex<Option<u64>>,
    cv: Condvar,
}

// The wait consumes `slot` (fine) but `stats` sleeps with it: every
// other stats reader now waits for this condvar to signal.
fn take(p: &Pair) -> u64 {
    let stats = p.stats.lock().unwrap();
    let mut slot = p.slot.lock().unwrap();
    loop {
        if let Some(v) = slot.take() {
            return v + *stats;
        }
        slot = p.cv.wait(slot).unwrap(); // fires for `stats`, exempt for `slot`
    }
}
