// Fixture: a `// SAFETY:` comment directly above satisfies R4.
pub fn read_first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees xs has at least one element.
    unsafe { *xs.as_ptr() }
}
