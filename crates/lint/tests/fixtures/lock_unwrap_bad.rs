// Fixture: ad-hoc poison unwraps in the service crate — each marked
// line must fire R9 (lock-unwrap) outside the designated boundary file.

use std::sync::{Condvar, Mutex, RwLock};

struct Metrics {
    counts: Mutex<Vec<u64>>,
    names: RwLock<Vec<String>>,
    cv: Condvar,
}

impl Metrics {
    fn bump(&self, i: usize) {
        let mut counts = self.counts.lock().unwrap(); // fires
        counts[i] += 1;
    }

    fn name(&self, i: usize) -> String {
        self.names.read().expect("names poisoned")[i].clone() // fires
    }

    fn drain(&self) {
        let mut counts = self.counts.lock().unwrap(); // fires
        while counts.is_empty() {
            counts = self.cv.wait(counts).unwrap(); // fires
        }
        counts.clear();
    }
}
