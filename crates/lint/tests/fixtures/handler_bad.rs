// Fixture: effects inside sim event handlers — each marked line must
// fire R8 (sim-handler) when this file sits at a cloudsim handler path.

use std::sync::Mutex;

struct Provider {
    inflight: u64,
    log: Mutex<Vec<String>>,
}

enum Event {
    Launch,
    Done,
}

impl Provider {
    fn on_event(&mut self, ev: &Event) {
        match ev {
            Event::Launch => {
                self.inflight += 1;
                println!("launch at {}", self.inflight); // fires: console IO
            }
            Event::Done => {
                self.inflight -= 1;
                let mut log = self.log.lock().unwrap(); // fires: lock acquisition
                log.push(String::from("done"));
            }
        }
    }

    fn handle_retry(&mut self) {
        std::thread::sleep(std::time::Duration::from_millis(1)); // fires: sleep
        self.inflight += 1;
    }
}
