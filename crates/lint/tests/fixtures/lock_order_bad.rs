// Fixture: acquisitions that violate the file's declared lock order —
// every nested acquisition below must fire R7 (lock-order).

// lint: lock-order: control < registry|registry_shards < state

use std::sync::Mutex;

struct Svc {
    control: Mutex<bool>,
    registry: Mutex<Vec<u64>>,
    registry_shards: Mutex<Vec<u64>>,
    queue_shards: Vec<Mutex<u64>>,
    state: Mutex<u64>,
}

impl Svc {
    // Fires: `control` is declared before `state`, but is taken inside it.
    fn inverted(&self) {
        let st = self.state.lock().unwrap();
        let c = self.control.lock().unwrap(); // fires: inversion
        drop(c);
        drop(st);
    }

    // Fires through the alias: `registry_shards` canonicalises to
    // `registry`, which is declared after `control`.
    fn alias_inverted(&self) {
        let r = self.registry_shards.lock().unwrap();
        let c = self.control.lock().unwrap(); // fires: control < registry
        drop(c);
        drop(r);
    }

    // Fires: two shards of one family held at once (no declaration
    // needed — the family is recognised by name).
    fn cross_shard(&self, i: usize, j: usize) {
        let a = self.queue_shards[i].lock().unwrap();
        let b = self.queue_shards[j].lock().unwrap(); // fires: shard family
        drop(b);
        drop(a);
    }

    // Fires: re-acquiring the same std Mutex self-deadlocks.
    fn reentrant(&self) {
        let s = self.state.lock().unwrap();
        let t = self.state.lock().unwrap(); // fires: self-deadlock
        drop(t);
        drop(s);
    }
}
