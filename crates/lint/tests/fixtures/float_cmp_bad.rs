// Fixture: R3 float-cmp must fire on `== <float literal>` and on
// `partial_cmp(..).unwrap()`.
pub fn classify(x: f64, y: f64) -> bool {
    if x == 0.0 {
        return true;
    }
    x.partial_cmp(&y).unwrap() == std::cmp::Ordering::Less
}
