// Fixture: a free-standing `fn`-scoped allow covers the whole body.
// lint: allow(hot-index, fn) — i is bounded by the min-length computed on entry
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let mut acc = 0.0;
    for i in 0..n {
        acc += a[i] * b[i];
    }
    acc
}
