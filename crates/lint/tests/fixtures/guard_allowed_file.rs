// Fixture: one file-scoped allow covers every R6 finding in the file.
// lint: allow(guard-blocking, file) — bootstrap writer: single-threaded until serve() starts

use std::fs::File;
use std::io::Write as _;
use std::sync::Mutex;

struct Boot {
    manifest: Mutex<Vec<String>>,
    file: File,
}

impl Boot {
    fn record(&mut self, entry: String) {
        let mut m = self.manifest.lock().unwrap();
        m.push(entry);
        self.file.write_all(b"entry\n").ok();
    }

    fn seal(&mut self) {
        let m = self.manifest.lock().unwrap();
        let _n = m.len();
        self.file.sync_all().ok();
    }
}
