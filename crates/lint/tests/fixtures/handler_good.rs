// Fixture: a pure handler plus an effectful non-handler — silent under
// R8 even at a cloudsim handler path.

struct Provider {
    inflight: u64,
    peak: u64,
}

enum Event {
    Launch,
    Done,
}

impl Provider {
    // Pure function of (state, event): mutates own fields, touches no
    // IO, clock, thread, or lock.
    fn on_event(&mut self, ev: &Event) {
        match ev {
            Event::Launch => {
                self.inflight += 1;
                self.peak = self.peak.max(self.inflight);
            }
            Event::Done => {
                self.inflight -= 1;
            }
        }
    }

    // Not a handler name: the purity contract does not apply here. The
    // driver layer is where effects belong.
    fn report(&self) {
        println!("peak inflight: {}", self.peak);
    }
}
