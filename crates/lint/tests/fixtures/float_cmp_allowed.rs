// Fixture: a reasoned trailing allow silences R3 on exactly that line.
pub fn is_unset(x: f64) -> bool {
    x == 0.0 // lint: allow(float-cmp) — 0.0 is a sentinel set verbatim, never computed
}
