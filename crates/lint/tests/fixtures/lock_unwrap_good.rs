// Fixture: the disciplined shape — poison handling routed through the
// crate's one audited boundary. Silent under R9.

use crate::sync::{lock_or_die, wait_or_die};
use std::sync::{Condvar, Mutex};

struct Metrics {
    counts: Mutex<Vec<u64>>,
    cv: Condvar,
}

impl Metrics {
    fn bump(&self, i: usize) {
        let mut counts = lock_or_die(&self.counts, "metrics");
        counts[i] += 1;
    }

    fn drain(&self) {
        let mut counts = lock_or_die(&self.counts, "metrics");
        while counts.is_empty() {
            counts = wait_or_die(&self.cv, counts, "metrics");
        }
        counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test code may unwrap freely: a poisoned lock in a test should
    // fail the test loudly, and R9 is scoped to shipping code.
    #[test]
    fn bump_counts() {
        let m = Metrics { counts: Mutex::new(vec![0]), cv: Condvar::new() };
        m.bump(0);
        assert_eq!(m.counts.lock().unwrap()[0], 1);
    }
}
