// Fixture: R2 nondet-source must fire on wall-clock and OS entropy.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn seed() -> u64 {
    let mut r = thread_rng();
    r.next_u64()
}
