// Fixture: R5 hot-index must fire on direct slice indexing when linted
// under a kernel hot-path virtual path.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}
