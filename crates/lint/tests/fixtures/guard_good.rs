// Fixture: disciplined critical sections — nothing here may fire R6.

use std::fs::File;
use std::io::Write as _;
use std::sync::{Condvar, Mutex};

struct Journal {
    queue: Mutex<Vec<String>>,
    file: Mutex<File>,
    slot: Mutex<Option<u64>>,
    cv: Condvar,
}

impl Journal {
    // The PR 5 fix shape: stage under the lock inside a scope, then
    // block with no guard live.
    fn submit_scoped(&self, line: String) {
        let staged = {
            let mut queue = self.queue.lock().unwrap();
            queue.push(line);
            queue.concat()
        };
        let mut f = self.file.lock().unwrap();
        f.write_all(staged.as_bytes()).ok();
        f.sync_data().ok();
    }

    // Explicit `drop(guard)` before the write ends liveness early.
    fn submit_drop(&self, line: String) {
        let mut queue = self.queue.lock().unwrap();
        queue.push(line);
        let staged = queue.concat();
        drop(queue);
        let mut f = self.file.lock().unwrap();
        f.write_all(staged.as_bytes()).ok();
    }

    // Shadowing rebinds the name to plain data: the guard is dropped at
    // the second `let`, so the sync below holds nothing else.
    fn depth(&self) -> usize {
        let queue = self.queue.lock().unwrap();
        let queue = queue.len();
        let f = self.file.lock().unwrap();
        f.sync_data().ok();
        queue
    }

    // Condvar protocol: the wait consumes the one guard it is handed.
    fn take(&self) -> u64 {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(v) = *slot {
                return v;
            }
            slot = self.cv.wait(slot).unwrap();
        }
    }
}

// A mutex-wrapped File serializing its own IO is the sanctioned shape:
// the lock exists exactly to order these calls.
fn append(file: &Mutex<File>, line: &str) {
    let mut f = file.lock().unwrap();
    f.write_all(line.as_bytes()).ok();
    f.sync_data().ok();
}
