// Fixture: R1 hash-iter must fire on both iteration forms.
use std::collections::HashMap;

pub fn rates(obs: &[u32]) -> u64 {
    let mut by_type: HashMap<u32, u64> = HashMap::new();
    for o in obs {
        *by_type.entry(*o).or_insert(0) += 1;
    }
    let mut total = 0;
    for (k, v) in &by_type {
        total += u64::from(*k) + v;
    }
    total += by_type.values().sum::<u64>();
    total
}
