//! Fixture: the service connection layer's wall-clock log stamp — the
//! one legitimate nondet source outside the bench crate. Clean under
//! `crates/service/src/net/`, a violation anywhere else.

use std::time::{SystemTime, UNIX_EPOCH};

pub fn log_stamp() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}
