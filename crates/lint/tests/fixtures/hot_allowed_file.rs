// Fixture: a file-scoped allow covers every finding of that rule.
// lint: allow(hot-panic, file) — fixture: every Option below is statically Some
pub fn pick(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn last(xs: &[f64]) -> f64 {
    *xs.last().unwrap()
}
