// Fixture: malformed annotations are themselves violations, and cannot
// be annotated away.
pub fn f() {} // lint: allow(hash-iter)
pub fn g() {} // lint: allow(no-such-rule) — not a rule
pub fn h() {} // lint: allow(hash-iter, crate) — unknown scope
