// Fixture: an allow that suppresses nothing is flagged as stale.
pub fn f(x: f64) -> f64 {
    x + 1.0 // lint: allow(float-cmp) — stale: there is no comparison on this line
}
