// Fixture: float equality inside a `#[cfg(test)]` module is exempt.
pub fn double(x: f64) -> f64 {
    x * 2.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact() {
        assert!(super::double(1.0) == 2.0);
    }
}
