//! A small hand-rolled Rust lexer — just enough structure for the lint
//! rules in [`crate::rules`].
//!
//! The lexer splits a source file into a token stream (identifiers,
//! literals, punctuation) and a parallel comment list. Comments, string
//! literals and char literals are *stripped* from the token stream, so a
//! rule matching the identifier `thread_rng` can never fire on a doc
//! comment or an error-message string that merely mentions it. Comment
//! *text* is preserved separately because two rule families read it: the
//! `// SAFETY:` requirement on `unsafe` blocks and the
//! `// lint: allow(..)` escape-hatch annotations.
//!
//! This is not a full Rust lexer — no weird-raw-identifier corners, no
//! floating suffix validation — but it handles everything that decides
//! whether a rule match is real: nested block comments, raw strings with
//! `#` fences, byte/char literals, lifetimes vs. char literals, and float
//! vs. range punctuation (`1.0` vs `1..2`).

/// One lexed token with its 1-based source line and column.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based byte column the token starts on (diagnostics are
    /// byte-column, like rustc's default).
    pub col: u32,
    /// What the token is.
    pub kind: Tok,
}

/// Token kinds the rules distinguish.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `HashMap`, `unsafe`, …).
    Ident(String),
    /// A lifetime such as `'a` (name dropped — no rule reads it).
    Lifetime,
    /// Integer literal (any base), including suffixed forms.
    Int,
    /// Floating-point literal (`1.0`, `1e-9`, `2f64`, …).
    Float,
    /// String / char / byte-string literal. Contents are dropped.
    Str,
    /// Punctuation; multi-character operators arrive joined (`==`, `::`).
    Punct(&'static str),
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(q) if *q == p)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == name)
    }
}

/// A comment with its position and whether code precedes it on its line.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based byte column the comment starts on.
    pub col: u32,
    /// Text after the `//` / inside the `/* */`, untrimmed.
    pub text: String,
    /// `true` when a token appeared earlier on the same line (a trailing
    /// comment annotates *its own* line; a free-standing one annotates the
    /// next code line).
    pub trailing: bool,
}

/// The lexer output: tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct LexOut {
    /// All non-comment, non-whitespace tokens.
    pub tokens: Vec<Token>,
    /// All comments (line and block, doc or not).
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lex `src` into tokens + comments. Never fails: unrecognised bytes are
/// skipped (the lint runs on code that already compiles, so anything the
/// lexer cannot classify cannot matter to the rules either).
pub fn lex(src: &str) -> LexOut {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = LexOut::default();
    // Line of the most recently emitted token, to classify trailing
    // comments.
    let mut last_tok_line = 0u32;

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos + 2;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.comments.push(Comment { line, col, text, trailing: last_tok_line == line });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while depth > 0 {
                    if cur.starts_with("/*") {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    } else if cur.starts_with("*/") {
                        depth -= 1;
                        end = cur.pos;
                        cur.bump();
                        cur.bump();
                    } else if cur.bump().is_none() {
                        end = cur.pos;
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&cur.src[start..end]).into_owned();
                out.comments.push(Comment { line, col, text, trailing: last_tok_line == line });
            }
            b'"' => {
                cur.bump();
                scan_string_body(&mut cur);
                out.tokens.push(Token { line, col, kind: Tok::Str });
                last_tok_line = line;
            }
            b'\'' => {
                if scan_char_or_lifetime(&mut cur, &mut out, line, col) {
                    last_tok_line = line;
                }
            }
            c if c.is_ascii_digit() => {
                let kind = scan_number(&mut cur);
                out.tokens.push(Token { line, col, kind });
                last_tok_line = line;
            }
            c if is_ident_start(c) => {
                if let Some(kind) = scan_raw_or_byte_string(&mut cur) {
                    out.tokens.push(Token { line, col, kind });
                } else {
                    let start = cur.pos;
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                    out.tokens.push(Token { line, col, kind: Tok::Ident(text) });
                }
                last_tok_line = line;
            }
            _ => {
                let mut matched = false;
                for op in OPS {
                    if cur.starts_with(op) {
                        for _ in 0..op.len() {
                            cur.bump();
                        }
                        out.tokens.push(Token { line, col, kind: Tok::Punct(op) });
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    cur.bump();
                    out.tokens.push(Token { line, col, kind: Tok::Punct(single_punct(c)) });
                }
                last_tok_line = line;
            }
        }
    }
    out
}

/// Map a single punctuation byte to a static string (interned table keeps
/// `Tok::Punct` allocation-free).
fn single_punct(c: u8) -> &'static str {
    match c {
        b'#' => "#",
        b'!' => "!",
        b'(' => "(",
        b')' => ")",
        b'[' => "[",
        b']' => "]",
        b'{' => "{",
        b'}' => "}",
        b'<' => "<",
        b'>' => ">",
        b',' => ",",
        b';' => ";",
        b':' => ":",
        b'.' => ".",
        b'=' => "=",
        b'&' => "&",
        b'|' => "|",
        b'+' => "+",
        b'-' => "-",
        b'*' => "*",
        b'/' => "/",
        b'%' => "%",
        b'^' => "^",
        b'?' => "?",
        b'@' => "@",
        b'$' => "$",
        b'~' => "~",
        _ => "<?>",
    }
}

/// Consume a (non-raw) string body after the opening `"`, honouring `\`
/// escapes.
fn scan_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// After a `'`: either a char literal (emitted as [`Tok::Str`]) or a
/// lifetime. Returns whether a token was emitted.
fn scan_char_or_lifetime(cur: &mut Cursor<'_>, out: &mut LexOut, line: u32, col: u32) -> bool {
    cur.bump(); // the opening quote
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal: consume to the closing quote.
            cur.bump();
            cur.bump(); // the escaped character
            while cur.peek().is_some_and(|c| c != b'\'') {
                cur.bump(); // \u{..} bodies
            }
            cur.bump();
            out.tokens.push(Token { line, col, kind: Tok::Str });
            true
        }
        Some(c) if is_ident_start(c) => {
            // `'a` — lifetime unless a closing quote follows (`'a'`).
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            if cur.peek() == Some(b'\'') {
                cur.bump();
                out.tokens.push(Token { line, col, kind: Tok::Str });
            } else {
                out.tokens.push(Token { line, col, kind: Tok::Lifetime });
            }
            true
        }
        Some(_) => {
            // `'.'`, `' '`, … — plain char literal.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            out.tokens.push(Token { line, col, kind: Tok::Str });
            true
        }
        None => false,
    }
}

/// Raw / byte / C strings (`r".."`, `r#".."#`, `b".."`, `br#".."#`,
/// `c".."`) and raw identifiers (`r#name`). Returns the literal token if
/// one was consumed, `None` if the caller should lex a plain identifier.
fn scan_raw_or_byte_string(cur: &mut Cursor<'_>) -> Option<Tok> {
    let rest = &cur.src[cur.pos..];
    let prefix_len = [b"br".as_slice(), b"cr", b"rb", b"r", b"b", b"c"]
        .iter()
        .find(|p| rest.starts_with(p))
        .map(|p| p.len())?;
    let after = &rest[prefix_len..];
    let raw = rest[..prefix_len].contains(&b'r');
    let hashes = after.iter().take_while(|&&c| c == b'#').count();
    let body = &after[hashes..];
    if hashes > 0 && !raw {
        return None; // `b#` is not a string prefix
    }
    if body.first() != Some(&b'"') {
        if raw && hashes > 0 && body.first().is_some_and(|&c| is_ident_start(c)) {
            // Raw identifier `r#name`: consume the fence and let the
            // caller's ident path handle the name next time round.
            for _ in 0..prefix_len + hashes {
                cur.bump();
            }
        }
        return None;
    }
    // Consume prefix, fence and opening quote.
    for _ in 0..prefix_len + hashes + 1 {
        cur.bump();
    }
    if raw {
        let close: Vec<u8> =
            std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
        loop {
            if cur.src[cur.pos..].starts_with(&close) {
                for _ in 0..close.len() {
                    cur.bump();
                }
                break;
            }
            if cur.bump().is_none() {
                break;
            }
        }
    } else {
        scan_string_body(cur);
    }
    Some(Tok::Str)
}

/// Consume a numeric literal, deciding int vs float.
fn scan_number(cur: &mut Cursor<'_>) -> Tok {
    let mut float = false;
    // Hex/octal/binary literals cannot be floats; eat and return.
    if cur.peek() == Some(b'0')
        && matches!(cur.peek_at(1), Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X'))
    {
        cur.bump();
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            cur.bump();
        }
        return Tok::Int;
    }
    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump();
    }
    // A `.` makes it a float unless it starts a range (`1..n`) or a
    // method/field access (`1.max(2)`, tuple `.0` handled by digit check).
    if cur.peek() == Some(b'.') {
        let next = cur.peek_at(1);
        let is_range = next == Some(b'.');
        let is_method = next.is_some_and(is_ident_start);
        if !is_range && !is_method {
            float = true;
            cur.bump();
            while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                cur.bump();
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
        let (sign, digit) = (cur.peek_at(1), cur.peek_at(2));
        let signed =
            matches!(sign, Some(b'+') | Some(b'-')) && digit.is_some_and(|c| c.is_ascii_digit());
        let bare = sign.is_some_and(|c| c.is_ascii_digit());
        if signed || bare {
            float = true;
            cur.bump(); // e
            if signed {
                cur.bump();
            }
            while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                cur.bump();
            }
        }
    }
    // Suffix (`f64`, `u32`, …): an `f` suffix forces float.
    if cur.peek().is_some_and(is_ident_start) {
        if cur.peek() == Some(b'f') {
            float = true;
        }
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
    if float {
        Tok::Float
    } else {
        Tok::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let out = lex("let x = \"thread_rng\"; // thread_rng\n/* Instant::now */ let y = 1;");
        assert!(out.tokens.iter().all(|t| !t.kind.is_ident("thread_rng")));
        assert!(out.tokens.iter().all(|t| !t.kind.is_ident("Instant")));
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].trailing);
        assert!(!out.comments[1].trailing);
    }

    #[test]
    fn float_vs_range_vs_method() {
        assert_eq!(kinds("1.0"), vec![Tok::Float]);
        assert_eq!(kinds("1e-9"), vec![Tok::Float]);
        assert_eq!(kinds("2f64"), vec![Tok::Float]);
        assert_eq!(kinds("3u32"), vec![Tok::Int]);
        assert_eq!(
            kinds("1..2"),
            vec![Tok::Int, Tok::Punct(".."), Tok::Int],
            "range is not a float"
        );
        assert_eq!(
            kinds("1.max(2)"),
            vec![
                Tok::Int,
                Tok::Punct("."),
                Tok::Ident("max".into()),
                Tok::Punct("("),
                Tok::Int,
                Tok::Punct(")")
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("&'a str"),
            vec![Tok::Punct("&"), Tok::Lifetime, Tok::Ident("str".into())]
        );
        assert_eq!(kinds("'a'"), vec![Tok::Str]);
        assert_eq!(kinds("'\\n'"), vec![Tok::Str]);
    }

    #[test]
    fn raw_strings_with_fences() {
        assert_eq!(kinds(r###"r#"unsafe { " } "#"###), vec![Tok::Str]);
        assert_eq!(kinds("b\"bytes\""), vec![Tok::Str]);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* a /* b */ c */ fn");
        assert_eq!(out.tokens.len(), 1);
        assert!(out.tokens[0].kind.is_ident("fn"));
    }

    #[test]
    fn multi_char_ops_join() {
        assert_eq!(
            kinds("a == b != c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("=="),
                Tok::Ident("b".into()),
                Tok::Punct("!="),
                Tok::Ident("c".into())
            ]
        );
        assert_eq!(
            kinds("Instant::now"),
            vec![Tok::Ident("Instant".into()), Tok::Punct("::"), Tok::Ident("now".into())]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let out = lex("a\nb\n\nc");
        let lines: Vec<u32> = out.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn columns_are_tracked() {
        let out = lex("let x = 1;\n  foo.bar();");
        let pos: Vec<(u32, u32)> = out.tokens.iter().map(|t| (t.line, t.col)).collect();
        assert_eq!(
            pos,
            vec![
                (1, 1),
                (1, 5),
                (1, 7),
                (1, 9),
                (1, 10),
                (2, 3),
                (2, 6),
                (2, 7),
                (2, 10),
                (2, 11),
                (2, 12)
            ]
        );
        let c = &lex("x; // trailing").comments[0];
        assert_eq!((c.line, c.col), (1, 4));
    }
}
