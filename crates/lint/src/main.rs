#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! CLI for the workspace determinism & numeric-safety lint.
//!
//! ```text
//! mlcd-lint [--deny] [--json] [--root <dir>]
//! ```
//!
//! * `--deny` — exit 1 when any violation is found (CI mode).
//! * `--json` — machine-readable output instead of `file:line` diagnostics.
//! * `--root` — workspace root; defaults to walking up from the current
//!   directory to the first `Cargo.toml` with a `[workspace]` section.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("mlcd-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: mlcd-lint [--deny] [--json] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mlcd-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match mlcd_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("mlcd-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let violations = match mlcd_lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("mlcd-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", mlcd_lint::to_json(&violations));
    } else {
        for v in &violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule.name(), v.message);
        }
        if violations.is_empty() {
            println!("mlcd-lint: clean ({} mode)", if deny { "deny" } else { "warn" });
        } else {
            println!("mlcd-lint: {} violation(s)", violations.len());
        }
    }

    if deny && !violations.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
