#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! CLI for the workspace determinism & concurrency-discipline lint.
//!
//! ```text
//! mlcd-lint [--deny] [--json] [--github] [--root <dir>] [--explain <rule>]
//! ```
//!
//! * `--deny` — exit 1 when any violation is found (CI mode).
//! * `--json` — machine-readable output (`"format": 2` schema) instead of
//!   `file:line:col` diagnostics.
//! * `--github` — additionally emit GitHub Actions annotations
//!   (`::error file=..,line=..,col=..::..`) so findings surface inline on
//!   pull requests.
//! * `--root` — workspace root; defaults to walking up from the current
//!   directory to the first `Cargo.toml` with a `[workspace]` section.
//! * `--explain <rule>` — print a rule's rationale and allow-grammar
//!   (the same text DESIGN.md §8 summarises) and exit. `--explain all`
//!   lists every rule.

use std::path::PathBuf;
use std::process::ExitCode;

use mlcd_lint::Rule;

fn explain(arg: &str) -> ExitCode {
    if arg == "all" {
        for (i, rule) in Rule::ALL.iter().enumerate() {
            if i > 0 {
                println!();
            }
            println!("{}", rule.explain());
        }
        return ExitCode::SUCCESS;
    }
    match Rule::from_allow_name(arg).or_else(|| Rule::ALL.iter().copied().find(|r| r.name() == arg))
    {
        Some(rule) => {
            println!("{}", rule.explain());
            ExitCode::SUCCESS
        }
        None => {
            let names: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
            eprintln!("mlcd-lint: unknown rule `{arg}` — one of: {}", names.join(", "));
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut github = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--github" => github = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("mlcd-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next() {
                Some(rule) => return explain(&rule),
                None => {
                    eprintln!("mlcd-lint: --explain needs a rule name (or `all`)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: mlcd-lint [--deny] [--json] [--github] [--root <dir>] \
                     [--explain <rule>|all]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mlcd-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match mlcd_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("mlcd-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let violations = match mlcd_lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("mlcd-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", mlcd_lint::to_json(&violations));
    } else {
        for v in &violations {
            println!("{}:{}:{}: [{}] {}", v.file, v.line, v.col, v.rule.name(), v.message);
        }
        if violations.is_empty() {
            println!("mlcd-lint: clean ({} mode)", if deny { "deny" } else { "warn" });
        } else {
            println!("mlcd-lint: {} violation(s)", violations.len());
        }
    }
    if github {
        // GitHub Actions workflow commands; `%`, `\r`, `\n` must be
        // URL-style escaped in the message body.
        for v in &violations {
            let msg: String =
                v.message.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A");
            println!(
                "::error file={},line={},col={},title=mlcd-lint {}::{}",
                v.file,
                v.line,
                v.col,
                v.rule.name(),
                msg
            );
        }
    }

    if deny && !violations.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
