//! A lightweight syntax layer over the token stream — just enough
//! structure for the scope-aware concurrency rules (R6–R9).
//!
//! [`crate::lexer`] gives a flat token list; this module recovers the
//! shapes those rules need: the brace-nesting tree, `fn` item spans,
//! statement boundaries, `let` bindings with shadowing, explicit
//! `drop(x)` calls, lock-acquisition sites and blocking-call sites. It is
//! still deliberately lexical — no type information, no expression
//! parsing — so every recogniser below is written to fail *closed for
//! noise*: when a shape is ambiguous (tuple patterns, `if let`, guards
//! that keep being method-chained), the binding is simply not tracked and
//! the rule stays silent rather than guessing.

use crate::lexer::{Tok, Token};

/// A matched `{ .. }` pair, as token indices.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Index of the `{` token.
    pub open: usize,
    /// Index of the matching `}` token.
    pub close: usize,
}

/// A `fn` item with a body: `fn <name> .. { .. }`.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Index of the `fn` keyword token.
    pub fn_idx: usize,
    /// Index of the body's `{`.
    pub open: usize,
    /// Index of the body's `}`.
    pub close: usize,
}

/// A simple `let [mut] <name> [: ty] = <expr>;` binding. Tuple, struct
/// and `if let`/`while let` patterns are not tracked (understood
/// false-negative mode — see module docs).
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// The bound name.
    pub name: String,
    /// Index of the `let` keyword.
    pub let_idx: usize,
    /// Index of the first RHS token (just past `=`).
    pub rhs_start: usize,
    /// Index of the statement-terminating `;`.
    pub stmt_end: usize,
    /// Index where the binding's liveness ends: the earliest of the
    /// enclosing block's `}`, an explicit `drop(<name>)`, or a shadowing
    /// `let <name>` in the same block.
    pub live_end: usize,
    /// Index of the `{` of the innermost enclosing block (`usize::MAX`
    /// when the binding is at the top level, which real code never is).
    pub scope_open: usize,
}

/// The assembled syntax facts for one file.
#[derive(Debug)]
pub struct Syntax {
    /// All matched brace pairs, in source order of their `{`.
    pub blocks: Vec<Block>,
    /// All `fn` items that have a body.
    pub fns: Vec<FnItem>,
    /// All tracked `let` bindings.
    pub lets: Vec<LetBinding>,
}

impl Syntax {
    /// Build the syntax facts for a token stream.
    pub fn build(toks: &[Token]) -> Syntax {
        let blocks = match_blocks(toks);
        let fns = fn_items(toks, &blocks);
        let lets = let_bindings(toks, &blocks);
        Syntax { blocks, fns, lets }
    }
}

/// Match every `{`/`}` pair with a simple stack. Unbalanced braces (which
/// cannot occur in compiling code) close at end of stream.
fn match_blocks(toks: &[Token]) -> Vec<Block> {
    let mut stack: Vec<usize> = Vec::new();
    let mut blocks: Vec<Block> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            Tok::Punct("{") => stack.push(i),
            Tok::Punct("}") => {
                if let Some(open) = stack.pop() {
                    blocks.push(Block { open, close: i });
                }
            }
            _ => {}
        }
    }
    for open in stack {
        blocks.push(Block { open, close: toks.len().saturating_sub(1) });
    }
    blocks.sort_by_key(|b| b.open);
    blocks
}

/// The innermost block containing token index `idx`, if any.
pub fn enclosing_block(blocks: &[Block], idx: usize) -> Option<Block> {
    blocks.iter().filter(|b| b.open < idx && idx < b.close).max_by_key(|b| b.open).copied()
}

/// Collect `fn` items that have a body (trait method *declarations* end
/// in `;` and are skipped).
fn fn_items(toks: &[Token], blocks: &[Block]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.kind.is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.kind.ident()) else { continue };
        // The body is the first `{` after the signature, unless a `;`
        // (declaration) arrives first at bracket depth 0.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            match &toks[j].kind {
                Tok::Punct("(") | Tok::Punct("[") => depth += 1,
                Tok::Punct(")") | Tok::Punct("]") => depth -= 1,
                Tok::Punct(";") if depth == 0 => break,
                Tok::Punct("{") if depth == 0 => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = blocks
            .iter()
            .find(|b| b.open == open)
            .map(|b| b.close)
            .unwrap_or(toks.len().saturating_sub(1));
        out.push(FnItem { name: name.to_string(), fn_idx: i, open, close });
    }
    out
}

/// Collect simple `let` bindings and compute their liveness ends.
fn let_bindings(toks: &[Token], blocks: &[Block]) -> Vec<LetBinding> {
    // Pass 1 — find the bindings and their statement extents.
    let mut lets: Vec<LetBinding> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.kind.is_ident("let") {
            continue;
        }
        // `if let` / `while let` are refutable patterns, not bindings we
        // can scope lexically.
        if i > 0 && (toks[i - 1].kind.is_ident("if") || toks[i - 1].kind.is_ident("while")) {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.kind.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).and_then(|t| t.kind.ident()) else { continue };
        // Only `name =` or `name : .. =` shapes; `Some(x)`, tuples and
        // the like show other followers and are skipped.
        let mut k = j + 1;
        if toks.get(k).is_some_and(|t| t.kind.is_punct(":")) {
            // Skip the type ascription to the `=` at bracket depth 0.
            let mut depth = 0i32;
            k += 1;
            while k < toks.len() {
                match &toks[k].kind {
                    Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => depth += 1,
                    Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => depth -= 1,
                    Tok::Punct("=") if depth == 0 => break,
                    Tok::Punct(";") if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
        }
        if !toks.get(k).is_some_and(|t| t.kind.is_punct("=")) {
            continue;
        }
        let rhs_start = k + 1;
        let Some(stmt_end) = statement_end(toks, rhs_start) else { continue };
        let scope_open = enclosing_block(blocks, i).map(|b| b.open).unwrap_or(usize::MAX);
        let scope_close =
            enclosing_block(blocks, i).map(|b| b.close).unwrap_or(toks.len().saturating_sub(1));
        lets.push(LetBinding {
            name: name.to_string(),
            let_idx: i,
            rhs_start,
            stmt_end,
            live_end: scope_close,
            scope_open,
        });
    }

    // Pass 2 — tighten liveness: explicit `drop(name)` anywhere in scope,
    // or a shadowing `let name` in the *same* block (an inner block's
    // shadow ends at that block's `}`, so it does not end the outer
    // binding's liveness).
    let shadows: Vec<(usize, String, usize)> =
        lets.iter().map(|b| (b.let_idx, b.name.clone(), b.scope_open)).collect();
    for b in &mut lets {
        for &(idx, ref name, scope_open) in &shadows {
            if idx > b.stmt_end && idx < b.live_end && name == &b.name && scope_open == b.scope_open
            {
                b.live_end = idx;
            }
        }
        let mut i = b.stmt_end;
        while i < b.live_end {
            if toks[i].kind.is_ident("drop")
                && toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("))
                && toks.get(i + 2).is_some_and(|t| t.kind.is_ident(&b.name))
                && toks.get(i + 3).is_some_and(|t| t.kind.is_punct(")"))
            {
                b.live_end = i;
                break;
            }
            i += 1;
        }
    }
    lets
}

/// Index of the `;` ending the statement whose expression starts at
/// `start`, honouring nested `()`/`[]`/`{}`.
fn statement_end(toks: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = start;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => depth += 1,
            Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            }
            Tok::Punct(";") if depth == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Method names whose *empty-argument* call acquires a guard. The
/// empty-args requirement is what separates `RwLock::read()` from
/// `io::Read::read(buf)`.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Free-function helpers that acquire a guard (the service crate's
/// audited poison boundary, `crate::sync`).
const ACQUIRE_HELPERS: &[&str] = &["lock_or_die", "read_or_die", "write_or_die"];

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Token index of the method / helper name.
    pub idx: usize,
    /// Token index just past the call's closing `)` (where `.unwrap()` /
    /// `.expect(..)` followers would start).
    pub after_call: usize,
    /// The method or helper name (`lock`, `read`, `write`, `lock_or_die`, …).
    pub method: String,
    /// Best-effort name of the lock being acquired: the identifier (or
    /// callee) the method is invoked on, e.g. `control` for
    /// `self.inner.control.lock()` and `session_shard` for
    /// `lock_or_die(self.session_shard(id), ..)`.
    pub lock_name: Option<String>,
}

/// Find every lock acquisition in the token stream.
pub fn acquisitions(toks: &[Token]) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        // `.lock()` / `.read()` / `.write()` with an empty argument list.
        if ACQUIRE_METHODS.contains(&id)
            && i > 0
            && toks[i - 1].kind.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("))
            && toks.get(i + 2).is_some_and(|t| t.kind.is_punct(")"))
        {
            out.push(Acquisition {
                idx: i,
                after_call: i + 3,
                method: id.to_string(),
                lock_name: receiver_name(toks, i - 1),
            });
        }
        // `lock_or_die(<lock expr>, ..)` helper form. Skip `.lock_or_die`
        // method syntax (not a shape the helpers use) and `fn lock_or_die`
        // definitions.
        if ACQUIRE_HELPERS.contains(&id)
            && toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("))
            && !(i > 0 && (toks[i - 1].kind.is_punct(".") || toks[i - 1].kind.is_ident("fn")))
        {
            let close = matching_close_paren(toks, i + 1);
            out.push(Acquisition {
                idx: i,
                after_call: close.map(|c| c + 1).unwrap_or(toks.len()),
                method: id.to_string(),
                lock_name: first_arg_name(toks, i + 1),
            });
        }
    }
    out
}

/// Walk back from the `.` at `dot_idx` to name the receiver one step up
/// the chain: `a.b.lock()` → `b`, `f(x).lock()` → `f`, `xs[i].lock()` →
/// `xs`.
fn receiver_name(toks: &[Token], dot_idx: usize) -> Option<String> {
    if dot_idx == 0 {
        return None;
    }
    match &toks[dot_idx - 1].kind {
        Tok::Ident(s) => Some(s.clone()),
        Tok::Punct(")") => {
            let open = matching_open(toks, dot_idx - 1, "(", ")")?;
            toks.get(open.checked_sub(1)?)?.kind.ident().map(str::to_string)
        }
        Tok::Punct("]") => {
            let open = matching_open(toks, dot_idx - 1, "[", "]")?;
            toks.get(open.checked_sub(1)?)?.kind.ident().map(str::to_string)
        }
        _ => None,
    }
}

/// Walk back from the `.` at `dot_idx` to the *head* identifier of the
/// whole receiver chain: `st.file.write_all(..)` → `st`.
pub fn receiver_head(toks: &[Token], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx;
    loop {
        let prev = j.checked_sub(1)?;
        let start = match &toks[prev].kind {
            Tok::Ident(_) => prev,
            Tok::Punct(")") => matching_open(toks, prev, "(", ")")?.checked_sub(1)?,
            Tok::Punct("]") => matching_open(toks, prev, "[", "]")?.checked_sub(1)?,
            _ => return None,
        };
        if !matches!(toks.get(start).map(|t| &t.kind), Some(Tok::Ident(_))) {
            return None;
        }
        if start >= 1 && toks[start - 1].kind.is_punct(".") {
            j = start - 1;
            continue;
        }
        return toks[start].kind.ident().map(str::to_string);
    }
}

/// Best-effort name of a call's first argument, for
/// `lock_or_die(&self.inner.control, "control")` → `control`. Looks at
/// the last identifier-ish token of the first argument.
fn first_arg_name(toks: &[Token], open_idx: usize) -> Option<String> {
    let close = matching_close_paren(toks, open_idx)?;
    let mut depth = 0i32;
    let mut arg_end = close;
    for (j, t) in toks.iter().enumerate().take(close).skip(open_idx + 1) {
        match &t.kind {
            Tok::Punct("(") | Tok::Punct("[") => depth += 1,
            Tok::Punct(")") | Tok::Punct("]") => depth -= 1,
            Tok::Punct(",") if depth == 0 => {
                arg_end = j;
                break;
            }
            _ => {}
        }
    }
    let mut j = arg_end;
    loop {
        let prev = j.checked_sub(1)?;
        if prev <= open_idx {
            return None;
        }
        match &toks[prev].kind {
            Tok::Ident(s) => return Some(s.clone()),
            Tok::Punct(")") => j = matching_open(toks, prev, "(", ")")?,
            Tok::Punct("]") => j = matching_open(toks, prev, "[", "]")?,
            _ => return None,
        }
    }
}

/// Matching `)` for the call opening at `open_idx` (public for the rule
/// layer's argument-shape checks).
pub fn call_close_paren(toks: &[Token], open_idx: usize) -> Option<usize> {
    matching_close_paren(toks, open_idx)
}

/// Matching `)` for the `(` at `open_idx`.
fn matching_close_paren(toks: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        match &t.kind {
            Tok::Punct("(") => depth += 1,
            Tok::Punct(")") => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Matching opener index for the closer at `close_idx`.
fn matching_open(toks: &[Token], close_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close_idx;
    loop {
        if toks[j].kind.is_punct(close) {
            depth += 1;
        } else if toks[j].kind.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

/// Methods that block the calling thread: filesystem syncs and writes,
/// socket accept/reads, channel receives, thread joins.
const BLOCKING_METHODS: &[&str] = &[
    "sync_all",
    "sync_data",
    "write_all",
    "flush",
    "accept",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "read_line",
    "recv",
    "recv_timeout",
    "recv_deadline",
];

/// Condvar-style waits: blocking, but *consuming* a guard argument is the
/// protocol, so the transferred guard is exempt at the rule layer.
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while"];
const WAIT_HELPERS: &[&str] = &["wait_or_die", "wait_timeout_or_die"];

/// One call that blocks the current thread.
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// Token index of the method / function name.
    pub idx: usize,
    /// Display name of the call (`sync_data`, `thread::sleep`, …).
    pub what: String,
    /// Head identifier of the receiver chain (`st` for
    /// `st.file.write_all(..)`), when the call is a method.
    pub recv_head: Option<String>,
    /// Top-level identifier arguments (for the condvar guard-transfer
    /// exemption).
    pub args: Vec<String>,
    /// Whether this is a condvar-style wait.
    pub is_wait: bool,
}

/// Find every blocking call in the token stream.
pub fn blocking_sites(toks: &[Token]) -> Vec<BlockingSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        let method_call = i > 0
            && toks[i - 1].kind.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("));
        if method_call {
            let empty = toks.get(i + 2).is_some_and(|t| t.kind.is_punct(")"));
            let blocking = BLOCKING_METHODS.contains(&id)
                // `.read(buf)` / `.write(buf)` with arguments are IO, not
                // lock acquisition; `.join()` only with zero args (so
                // `path.join(x)` and `slice.join(sep)` stay silent).
                || ((id == "read" || id == "write") && !empty)
                || (id == "join" && empty);
            if blocking {
                out.push(BlockingSite {
                    idx: i,
                    what: format!(".{id}(..)"),
                    recv_head: receiver_head(toks, i - 1),
                    args: call_arg_idents(toks, i + 1),
                    is_wait: false,
                });
                continue;
            }
            if WAIT_METHODS.contains(&id) {
                out.push(BlockingSite {
                    idx: i,
                    what: format!(".{id}(..)"),
                    recv_head: receiver_head(toks, i - 1),
                    args: call_arg_idents(toks, i + 1),
                    is_wait: true,
                });
                continue;
            }
        }
        // Helper-call waits: `wait_or_die(&cv, guard, ..)`.
        if WAIT_HELPERS.contains(&id)
            && toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("))
            && !(i > 0 && (toks[i - 1].kind.is_punct(".") || toks[i - 1].kind.is_ident("fn")))
        {
            out.push(BlockingSite {
                idx: i,
                what: format!("{id}(..)"),
                recv_head: None,
                args: call_arg_idents(toks, i + 1),
                is_wait: true,
            });
            continue;
        }
        // Path-call forms: `thread::sleep(..)`, `TcpStream::connect(..)`,
        // `TcpListener::bind(..)`.
        let path_call = |head: &str, name: &str| {
            t.kind.is_ident(head)
                && toks.get(i + 1).is_some_and(|t| t.kind.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.kind.is_ident(name))
                && toks.get(i + 3).is_some_and(|t| t.kind.is_punct("("))
        };
        for (head, name) in [("thread", "sleep"), ("TcpStream", "connect"), ("TcpListener", "bind")]
        {
            if path_call(head, name) {
                out.push(BlockingSite {
                    idx: i,
                    what: format!("{head}::{name}(..)"),
                    recv_head: None,
                    args: Vec::new(),
                    is_wait: false,
                });
            }
        }
    }
    out
}

/// The top-level identifier arguments of the call whose `(` is at
/// `open_idx` (nested-call arguments are not the transferred guard).
fn call_arg_idents(toks: &[Token], open_idx: usize) -> Vec<String> {
    let Some(close) = matching_close_paren(toks, open_idx) else { return Vec::new() };
    let mut depth = 0i32;
    let mut out = Vec::new();
    for t in toks.iter().take(close).skip(open_idx + 1) {
        match &t.kind {
            Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => depth += 1,
            Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => depth -= 1,
            Tok::Ident(s) if depth == 0 => out.push(s.clone()),
            _ => {}
        }
    }
    out
}

/// Does the acquisition at `acq` *terminate* the statement ending at
/// `stmt_end` — i.e. is the only thing after the call an optional
/// `.unwrap()` / `.expect(..)` and an optional `?`? That is the shape
/// that makes a `let` binding a guard; any further method call (`.take()`,
/// `.len()`, `.insert(..)`) consumes the guard as a temporary instead.
pub fn is_terminal_in_stmt(toks: &[Token], acq: &Acquisition, stmt_end: usize) -> bool {
    let mut j = acq.after_call;
    loop {
        if j == stmt_end {
            return true;
        }
        if toks.get(j).is_some_and(|t| t.kind.is_punct("?")) {
            j += 1;
            continue;
        }
        if toks.get(j).is_some_and(|t| t.kind.is_punct("."))
            && toks
                .get(j + 1)
                .is_some_and(|t| t.kind.is_ident("unwrap") || t.kind.is_ident("expect"))
            && toks.get(j + 2).is_some_and(|t| t.kind.is_punct("("))
        {
            match matching_close_paren(toks, j + 2) {
                Some(close) => {
                    j = close + 1;
                    continue;
                }
                None => return false,
            }
        }
        return false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn syn(src: &str) -> (Vec<Token>, Syntax) {
        let toks = lex(src).tokens;
        let s = Syntax::build(&toks);
        (toks, s)
    }

    #[test]
    fn fn_items_skip_trait_declarations() {
        let (_, s) = syn("trait T { fn decl(&self); fn body(&self) { 1; } } fn free() {}");
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["body", "free"]);
    }

    #[test]
    fn let_bindings_and_scope() {
        let (toks, s) = syn("fn f() { let a = 1; { let b = 2; } let c = 3; }");
        let names: Vec<&str> = s.lets.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        let a = &s.lets[0];
        let b = &s.lets[1];
        // `a` lives to the fn's closing brace; `b` only to its block's.
        assert!(a.live_end > b.live_end);
        assert!(toks[b.live_end].kind.is_punct("}"));
    }

    #[test]
    fn tuple_and_if_let_patterns_are_skipped() {
        let (_, s) = syn("fn f() { let (a, b) = p(); if let Some(x) = o { x; } }");
        assert!(s.lets.is_empty());
    }

    #[test]
    fn drop_and_shadowing_end_liveness() {
        let (toks, s) = syn("fn f() { let g = m.lock(); use1(); drop(g); after(); }");
        assert!(toks[s.lets[0].live_end].kind.is_ident("drop"));
        let (toks, s) = syn("fn f() { let g = m.lock(); use1(); let g = 2; after(); }");
        assert!(toks[s.lets[0].live_end].kind.is_ident("let"));
        // An inner-block shadow does not end the outer binding.
        let (toks, s) = syn("fn f() { let g = m.lock(); { let g = 2; } after(); }");
        assert!(toks[s.lets[0].live_end].kind.is_punct("}"));
        assert_eq!(s.lets[0].live_end, toks.len() - 1);
    }

    #[test]
    fn acquisition_names_resolve_through_chains() {
        let toks = lex(concat!(
            "a.lock(); self.inner.control.lock(); self.shard(id).lock(); ",
            "xs[i].write(); lock_or_die(&self.inner.control, \"c\"); ",
            "lock_or_die(self.session_shard(id), \"s\"); ",
            "lock_or_die(&inner.queue_shards[i], \"q\"); ",
            "io.read(buf); r.read();"
        ))
        .tokens;
        let acqs = acquisitions(&toks);
        let names: Vec<Option<&str>> = acqs.iter().map(|a| a.lock_name.as_deref()).collect();
        assert_eq!(
            names,
            vec![
                Some("a"),
                Some("control"),
                Some("shard"),
                Some("xs"),
                Some("control"),
                Some("session_shard"),
                Some("queue_shards"),
                Some("r"), // `io.read(buf)` is IO, not an acquisition
            ]
        );
    }

    #[test]
    fn blocking_sites_distinguish_join_and_read_shapes() {
        let toks = lex(concat!(
            "h.join(); path.join(x); st.file.write_all(buf); f.sync_data(); ",
            "cv.wait(guard); thread::sleep(d); sock.read(buf); rw.read();"
        ))
        .tokens;
        let sites = blocking_sites(&toks);
        let whats: Vec<&str> = sites.iter().map(|b| b.what.as_str()).collect();
        assert_eq!(
            whats,
            vec![
                ".join(..)",
                ".write_all(..)",
                ".sync_data(..)",
                ".wait(..)",
                "thread::sleep(..)",
                ".read(..)"
            ]
        );
        assert_eq!(sites[1].recv_head.as_deref(), Some("st"));
        assert!(sites[3].is_wait);
        assert_eq!(sites[3].args, vec!["guard".to_string()]);
    }

    #[test]
    fn terminal_guard_shapes() {
        let toks = lex("let g = m.lock().expect(\"p\");").tokens;
        let s = Syntax::build(&toks);
        let acq = &acquisitions(&toks)[0];
        assert!(is_terminal_in_stmt(&toks, acq, s.lets[0].stmt_end));

        let toks = lex("let v = m.lock().unwrap().take();").tokens;
        let s = Syntax::build(&toks);
        let acq = &acquisitions(&toks)[0];
        assert!(!is_terminal_in_stmt(&toks, acq, s.lets[0].stmt_end));
    }
}
