//! The five determinism / numeric-safety rule families and the allowlist
//! annotation machinery. See DESIGN.md §"Determinism lint" for the full
//! rationale of each rule.
//!
//! Everything operates on the token stream + comment list produced by
//! [`crate::lexer`], so string literals and comments can never trigger a
//! rule. Detection is deliberately lexical (no type information): each
//! rule is written so its false-negative modes are understood and its
//! false positives can be silenced only through a reasoned
//! `// lint: allow(..)` annotation.

use crate::lexer::{lex, Comment, LexOut, Tok, Token};

/// The rules `mlcd-lint` enforces. R1–R5 refer to the ISSUE/DESIGN.md
/// numbering; the last two police the lint's own escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: no `HashMap`/`HashSet` iteration in outcome-feeding crates.
    HashIter,
    /// R2: no wall-clock or OS-entropy sources outside the bench crate.
    NondetSource,
    /// R3: no float `==`/`!=`, no `partial_cmp(..).unwrap()/expect(..)`.
    FloatCmp,
    /// R4: `unsafe` needs `// SAFETY:`; core crates stay `forbid(unsafe_code)`.
    UnsafeHygiene,
    /// R5a: `unwrap()`/`expect()` in the kernel hot paths needs a reason.
    HotPanic,
    /// R5b: direct indexing in the kernel hot paths needs a reason.
    HotIndex,
    /// A malformed `lint: allow` annotation (missing reason, unknown rule).
    BadAnnotation,
    /// An annotation that suppressed nothing — stale allows must go.
    UnusedAllow,
}

impl Rule {
    /// The kebab-case name used in diagnostics and `allow(..)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::NondetSource => "nondet-source",
            Rule::FloatCmp => "float-cmp",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::HotPanic => "hot-panic",
            Rule::HotIndex => "hot-index",
            Rule::BadAnnotation => "bad-annotation",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// Parse an `allow(<rule>)` rule name. Only R1–R5 can be allowed; the
    /// annotation-hygiene rules cannot be annotated away.
    pub fn from_allow_name(name: &str) -> Option<Rule> {
        match name {
            "hash-iter" => Some(Rule::HashIter),
            "nondet-source" => Some(Rule::NondetSource),
            "float-cmp" => Some(Rule::FloatCmp),
            "unsafe-hygiene" => Some(Rule::UnsafeHygiene),
            "hot-panic" => Some(Rule::HotPanic),
            "hot-index" => Some(Rule::HotIndex),
            _ => None,
        }
    }
}

/// One diagnostic: `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation of the finding.
    pub message: String,
}

/// Crates whose non-test code must not iterate `HashMap`/`HashSet` (their
/// outputs feed `SearchOutcome` digests and figure numbers).
const ORDERED_CRATES: &[&str] =
    &["mlcd", "mlcd-cloudsim", "mlcd-gp", "mlcd-linalg", "mlcd-service"];

/// Crates whose non-test code must not compare floats with `==`/`!=`.
const FLOAT_CRATES: &[&str] =
    &["mlcd", "mlcd-gp", "mlcd-linalg", "mlcd-cloudsim", "mlcd-perfmodel", "mlcd-service"];

/// Crates whose `src/lib.rs` must carry `#![forbid(unsafe_code)]`.
const FORBID_UNSAFE_LIBS: &[(&str, &str)] = &[
    ("crates/core/src/lib.rs", "mlcd"),
    ("crates/gp/src/lib.rs", "mlcd-gp"),
    ("crates/perfmodel/src/lib.rs", "mlcd-perfmodel"),
    ("crates/cloudsim/src/lib.rs", "mlcd-cloudsim"),
    ("crates/service/src/lib.rs", "mlcd-service"),
];

/// The one carve-out from R2: the service's TCP connection layer may
/// stamp its *log lines* with the wall clock. Nothing under this prefix
/// feeds a `SearchOutcome` — the session/journal/cache path stays under
/// the full rule, and `crates/lint/tests/rules.rs` pins both sides.
const NONDET_EXEMPT_PREFIXES: &[&str] = &["crates/service/src/net/"];

/// The kernel hot paths under the R5 panic/indexing discipline.
const HOT_PATHS: &[&str] = &[
    "crates/cloudsim/src/sim.rs",
    "crates/core/src/search/kernel.rs",
    "crates/gp/src/fit.rs",
    "crates/gp/src/workspace.rs",
    "crates/linalg/src/chol.rs",
    "crates/linalg/src/mat.rs",
];

/// What a file's path says about which rules apply to it.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Cargo package the file belongs to (`mlcd`, `mlcd-gp`, …);
    /// `mlcd-repro` for the facade's `src/`, `tests/`, `examples/`.
    pub crate_name: String,
    /// Whole file is test/bench/example code (integration tests, bench
    /// targets, example binaries, `*_tests.rs` siblings).
    pub is_test_file: bool,
    /// File is one of the R5 kernel hot paths.
    pub is_hot_path: bool,
}

impl FileCtx {
    /// Classify a workspace-relative path.
    pub fn from_path(rel: &str) -> FileCtx {
        let path = rel.replace('\\', "/");
        let crate_name = if let Some(rest) = path.strip_prefix("crates/") {
            let dir = rest.split('/').next().unwrap_or("");
            match dir {
                "core" => "mlcd",
                "gp" => "mlcd-gp",
                "linalg" => "mlcd-linalg",
                "cloudsim" => "mlcd-cloudsim",
                "perfmodel" => "mlcd-perfmodel",
                "bench" => "mlcd-bench",
                "lint" => "mlcd-lint",
                "service" => "mlcd-service",
                other => other,
            }
            .to_string()
        } else {
            "mlcd-repro".to_string()
        };
        let file_name = path.rsplit('/').next().unwrap_or("");
        let is_test_file = path.contains("/tests/")
            || path.starts_with("tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
            || path.starts_with("examples/")
            || file_name == "tests.rs"
            || file_name.ends_with("_tests.rs")
            || file_name.starts_with("test_");
        let is_hot_path = HOT_PATHS.contains(&path.as_str());
        FileCtx { path, crate_name, is_test_file, is_hot_path }
    }
}

/// A parsed `// lint: allow(<rule>[, <scope>]) — <reason>` annotation.
#[derive(Debug)]
struct Allow {
    rule: Rule,
    scope: AllowScope,
    line: u32,
    /// Set when a finding was suppressed by this annotation.
    used: std::cell::Cell<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum AllowScope {
    /// One source line (the annotated line itself).
    Line(u32),
    /// An inclusive line range (a whole `fn` body).
    Range(u32, u32),
    /// The whole file.
    File,
}

/// Lint a single file's source text under its path-derived context.
/// `rel_path` decides which rules apply; `source` is the file body.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let ctx = FileCtx::from_path(rel_path);
    let lexed = lex(source);
    let test_mask = test_region_mask(&lexed.tokens);

    let mut findings: Vec<Violation> = Vec::new();
    let v = |line: u32, rule: Rule, message: String| Violation {
        file: rel_path.to_string(),
        line,
        rule,
        message,
    };

    // R1 — HashMap/HashSet iteration in ordered crates.
    if ORDERED_CRATES.contains(&ctx.crate_name.as_str()) && !ctx.is_test_file {
        for (line, msg) in hash_iteration_sites(&lexed.tokens, &test_mask) {
            findings.push(v(line, Rule::HashIter, msg));
        }
    }

    // R2 — wall-clock / OS entropy outside the bench crate and the
    // service's connection-logging layer.
    if ctx.crate_name != "mlcd-bench"
        && !NONDET_EXEMPT_PREFIXES.iter().any(|p| ctx.path.starts_with(p))
    {
        for (line, msg) in nondet_sources(&lexed.tokens) {
            findings.push(v(line, Rule::NondetSource, msg));
        }
    }

    // R3 — float equality and panicking float comparisons.
    if FLOAT_CRATES.contains(&ctx.crate_name.as_str()) && !ctx.is_test_file {
        for (line, msg) in float_cmp_sites(&lexed.tokens, &test_mask) {
            findings.push(v(line, Rule::FloatCmp, msg));
        }
    }

    // R4 — unsafe hygiene (everywhere), plus the forbid attribute pins.
    for (line, msg) in unsafe_without_safety(&lexed.tokens, &lexed.comments) {
        findings.push(v(line, Rule::UnsafeHygiene, msg));
    }
    if let Some((_, name)) = FORBID_UNSAFE_LIBS.iter().find(|(p, _)| *p == ctx.path) {
        if !has_forbid_unsafe(&lexed.tokens) {
            findings.push(v(
                1,
                Rule::UnsafeHygiene,
                format!("`{name}` must keep `#![forbid(unsafe_code)]` in its crate root"),
            ));
        }
    }

    // R5 — panics and direct indexing in the kernel hot paths.
    if ctx.is_hot_path {
        for (line, msg) in hot_panic_sites(&lexed.tokens, &test_mask) {
            findings.push(v(line, Rule::HotPanic, msg));
        }
        for (line, msg) in hot_index_sites(&lexed.tokens, &test_mask) {
            findings.push(v(line, Rule::HotIndex, msg));
        }
    }

    // Resolve annotations: parse them, drop suppressed findings, then
    // report annotation hygiene problems.
    let (allows, mut bad) = parse_allows(&lexed, rel_path);
    findings.retain(|f| {
        !allows.iter().any(|a| {
            let hit = a.rule == f.rule
                && match a.scope {
                    AllowScope::Line(l) => f.line == l,
                    AllowScope::Range(lo, hi) => (lo..=hi).contains(&f.line),
                    AllowScope::File => true,
                };
            if hit {
                a.used.set(true);
            }
            hit
        })
    });
    for a in &allows {
        if !a.used.get() {
            bad.push(v(
                a.line,
                Rule::UnusedAllow,
                format!(
                    "allow({}) suppresses nothing — remove the stale annotation",
                    a.rule.name()
                ),
            ));
        }
    }
    findings.append(&mut bad);
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.name().cmp(b.rule.name())));
    findings
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Mark token indices that live inside `#[cfg(test)] mod .. { .. }` or
/// `#[test] fn .. { .. }` regions. The repo convention keeps unit tests in
/// a trailing `#[cfg(test)] mod tests`, so brace-matching from those
/// attributes covers in-file test code; whole-file test targets are
/// classified by path in [`FileCtx`].
fn test_region_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attr(toks, i) {
            if let Some((open, close)) = first_brace_block(toks, after_attr) {
                for m in mask.iter_mut().take(close + 1).skip(open) {
                    *m = true;
                }
                i = after_attr;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// If `toks[i..]` starts a `#[cfg(test)]` or `#[test]` attribute, return
/// the index just past `]`.
fn match_test_attr(toks: &[Token], i: usize) -> Option<usize> {
    if !toks.get(i)?.kind.is_punct("#") || !toks.get(i + 1)?.kind.is_punct("[") {
        return None;
    }
    let t2 = &toks.get(i + 2)?.kind;
    if t2.is_ident("test") && toks.get(i + 3)?.kind.is_punct("]") {
        return Some(i + 4);
    }
    if t2.is_ident("cfg")
        && toks.get(i + 3)?.kind.is_punct("(")
        && toks.get(i + 4)?.kind.is_ident("test")
        && toks.get(i + 5)?.kind.is_punct(")")
        && toks.get(i + 6)?.kind.is_punct("]")
    {
        return Some(i + 7);
    }
    None
}

/// Find the first `{ .. }` block at or after `start`, skipping further
/// attributes, and return (open index, close index). Gives up at `;`
/// before any `{` (an out-of-line `mod name;` — the referenced file is
/// classified by path instead).
fn first_brace_block(toks: &[Token], start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct("{") => {
                let mut depth = 0usize;
                let open = i;
                while i < toks.len() {
                    match &toks[i].kind {
                        Tok::Punct("{") => depth += 1,
                        Tok::Punct("}") => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((open, i));
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some((open, toks.len() - 1));
            }
            Tok::Punct(";") => return None,
            _ => i += 1,
        }
    }
    None
}

// ---------------------------------------------------------------------------
// R1: HashMap/HashSet iteration
// ---------------------------------------------------------------------------

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
];

fn hash_iteration_sites(toks: &[Token], test_mask: &[bool]) -> Vec<(u32, String)> {
    // Pass 1 — names bound to a hash type, by declaration-site patterns:
    //   `name : [&|&'a|mut]* HashMap`   (let ascription, field, fn param)
    //   `let [mut] name = HashMap::<ctor>(..)`
    let mut names: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        if !HASH_TYPES.contains(&id) {
            continue;
        }
        // Walk back over type-position noise to a `:`.
        let mut j = i;
        while j > 0
            && (matches!(
                &toks[j - 1].kind,
                Tok::Punct("&") | Tok::Punct("<") | Tok::Punct(",") | Tok::Lifetime
            ) || toks[j - 1].kind.is_ident("mut")
                || toks[j - 1].kind.is_ident("dyn"))
        {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].kind.is_punct(":") {
            if let Some(name) = toks[j - 2].kind.ident() {
                names.push(name.to_string());
            }
        }
        // `let [mut] name = HashMap::ctor(..)`.
        if i >= 2 && toks[i - 1].kind.is_punct("=") {
            if let Some(name) = toks[i - 2].kind.ident() {
                let let_pos = if i >= 3 && toks[i - 3].kind.is_ident("mut") { 4 } else { 3 };
                if i >= let_pos && toks[i - let_pos].kind.is_ident("let") {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();

    // Pass 2 — iteration over a tracked name.
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(id) = t.kind.ident() else { continue };
        // `name.iter()` / `name.keys()` / …
        if names.iter().any(|n| n == id)
            && toks.get(i + 1).is_some_and(|n| n.kind.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|m| m.kind.ident().is_some_and(|m| ITER_METHODS.contains(&m)))
        {
            let method = toks[i + 2].kind.ident().unwrap_or("");
            out.push((
                t.line,
                format!(
                    "`{id}.{method}()` iterates a HashMap/HashSet in arbitrary order — \
                     use BTreeMap/BTreeSet or sort an explicit view first"
                ),
            ));
        }
        // `for pat in [&|&mut] name {` / `for (..) in &name {`.
        if id == "for" {
            if let Some((line, name)) = for_loop_over(toks, i, &names) {
                out.push((
                    line,
                    format!(
                        "`for .. in {name}` iterates a HashMap/HashSet in arbitrary order — \
                         use BTreeMap/BTreeSet or sort an explicit view first"
                    ),
                ));
            }
        }
    }
    out
}

/// If the `for` loop at token `i` iterates directly over one of `names`,
/// return (line, name). Looks for `in [&] [mut] <name> {`.
fn for_loop_over(toks: &[Token], i: usize, names: &[String]) -> Option<(u32, String)> {
    // Find the `in` belonging to this `for` (before the body `{`, outside
    // any pattern parens).
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Punct("(") | Tok::Punct("[") => depth += 1,
            Tok::Punct(")") | Tok::Punct("]") => depth -= 1,
            Tok::Punct("{") if depth == 0 => return None,
            Tok::Ident(s) if s == "in" && depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let mut k = j + 1;
    while k < toks.len() && (toks[k].kind.is_punct("&") || toks[k].kind.is_ident("mut")) {
        k += 1;
    }
    // `for .. in &self.field` — skip the `self.` prefix.
    if toks.get(k).is_some_and(|t| t.kind.is_ident("self"))
        && toks.get(k + 1).is_some_and(|t| t.kind.is_punct("."))
    {
        k += 2;
    }
    let name = toks.get(k)?.kind.ident()?;
    if names.iter().any(|n| n == name) && toks.get(k + 1).is_some_and(|t| t.kind.is_punct("{")) {
        return Some((toks[k].line, name.to_string()));
    }
    None
}

// ---------------------------------------------------------------------------
// R2: wall-clock / OS entropy
// ---------------------------------------------------------------------------

fn nondet_sources(toks: &[Token]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        match id {
            "Instant" | "SystemTime"
                if toks.get(i + 1).is_some_and(|n| n.kind.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|m| m.kind.is_ident("now")) =>
            {
                out.push((
                    t.line,
                    format!(
                        "`{id}::now()` reads the wall clock — searches must be a pure \
                         function of their seed; use SimClock / virtual time"
                    ),
                ));
            }
            "thread_rng" | "from_entropy" => {
                out.push((
                    t.line,
                    format!(
                        "`{id}` draws OS entropy — all randomness must flow from an \
                         explicit u64 seed (SmallRng::seed_from_u64)"
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R3: float comparisons
// ---------------------------------------------------------------------------

fn float_cmp_sites(toks: &[Token], test_mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        match &t.kind {
            Tok::Punct(op @ ("==" | "!=")) => {
                let float_lhs = i > 0 && matches!(toks[i - 1].kind, Tok::Float);
                let float_rhs = toks.get(i + 1).is_some_and(|n| matches!(n.kind, Tok::Float));
                if float_lhs || float_rhs {
                    out.push((
                        t.line,
                        format!(
                            "float `{op}` comparison — exact float equality is \
                             representation-sensitive; use `total_cmp`, an epsilon, or the \
                             bit-pattern helpers (`mlcd_linalg::is_exact_zero`)"
                        ),
                    ));
                }
            }
            Tok::Ident(id) if id == "partial_cmp" => {
                // `partial_cmp( .. ).unwrap()` / `.expect(..)`: skip the
                // balanced argument list, then look for the panic.
                let Some(open) = toks.get(i + 1).filter(|t| t.kind.is_punct("(")) else {
                    continue;
                };
                let _ = open;
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].kind {
                        Tok::Punct("(") => depth += 1,
                        Tok::Punct(")") => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if toks.get(j + 1).is_some_and(|d| d.kind.is_punct("."))
                    && toks
                        .get(j + 2)
                        .is_some_and(|m| m.kind.is_ident("unwrap") || m.kind.is_ident("expect"))
                {
                    out.push((
                        t.line,
                        "`partial_cmp(..).unwrap()` panics on NaN — a NaN posterior must \
                         order deterministically, use `f64::total_cmp`"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R4: unsafe hygiene
// ---------------------------------------------------------------------------

fn unsafe_without_safety(toks: &[Token], comments: &[Comment]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for t in toks {
        if !t.kind.is_ident("unsafe") {
            continue;
        }
        // A `// SAFETY:` comment must sit on the same line or within the
        // three lines above the `unsafe` keyword.
        let justified = comments.iter().any(|c| {
            c.text.trim_start().starts_with("SAFETY:") && c.line <= t.line && t.line - c.line <= 3
        });
        if !justified {
            out.push((
                t.line,
                "`unsafe` without a `// SAFETY:` comment directly above — state the \
                 invariant that makes this sound"
                    .to_string(),
            ));
        }
    }
    out
}

fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(7).any(|w| {
        w[0].kind.is_punct("#")
            && w[1].kind.is_punct("!")
            && w[2].kind.is_punct("[")
            && w[3].kind.is_ident("forbid")
            && w[4].kind.is_punct("(")
            && w[5].kind.is_ident("unsafe_code")
            && w[6].kind.is_punct(")")
    })
}

// ---------------------------------------------------------------------------
// R5: hot-path panics and indexing
// ---------------------------------------------------------------------------

fn hot_panic_sites(toks: &[Token], test_mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(id) = t.kind.ident() else { continue };
        if (id == "unwrap" || id == "expect")
            && i > 0
            && toks[i - 1].kind.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.kind.is_punct("("))
        {
            out.push((
                t.line,
                format!(
                    "`.{id}(..)` in a kernel hot path — return the error or justify why \
                     this cannot fail"
                ),
            ));
        }
    }
    out
}

fn hot_index_sites(toks: &[Token], test_mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !t.kind.is_punct("[") || i == 0 {
            continue;
        }
        // Indexing = `[` directly after an expression tail: an identifier,
        // `)`, or `]`. Array types/literals, slices in types, attributes
        // (`#[..]`, `![..]`) and `vec![..]` all have other predecessors.
        let prev = &toks[i - 1].kind;
        let is_expr_tail = matches!(prev, Tok::Ident(_) | Tok::Punct(")") | Tok::Punct("]"));
        if !is_expr_tail {
            continue;
        }
        // `vec![`, `matches!(..)[` style macros: `ident !` precedes `[`,
        // so `prev` is `!` there — already excluded. But `ident` directly
        // before `[` can still be a macro name in `name![..]`; that form
        // always has `!` between, so no further check needed.
        out.push((
            t.line,
            "direct indexing in a kernel hot path can panic — use `get`/iterators or \
             justify the bound"
                .to_string(),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Allowlist annotations
// ---------------------------------------------------------------------------

/// Parse every `lint: allow(..)` annotation in the file. Returns the
/// usable allows plus violations for malformed ones.
fn parse_allows(lexed: &LexOut, rel_path: &str) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else { continue };
        let rest = rest.trim_start();
        let mut fail = |message: String| {
            bad.push(Violation {
                file: rel_path.to_string(),
                line: c.line,
                rule: Rule::BadAnnotation,
                message,
            });
        };
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            fail(
                "malformed lint annotation — expected `lint: allow(<rule>[, <scope>]) — <reason>`"
                    .into(),
            );
            continue;
        };
        let (inside, after) = args;
        let mut parts = inside.split(',').map(str::trim);
        let rule_name = parts.next().unwrap_or("");
        let Some(rule) = Rule::from_allow_name(rule_name) else {
            fail(format!("unknown rule `{rule_name}` in lint annotation"));
            continue;
        };
        let scope_word = parts.next();
        if parts.next().is_some() {
            fail(
                "too many arguments in lint annotation — expected `allow(<rule>[, fn|file])`"
                    .into(),
            );
            continue;
        }
        // The reason is mandatory: `— <why this is sound>` after the `)`.
        let reason = after
            .trim_start()
            .strip_prefix('—')
            .or_else(|| after.trim_start().strip_prefix("--"))
            .or_else(|| after.trim_start().strip_prefix('-'))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            fail(format!(
                "allow({rule_name}) carries no reason — write `lint: allow({rule_name}) — <why>`"
            ));
            continue;
        }
        let scope = match scope_word {
            None => {
                if c.trailing {
                    AllowScope::Line(c.line)
                } else {
                    // Free-standing comment: annotates the next code line.
                    match lexed.tokens.iter().find(|t| t.line > c.line) {
                        Some(t) => AllowScope::Line(t.line),
                        None => {
                            fail("lint annotation at end of file annotates nothing".into());
                            continue;
                        }
                    }
                }
            }
            Some("file") => AllowScope::File,
            Some("fn") => match fn_body_range(&lexed.tokens, c.line) {
                Some((lo, hi)) => AllowScope::Range(lo, hi),
                None => {
                    fail("allow(.., fn) is not followed by a function".into());
                    continue;
                }
            },
            Some(other) => {
                fail(format!("unknown scope `{other}` in lint annotation — use `fn` or `file`"));
                continue;
            }
        };
        allows.push(Allow { rule, scope, line: c.line, used: std::cell::Cell::new(false) });
    }
    (allows, bad)
}

/// Line range (signature line through closing brace) of the first `fn`
/// item starting after `line`.
fn fn_body_range(toks: &[Token], line: u32) -> Option<(u32, u32)> {
    let start = toks.iter().position(|t| t.line > line && t.kind.is_ident("fn"))?;
    let (open, close) = first_brace_block(toks, start)?;
    Some((toks[start].line, toks[close].line.max(toks[open].line)))
}
