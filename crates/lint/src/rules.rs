//! The determinism / numeric-safety / concurrency-discipline rule
//! families and the allowlist annotation machinery. See DESIGN.md
//! §"Determinism lint" for the full rationale of each rule.
//!
//! Everything operates on the token stream + comment list produced by
//! [`crate::lexer`]; the concurrency rules (R6–R9) additionally use the
//! scope facts recovered by [`crate::syntax`]. String literals and
//! comments can never trigger a rule. Detection is deliberately lexical
//! (no type information): each rule is written so its false-negative
//! modes are understood and its false positives can be silenced only
//! through a reasoned `// lint: allow(..)` annotation.

use crate::lexer::{lex, Comment, LexOut, Tok, Token};
use crate::syntax::{acquisitions, blocking_sites, is_terminal_in_stmt, Syntax};

/// The rules `mlcd-lint` enforces. R1–R9 refer to the ISSUE/DESIGN.md
/// numbering; the last two police the lint's own escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: no `HashMap`/`HashSet` iteration in outcome-feeding crates.
    HashIter,
    /// R2: no wall-clock or OS-entropy sources outside the bench crate.
    NondetSource,
    /// R3: no float `==`/`!=`, no `partial_cmp(..).unwrap()/expect(..)`.
    FloatCmp,
    /// R4: `unsafe` needs `// SAFETY:`; core crates stay `forbid(unsafe_code)`.
    UnsafeHygiene,
    /// R5a: `unwrap()`/`expect()` in the kernel hot paths needs a reason.
    HotPanic,
    /// R5b: direct indexing in the kernel hot paths needs a reason.
    HotIndex,
    /// R6: a lock guard must not be live across a blocking call.
    GuardBlocking,
    /// R7: nested lock acquisitions must follow the declared lock order.
    LockOrder,
    /// R8: cloudsim event handlers must be pure — no IO, time, or locks.
    SimHandler,
    /// R9: lock poison handling in the service crate goes through one
    /// audited helper, not ad-hoc `.lock().unwrap()/.expect(..)`.
    LockUnwrap,
    /// A malformed `lint: allow` annotation (missing reason, unknown rule).
    BadAnnotation,
    /// An annotation that suppressed nothing — stale allows must go.
    UnusedAllow,
}

impl Rule {
    /// The kebab-case name used in diagnostics and `allow(..)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::NondetSource => "nondet-source",
            Rule::FloatCmp => "float-cmp",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::HotPanic => "hot-panic",
            Rule::HotIndex => "hot-index",
            Rule::GuardBlocking => "guard-blocking",
            Rule::LockOrder => "lock-order",
            Rule::SimHandler => "sim-handler",
            Rule::LockUnwrap => "lock-unwrap",
            Rule::BadAnnotation => "bad-annotation",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// Every rule, in diagnostic order (used by `--explain` listings).
    pub const ALL: &'static [Rule] = &[
        Rule::HashIter,
        Rule::NondetSource,
        Rule::FloatCmp,
        Rule::UnsafeHygiene,
        Rule::HotPanic,
        Rule::HotIndex,
        Rule::GuardBlocking,
        Rule::LockOrder,
        Rule::SimHandler,
        Rule::LockUnwrap,
        Rule::BadAnnotation,
        Rule::UnusedAllow,
    ];

    /// Parse an `allow(<rule>)` rule name. Only R1–R9 can be allowed; the
    /// annotation-hygiene rules cannot be annotated away.
    pub fn from_allow_name(name: &str) -> Option<Rule> {
        match name {
            "hash-iter" => Some(Rule::HashIter),
            "nondet-source" => Some(Rule::NondetSource),
            "float-cmp" => Some(Rule::FloatCmp),
            "unsafe-hygiene" => Some(Rule::UnsafeHygiene),
            "hot-panic" => Some(Rule::HotPanic),
            "hot-index" => Some(Rule::HotIndex),
            "guard-blocking" => Some(Rule::GuardBlocking),
            "lock-order" => Some(Rule::LockOrder),
            "sim-handler" => Some(Rule::SimHandler),
            "lock-unwrap" => Some(Rule::LockUnwrap),
            _ => None,
        }
    }

    /// The rationale and allow-grammar shown by `mlcd-lint --explain` —
    /// the same text DESIGN.md §8's rule table summarises.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::HashIter => {
                "R1 hash-iter — no HashMap/HashSet iteration in outcome-feeding crates.\n\
                 Hash iteration order is randomized per process, so anything it feeds\n\
                 (posterior sums, schedules, digests) silently loses bit-determinism.\n\
                 Fix: BTreeMap/BTreeSet, or collect + sort before iterating.\n\
                 Allow: `// lint: allow(hash-iter[, fn|file]) — <why order cannot leak>`"
            }
            Rule::NondetSource => {
                "R2 nondet-source — no wall clock or OS entropy outside the bench crate\n\
                 and the service net/ logging layer. Instant::now / SystemTime::now /\n\
                 thread_rng / from_entropy make a search non-reproducible.\n\
                 Fix: virtual time (SimClock) and SmallRng::seed_from_u64.\n\
                 Allow: `// lint: allow(nondet-source[, fn|file]) — <why this never feeds an outcome>`"
            }
            Rule::FloatCmp => {
                "R3 float-cmp — no float == / !=, no partial_cmp(..).unwrap()/expect(..).\n\
                 Exact float equality is representation-sensitive and NaN makes\n\
                 partial_cmp panic; both can differ across runs and platforms.\n\
                 Fix: f64::total_cmp, an epsilon, or the bit-pattern helpers.\n\
                 Allow: `// lint: allow(float-cmp[, fn|file]) — <why exactness is intended>`"
            }
            Rule::UnsafeHygiene => {
                "R4 unsafe-hygiene — every `unsafe` needs a `// SAFETY:` comment within\n\
                 three lines above it, and the core crate roots must keep\n\
                 #![forbid(unsafe_code)]. The forbid pins cannot be allowed away.\n\
                 Allow (SAFETY part only): `// lint: allow(unsafe-hygiene) — <reason>`"
            }
            Rule::HotPanic => {
                "R5a hot-panic — unwrap()/expect() in the kernel hot paths.\n\
                 A panic in the sampling/factorization kernels kills a whole search;\n\
                 return the error or prove the invariant.\n\
                 Allow: `// lint: allow(hot-panic[, fn|file]) — <why this cannot fail>`"
            }
            Rule::HotIndex => {
                "R5b hot-index — direct `[..]` indexing in the kernel hot paths can\n\
                 panic on a bad bound. Use get()/iterators, or justify the bound.\n\
                 Allow: `// lint: allow(hot-index[, fn|file]) — <why the bound holds>`"
            }
            Rule::GuardBlocking => {
                "R6 guard-blocking — a binding produced by .lock()/.read()/.write()\n\
                 (or the service's lock_or_die helpers) must not be live across a\n\
                 blocking call: fsync/write_all/flush, TcpStream/TcpListener ops,\n\
                 Condvar waits, channel recv*, thread::sleep, JoinHandle::join().\n\
                 Holding a mutex across IO serializes every other thread behind disk\n\
                 or network latency — the exact shape of the PR 5 submit() bug (queue\n\
                 mutex held across a journal create + fsync).\n\
                 Exemptions built in: a Condvar-style wait that *consumes* the guard\n\
                 (cv.wait(guard) — the transfer is the protocol), and blocking calls\n\
                 whose receiver chain starts at the guard itself (f.write_all(..) on a\n\
                 Mutex<File> — the lock exists to serialize that IO).\n\
                 Liveness ends at the enclosing block's `}`, an explicit drop(guard),\n\
                 or a shadowing `let guard` in the same block.\n\
                 Allow: `// lint: allow(guard-blocking[, fn|file]) — <why the hold is sound>`"
            }
            Rule::LockOrder => {
                "R7 lock-order — nested lock acquisitions must follow the declared\n\
                 per-crate lock order, and two locks of the same shard family must not\n\
                 nest without an explicit ordering argument. Orders come from the\n\
                 lint's built-in manifest plus in-file declarations:\n\
                 `// lint: lock-order: control < terminal < session_shard|session_shards < state`\n\
                 (`<` = must-acquire-before; `|` separates aliases of one lock).\n\
                 Acquiring a lock that is declared *earlier* than one already held is\n\
                 an inversion (deadlock risk); nesting two acquisitions of the same\n\
                 name is either a self-deadlock (std Mutex) or an unordered\n\
                 shard-family pair.\n\
                 Allow: `// lint: allow(lock-order[, fn|file]) — <the ordering argument>`"
            }
            Rule::SimHandler => {
                "R8 sim-handler — cloudsim event handlers (`on_event`, `on_*`,\n\
                 `handle*` fns in sim.rs / provider.rs) must be pure: no IO, no wall\n\
                 time, no locks, no threads. The event engine's determinism guarantee\n\
                 (identical digests for identical seeds, merge-order independence)\n\
                 only holds if a handler is a function of (state, event) alone.\n\
                 Fix: mutate component state and schedule follow-up events; do IO at\n\
                 the driver layer outside the engine.\n\
                 Allow: `// lint: allow(sim-handler[, fn|file]) — <why determinism survives>`"
            }
            Rule::LockUnwrap => {
                "R9 lock-unwrap — in crates/service, `.lock().unwrap()`,\n\
                 `.lock().expect(..)` and Condvar-wait unwraps must go through the\n\
                 audited poison boundary (crate::sync::lock_or_die / wait_or_die)\n\
                 instead of being scattered ad hoc. One site decides what lock poison\n\
                 means for the service (die loudly), so the policy can be changed —\n\
                 or audited — in one place.\n\
                 Allow: `// lint: allow(lock-unwrap[, fn|file]) — <why this site is special>`"
            }
            Rule::BadAnnotation => {
                "bad-annotation — a `// lint: ..` comment that does not parse: unknown\n\
                 rule name, missing mandatory `— <reason>`, bad scope word, or a\n\
                 malformed lock-order declaration. Annotation hygiene cannot be\n\
                 allowed away; fix the annotation."
            }
            Rule::UnusedAllow => {
                "unused-allow — a `// lint: allow(..)` that suppressed nothing. Stale\n\
                 escape hatches hide real regressions behind dead reasons; delete the\n\
                 annotation. Cannot be allowed away."
            }
        }
    }
}

/// One diagnostic: `file:line:col: [rule] message`.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation of the finding.
    pub message: String,
}

/// Crates whose non-test code must not iterate `HashMap`/`HashSet` (their
/// outputs feed `SearchOutcome` digests and figure numbers).
const ORDERED_CRATES: &[&str] =
    &["mlcd", "mlcd-cloudsim", "mlcd-fleet", "mlcd-gp", "mlcd-linalg", "mlcd-service"];

/// Crates whose non-test code must not compare floats with `==`/`!=`.
const FLOAT_CRATES: &[&str] = &[
    "mlcd",
    "mlcd-gp",
    "mlcd-linalg",
    "mlcd-cloudsim",
    "mlcd-fleet",
    "mlcd-perfmodel",
    "mlcd-service",
];

/// Crates whose `src/lib.rs` must carry `#![forbid(unsafe_code)]`.
const FORBID_UNSAFE_LIBS: &[(&str, &str)] = &[
    ("crates/core/src/lib.rs", "mlcd"),
    ("crates/gp/src/lib.rs", "mlcd-gp"),
    ("crates/perfmodel/src/lib.rs", "mlcd-perfmodel"),
    ("crates/cloudsim/src/lib.rs", "mlcd-cloudsim"),
    ("crates/fleet/src/lib.rs", "mlcd-fleet"),
    ("crates/service/src/lib.rs", "mlcd-service"),
];

/// The one carve-out from R2: the service's TCP connection layer may
/// stamp its *log lines* with the wall clock. Nothing under this prefix
/// feeds a `SearchOutcome` — the session/journal/cache path stays under
/// the full rule, and `crates/lint/tests/rules.rs` pins both sides.
const NONDET_EXEMPT_PREFIXES: &[&str] = &["crates/service/src/net/"];

/// The kernel hot paths under the R5 panic/indexing discipline.
const HOT_PATHS: &[&str] = &[
    "crates/cloudsim/src/sim.rs",
    "crates/core/src/search/kernel.rs",
    "crates/gp/src/fit.rs",
    "crates/gp/src/workspace.rs",
    "crates/linalg/src/chol.rs",
    "crates/linalg/src/mat.rs",
];

/// R8: files whose `on_event` / `on_*` / `handle*` fns are sim event
/// handlers and must stay pure.
const SIM_HANDLER_FILES: &[&str] = &[
    "crates/cloudsim/src/sim.rs",
    "crates/cloudsim/src/provider.rs",
    "crates/fleet/src/policy.rs",
];

/// R9: the one designated poison boundary — the only file in
/// `crates/service` allowed to unwrap lock/wait poison results.
const POISON_BOUNDARY_FILES: &[&str] = &["crates/service/src/sync.rs"];

/// R7: the built-in per-crate lock-order manifest. Each entry is an
/// acquire-before chain; an inner `&[..]` groups aliases of the same
/// logical lock (field vs. accessor-fn spellings). In-file
/// `// lint: lock-order:` declarations merge with this.
const LOCK_ORDER_MANIFEST: &[(&str, &[&[&str]])] = &[(
    "mlcd-service",
    &[
        &["control"],
        &["terminal"],
        &["session_shard", "session_shards"],
        &["queue_shard", "queue_shards"],
        &["state"],
    ],
)];

/// What a file's path says about which rules apply to it.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Cargo package the file belongs to (`mlcd`, `mlcd-gp`, …);
    /// `mlcd-repro` for the facade's `src/`, `tests/`, `examples/`.
    pub crate_name: String,
    /// Whole file is test/bench/example code (integration tests, bench
    /// targets, example binaries, `*_tests.rs` siblings).
    pub is_test_file: bool,
    /// File is one of the R5 kernel hot paths.
    pub is_hot_path: bool,
}

impl FileCtx {
    /// Classify a workspace-relative path.
    pub fn from_path(rel: &str) -> FileCtx {
        let path = rel.replace('\\', "/");
        let crate_name = if let Some(rest) = path.strip_prefix("crates/") {
            let dir = rest.split('/').next().unwrap_or("");
            match dir {
                "core" => "mlcd",
                "gp" => "mlcd-gp",
                "linalg" => "mlcd-linalg",
                "cloudsim" => "mlcd-cloudsim",
                "fleet" => "mlcd-fleet",
                "perfmodel" => "mlcd-perfmodel",
                "bench" => "mlcd-bench",
                "lint" => "mlcd-lint",
                "service" => "mlcd-service",
                other => other,
            }
            .to_string()
        } else {
            "mlcd-repro".to_string()
        };
        let file_name = path.rsplit('/').next().unwrap_or("");
        let is_test_file = path.contains("/tests/")
            || path.starts_with("tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
            || path.starts_with("examples/")
            || file_name == "tests.rs"
            || file_name.ends_with("_tests.rs")
            || file_name.starts_with("test_");
        let is_hot_path = HOT_PATHS.contains(&path.as_str());
        FileCtx { path, crate_name, is_test_file, is_hot_path }
    }
}

/// A parsed `// lint: allow(<rule>[, <scope>]) — <reason>` annotation.
#[derive(Debug)]
struct Allow {
    rule: Rule,
    scope: AllowScope,
    line: u32,
    col: u32,
    /// Set when a finding was suppressed by this annotation.
    used: std::cell::Cell<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum AllowScope {
    /// One source line (the annotated line itself).
    Line(u32),
    /// An inclusive line range (a whole `fn` body).
    Range(u32, u32),
    /// The whole file.
    File,
}

/// Lint a single file's source text under its path-derived context.
/// `rel_path` decides which rules apply; `source` is the file body.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let ctx = FileCtx::from_path(rel_path);
    let lexed = lex(source);
    let test_mask = test_region_mask(&lexed.tokens);
    // Annotations are parsed up front: the R7 lock-order declarations they
    // carry feed the rule pass, and the allow filter runs after it.
    let (allows, chains, mut bad) = parse_allows(&lexed, rel_path);

    let mut findings: Vec<Violation> = Vec::new();
    let v = |line: u32, col: u32, rule: Rule, message: String| Violation {
        file: rel_path.to_string(),
        line,
        col,
        rule,
        message,
    };

    // R1 — HashMap/HashSet iteration in ordered crates.
    if ORDERED_CRATES.contains(&ctx.crate_name.as_str()) && !ctx.is_test_file {
        for (line, col, msg) in hash_iteration_sites(&lexed.tokens, &test_mask) {
            findings.push(v(line, col, Rule::HashIter, msg));
        }
    }

    // R2 — wall-clock / OS entropy outside the bench crate and the
    // service's connection-logging layer.
    if ctx.crate_name != "mlcd-bench"
        && !NONDET_EXEMPT_PREFIXES.iter().any(|p| ctx.path.starts_with(p))
    {
        for (line, col, msg) in nondet_sources(&lexed.tokens) {
            findings.push(v(line, col, Rule::NondetSource, msg));
        }
    }

    // R3 — float equality and panicking float comparisons.
    if FLOAT_CRATES.contains(&ctx.crate_name.as_str()) && !ctx.is_test_file {
        for (line, col, msg) in float_cmp_sites(&lexed.tokens, &test_mask) {
            findings.push(v(line, col, Rule::FloatCmp, msg));
        }
    }

    // R4 — unsafe hygiene (everywhere), plus the forbid attribute pins.
    for (line, col, msg) in unsafe_without_safety(&lexed.tokens, &lexed.comments) {
        findings.push(v(line, col, Rule::UnsafeHygiene, msg));
    }
    if let Some((_, name)) = FORBID_UNSAFE_LIBS.iter().find(|(p, _)| *p == ctx.path) {
        if !has_forbid_unsafe(&lexed.tokens) {
            findings.push(v(
                1,
                1,
                Rule::UnsafeHygiene,
                format!("`{name}` must keep `#![forbid(unsafe_code)]` in its crate root"),
            ));
        }
    }

    // R5 — panics and direct indexing in the kernel hot paths.
    if ctx.is_hot_path {
        for (line, col, msg) in hot_panic_sites(&lexed.tokens, &test_mask) {
            findings.push(v(line, col, Rule::HotPanic, msg));
        }
        for (line, col, msg) in hot_index_sites(&lexed.tokens, &test_mask) {
            findings.push(v(line, col, Rule::HotIndex, msg));
        }
    }

    // R6–R9 — the scope-aware concurrency rules, built on crate::syntax.
    if !ctx.is_test_file {
        let syn = Syntax::build(&lexed.tokens);
        for (line, col, msg) in guard_blocking_findings(&lexed.tokens, &syn, &test_mask) {
            findings.push(v(line, col, Rule::GuardBlocking, msg));
        }
        for (line, col, msg) in
            lock_order_findings(&lexed.tokens, &syn, &test_mask, &ctx.crate_name, &chains)
        {
            findings.push(v(line, col, Rule::LockOrder, msg));
        }
        if SIM_HANDLER_FILES.contains(&ctx.path.as_str()) {
            for (line, col, msg) in sim_handler_findings(&lexed.tokens, &syn, &test_mask) {
                findings.push(v(line, col, Rule::SimHandler, msg));
            }
        }
        if ctx.crate_name == "mlcd-service" && !POISON_BOUNDARY_FILES.contains(&ctx.path.as_str()) {
            for (line, col, msg) in lock_unwrap_findings(&lexed.tokens, &test_mask) {
                findings.push(v(line, col, Rule::LockUnwrap, msg));
            }
        }
    }

    // Resolve annotations: drop suppressed findings, then report
    // annotation hygiene problems.
    findings.retain(|f| {
        !allows.iter().any(|a| {
            let hit = a.rule == f.rule
                && match a.scope {
                    AllowScope::Line(l) => f.line == l,
                    AllowScope::Range(lo, hi) => (lo..=hi).contains(&f.line),
                    AllowScope::File => true,
                };
            if hit {
                a.used.set(true);
            }
            hit
        })
    });
    for a in &allows {
        if !a.used.get() {
            bad.push(v(
                a.line,
                a.col,
                Rule::UnusedAllow,
                format!(
                    "allow({}) suppresses nothing — remove the stale annotation",
                    a.rule.name()
                ),
            ));
        }
    }
    findings.append(&mut bad);
    findings.sort_by(|a, b| {
        a.line
            .cmp(&b.line)
            .then_with(|| a.col.cmp(&b.col))
            .then_with(|| a.rule.name().cmp(b.rule.name()))
    });
    findings
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Mark token indices that live inside `#[cfg(test)] mod .. { .. }` or
/// `#[test] fn .. { .. }` regions. The repo convention keeps unit tests in
/// a trailing `#[cfg(test)] mod tests`, so brace-matching from those
/// attributes covers in-file test code; whole-file test targets are
/// classified by path in [`FileCtx`].
fn test_region_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attr(toks, i) {
            if let Some((open, close)) = first_brace_block(toks, after_attr) {
                for m in mask.iter_mut().take(close + 1).skip(open) {
                    *m = true;
                }
                i = after_attr;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// If `toks[i..]` starts a `#[cfg(test)]` or `#[test]` attribute, return
/// the index just past `]`.
fn match_test_attr(toks: &[Token], i: usize) -> Option<usize> {
    if !toks.get(i)?.kind.is_punct("#") || !toks.get(i + 1)?.kind.is_punct("[") {
        return None;
    }
    let t2 = &toks.get(i + 2)?.kind;
    if t2.is_ident("test") && toks.get(i + 3)?.kind.is_punct("]") {
        return Some(i + 4);
    }
    if t2.is_ident("cfg")
        && toks.get(i + 3)?.kind.is_punct("(")
        && toks.get(i + 4)?.kind.is_ident("test")
        && toks.get(i + 5)?.kind.is_punct(")")
        && toks.get(i + 6)?.kind.is_punct("]")
    {
        return Some(i + 7);
    }
    None
}

/// Find the first `{ .. }` block at or after `start`, skipping further
/// attributes, and return (open index, close index). Gives up at `;`
/// before any `{` (an out-of-line `mod name;` — the referenced file is
/// classified by path instead).
fn first_brace_block(toks: &[Token], start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct("{") => {
                let mut depth = 0usize;
                let open = i;
                while i < toks.len() {
                    match &toks[i].kind {
                        Tok::Punct("{") => depth += 1,
                        Tok::Punct("}") => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((open, i));
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some((open, toks.len() - 1));
            }
            Tok::Punct(";") => return None,
            _ => i += 1,
        }
    }
    None
}

// ---------------------------------------------------------------------------
// R1: HashMap/HashSet iteration
// ---------------------------------------------------------------------------

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
];

fn hash_iteration_sites(toks: &[Token], test_mask: &[bool]) -> Vec<(u32, u32, String)> {
    // Pass 1 — names bound to a hash type, by declaration-site patterns:
    //   `name : [&|&'a|mut]* HashMap`   (let ascription, field, fn param)
    //   `let [mut] name = HashMap::<ctor>(..)`
    let mut names: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        if !HASH_TYPES.contains(&id) {
            continue;
        }
        // Walk back over type-position noise to a `:`.
        let mut j = i;
        while j > 0
            && (matches!(
                &toks[j - 1].kind,
                Tok::Punct("&") | Tok::Punct("<") | Tok::Punct(",") | Tok::Lifetime
            ) || toks[j - 1].kind.is_ident("mut")
                || toks[j - 1].kind.is_ident("dyn"))
        {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].kind.is_punct(":") {
            if let Some(name) = toks[j - 2].kind.ident() {
                names.push(name.to_string());
            }
        }
        // `let [mut] name = HashMap::ctor(..)`.
        if i >= 2 && toks[i - 1].kind.is_punct("=") {
            if let Some(name) = toks[i - 2].kind.ident() {
                let let_pos = if i >= 3 && toks[i - 3].kind.is_ident("mut") { 4 } else { 3 };
                if i >= let_pos && toks[i - let_pos].kind.is_ident("let") {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();

    // Pass 2 — iteration over a tracked name.
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(id) = t.kind.ident() else { continue };
        // `name.iter()` / `name.keys()` / …
        if names.iter().any(|n| n == id)
            && toks.get(i + 1).is_some_and(|n| n.kind.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|m| m.kind.ident().is_some_and(|m| ITER_METHODS.contains(&m)))
        {
            let method = toks[i + 2].kind.ident().unwrap_or("");
            out.push((
                t.line,
                t.col,
                format!(
                    "`{id}.{method}()` iterates a HashMap/HashSet in arbitrary order — \
                     use BTreeMap/BTreeSet or sort an explicit view first"
                ),
            ));
        }
        // `for pat in [&|&mut] name {` / `for (..) in &name {`.
        if id == "for" {
            if let Some((line, col, name)) = for_loop_over(toks, i, &names) {
                out.push((
                    line,
                    col,
                    format!(
                        "`for .. in {name}` iterates a HashMap/HashSet in arbitrary order — \
                         use BTreeMap/BTreeSet or sort an explicit view first"
                    ),
                ));
            }
        }
    }
    out
}

/// If the `for` loop at token `i` iterates directly over one of `names`,
/// return (line, col, name). Looks for `in [&] [mut] <name> {`.
fn for_loop_over(toks: &[Token], i: usize, names: &[String]) -> Option<(u32, u32, String)> {
    // Find the `in` belonging to this `for` (before the body `{`, outside
    // any pattern parens).
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Punct("(") | Tok::Punct("[") => depth += 1,
            Tok::Punct(")") | Tok::Punct("]") => depth -= 1,
            Tok::Punct("{") if depth == 0 => return None,
            Tok::Ident(s) if s == "in" && depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let mut k = j + 1;
    while k < toks.len() && (toks[k].kind.is_punct("&") || toks[k].kind.is_ident("mut")) {
        k += 1;
    }
    // `for .. in &self.field` — skip the `self.` prefix.
    if toks.get(k).is_some_and(|t| t.kind.is_ident("self"))
        && toks.get(k + 1).is_some_and(|t| t.kind.is_punct("."))
    {
        k += 2;
    }
    let name = toks.get(k)?.kind.ident()?;
    if names.iter().any(|n| n == name) && toks.get(k + 1).is_some_and(|t| t.kind.is_punct("{")) {
        return Some((toks[k].line, toks[k].col, name.to_string()));
    }
    None
}

// ---------------------------------------------------------------------------
// R2: wall-clock / OS entropy
// ---------------------------------------------------------------------------

fn nondet_sources(toks: &[Token]) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        match id {
            "Instant" | "SystemTime"
                if toks.get(i + 1).is_some_and(|n| n.kind.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|m| m.kind.is_ident("now")) =>
            {
                out.push((
                    t.line,
                    t.col,
                    format!(
                        "`{id}::now()` reads the wall clock — searches must be a pure \
                         function of their seed; use SimClock / virtual time"
                    ),
                ));
            }
            "thread_rng" | "from_entropy" => {
                out.push((
                    t.line,
                    t.col,
                    format!(
                        "`{id}` draws OS entropy — all randomness must flow from an \
                         explicit u64 seed (SmallRng::seed_from_u64)"
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R3: float comparisons
// ---------------------------------------------------------------------------

fn float_cmp_sites(toks: &[Token], test_mask: &[bool]) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        match &t.kind {
            Tok::Punct(op @ ("==" | "!=")) => {
                let float_lhs = i > 0 && matches!(toks[i - 1].kind, Tok::Float);
                let float_rhs = toks.get(i + 1).is_some_and(|n| matches!(n.kind, Tok::Float));
                if float_lhs || float_rhs {
                    out.push((
                        t.line,
                        t.col,
                        format!(
                            "float `{op}` comparison — exact float equality is \
                             representation-sensitive; use `total_cmp`, an epsilon, or the \
                             bit-pattern helpers (`mlcd_linalg::is_exact_zero`)"
                        ),
                    ));
                }
            }
            Tok::Ident(id) if id == "partial_cmp" => {
                // `partial_cmp( .. ).unwrap()` / `.expect(..)`: skip the
                // balanced argument list, then look for the panic.
                let Some(open) = toks.get(i + 1).filter(|t| t.kind.is_punct("(")) else {
                    continue;
                };
                let _ = open;
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].kind {
                        Tok::Punct("(") => depth += 1,
                        Tok::Punct(")") => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if toks.get(j + 1).is_some_and(|d| d.kind.is_punct("."))
                    && toks
                        .get(j + 2)
                        .is_some_and(|m| m.kind.is_ident("unwrap") || m.kind.is_ident("expect"))
                {
                    out.push((
                        t.line,
                        t.col,
                        "`partial_cmp(..).unwrap()` panics on NaN — a NaN posterior must \
                         order deterministically, use `f64::total_cmp`"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R4: unsafe hygiene
// ---------------------------------------------------------------------------

fn unsafe_without_safety(toks: &[Token], comments: &[Comment]) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    for t in toks {
        if !t.kind.is_ident("unsafe") {
            continue;
        }
        // A `// SAFETY:` comment must sit on the same line or within the
        // three lines above the `unsafe` keyword.
        let justified = comments.iter().any(|c| {
            c.text.trim_start().starts_with("SAFETY:") && c.line <= t.line && t.line - c.line <= 3
        });
        if !justified {
            out.push((
                t.line,
                t.col,
                "`unsafe` without a `// SAFETY:` comment directly above — state the \
                 invariant that makes this sound"
                    .to_string(),
            ));
        }
    }
    out
}

fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(7).any(|w| {
        w[0].kind.is_punct("#")
            && w[1].kind.is_punct("!")
            && w[2].kind.is_punct("[")
            && w[3].kind.is_ident("forbid")
            && w[4].kind.is_punct("(")
            && w[5].kind.is_ident("unsafe_code")
            && w[6].kind.is_punct(")")
    })
}

// ---------------------------------------------------------------------------
// R5: hot-path panics and indexing
// ---------------------------------------------------------------------------

fn hot_panic_sites(toks: &[Token], test_mask: &[bool]) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(id) = t.kind.ident() else { continue };
        if (id == "unwrap" || id == "expect")
            && i > 0
            && toks[i - 1].kind.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.kind.is_punct("("))
        {
            out.push((
                t.line,
                t.col,
                format!(
                    "`.{id}(..)` in a kernel hot path — return the error or justify why \
                     this cannot fail"
                ),
            ));
        }
    }
    out
}

fn hot_index_sites(toks: &[Token], test_mask: &[bool]) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !t.kind.is_punct("[") || i == 0 {
            continue;
        }
        // Indexing = `[` directly after an expression tail: an identifier,
        // `)`, or `]`. Array types/literals, slices in types, attributes
        // (`#[..]`, `![..]`) and `vec![..]` all have other predecessors.
        let prev = &toks[i - 1].kind;
        let is_expr_tail = matches!(prev, Tok::Ident(_) | Tok::Punct(")") | Tok::Punct("]"));
        if !is_expr_tail {
            continue;
        }
        // `vec![`, `matches!(..)[` style macros: `ident !` precedes `[`,
        // so `prev` is `!` there — already excluded. But `ident` directly
        // before `[` can still be a macro name in `name![..]`; that form
        // always has `!` between, so no further check needed.
        out.push((
            t.line,
            t.col,
            "direct indexing in a kernel hot path can panic — use `get`/iterators or \
             justify the bound"
                .to_string(),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// R6: guard liveness across blocking calls
// ---------------------------------------------------------------------------

/// A `let` binding that holds a lock guard: its RHS ends in an
/// acquisition (optionally followed by `.unwrap()`/`.expect(..)`/`?`).
struct GuardBinding<'a> {
    name: &'a str,
    lock_name: Option<&'a str>,
    method: &'a str,
    /// Token range in which the guard is live: (stmt_end, live_end).
    live: (usize, usize),
    /// Token index of the acquisition itself (excluded from R7 nesting).
    acq_idx: usize,
}

/// Pair each tracked `let` binding with the acquisition that makes it a
/// guard, if any.
fn guard_bindings<'a>(
    toks: &[Token],
    syn: &'a Syntax,
    acqs: &'a [crate::syntax::Acquisition],
) -> Vec<GuardBinding<'a>> {
    let mut out = Vec::new();
    for b in &syn.lets {
        let Some(acq) = acqs.iter().find(|a| a.idx >= b.rhs_start && a.idx < b.stmt_end) else {
            continue;
        };
        if !is_terminal_in_stmt(toks, acq, b.stmt_end) {
            continue;
        }
        out.push(GuardBinding {
            name: &b.name,
            lock_name: acq.lock_name.as_deref(),
            method: &acq.method,
            live: (b.stmt_end, b.live_end),
            acq_idx: acq.idx,
        });
    }
    out
}

fn guard_blocking_findings(
    toks: &[Token],
    syn: &Syntax,
    test_mask: &[bool],
) -> Vec<(u32, u32, String)> {
    let acqs = acquisitions(toks);
    let guards = guard_bindings(toks, syn, &acqs);
    let blocking = blocking_sites(toks);
    let mut out = Vec::new();
    for g in &guards {
        for bs in &blocking {
            if bs.idx <= g.live.0 || bs.idx >= g.live.1 {
                continue;
            }
            if test_mask.get(bs.idx).copied().unwrap_or(false) {
                continue;
            }
            // Condvar protocol: the wait *consumes* the guard it is handed.
            if bs.is_wait && bs.args.iter().any(|a| a == g.name) {
                continue;
            }
            // Blocking IO on the guarded resource itself (Mutex<File> and
            // friends): the lock exists to serialize exactly this call.
            if bs.recv_head.as_deref() == Some(g.name) {
                continue;
            }
            let lock = g.lock_name.unwrap_or("<lock>");
            out.push((
                toks[bs.idx].line,
                toks[bs.idx].col,
                format!(
                    "guard `{}` (`{}` of `{}`) is still live across blocking `{}` — \
                     narrow the critical section: stage the data, `drop({})`, then block",
                    g.name, g.method, lock, bs.what, g.name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R7: lock ordering
// ---------------------------------------------------------------------------

/// Flatten manifest + in-file chains into (earlier, later) pairs of
/// canonical names plus an alias → canonical map.
struct LockOrder {
    before: Vec<(String, String)>,
    canon: Vec<(String, String)>,
}

impl LockOrder {
    fn build(crate_name: &str, file_chains: &[Vec<Vec<String>>]) -> LockOrder {
        let mut chains: Vec<Vec<Vec<String>>> = Vec::new();
        for (c, chain) in LOCK_ORDER_MANIFEST {
            if *c == crate_name {
                chains.push(
                    chain.iter().map(|g| g.iter().map(|s| s.to_string()).collect()).collect(),
                );
            }
        }
        chains.extend(file_chains.iter().cloned());
        let mut before = Vec::new();
        let mut canon = Vec::new();
        for chain in &chains {
            for group in chain {
                let head = group[0].clone();
                for alias in group {
                    canon.push((alias.clone(), head.clone()));
                }
            }
            for i in 0..chain.len() {
                for j in (i + 1)..chain.len() {
                    before.push((chain[i][0].clone(), chain[j][0].clone()));
                }
            }
        }
        LockOrder { before, canon }
    }

    fn canonical<'a>(&'a self, name: &'a str) -> &'a str {
        self.canon.iter().find(|(a, _)| a == name).map(|(_, c)| c.as_str()).unwrap_or(name)
    }

    fn declared_before(&self, a: &str, b: &str) -> bool {
        self.before.iter().any(|(x, y)| x == a && y == b)
    }
}

/// Whether a lock name looks like one shard of a sharded family.
fn is_shard_family(name: &str) -> bool {
    name.ends_with("_shard") || name.ends_with("_shards") || name == "shard" || name == "shards"
}

fn lock_order_findings(
    toks: &[Token],
    syn: &Syntax,
    test_mask: &[bool],
    crate_name: &str,
    file_chains: &[Vec<Vec<String>>],
) -> Vec<(u32, u32, String)> {
    let order = LockOrder::build(crate_name, file_chains);
    let acqs = acquisitions(toks);
    let guards = guard_bindings(toks, syn, &acqs);
    let mut out = Vec::new();
    for g in &guards {
        let Some(outer_raw) = g.lock_name else { continue };
        let outer = order.canonical(outer_raw);
        for a in &acqs {
            if a.idx <= g.live.0 || a.idx >= g.live.1 || a.idx == g.acq_idx {
                continue;
            }
            if test_mask.get(a.idx).copied().unwrap_or(false) {
                continue;
            }
            let Some(inner_raw) = a.lock_name.as_deref() else { continue };
            let inner = order.canonical(inner_raw);
            let (line, col) = (toks[a.idx].line, toks[a.idx].col);
            if inner == outer {
                let msg = if is_shard_family(inner) {
                    format!(
                        "`{inner_raw}` acquired while guard `{}` already holds a \
                         `{outer_raw}` lock — two shards of one family must be taken in \
                         ascending shard index (state the ordering in an allow reason) \
                         or restructured",
                        g.name
                    )
                } else {
                    format!(
                        "`{inner_raw}` acquired while guard `{}` already holds it — \
                         nested acquisition of the same std Mutex self-deadlocks",
                        g.name
                    )
                };
                out.push((line, col, msg));
            } else if order.declared_before(inner, outer) {
                out.push((
                    line,
                    col,
                    format!(
                        "lock order inversion: `{inner_raw}` acquired while guard `{}` \
                         holds `{outer_raw}`, but the declared order is \
                         `{inner} < {outer}` — release `{outer_raw}` first or fix the \
                         declaration",
                        g.name
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R8: sim-handler purity
// ---------------------------------------------------------------------------

/// Identifiers whose appearance inside a sim event handler signals IO,
/// wall time, threading, or locking — each with its complaint.
const HANDLER_BANNED: &[(&str, &str)] = &[
    ("File", "filesystem IO"),
    ("OpenOptions", "filesystem IO"),
    ("TcpStream", "network IO"),
    ("TcpListener", "network IO"),
    ("UdpSocket", "network IO"),
    ("stdin", "console IO"),
    ("stdout", "console IO"),
    ("stderr", "console IO"),
    ("println", "console IO"),
    ("eprintln", "console IO"),
    ("print", "console IO"),
    ("eprint", "console IO"),
    ("write_all", "IO"),
    ("flush", "IO"),
    ("sync_all", "filesystem IO"),
    ("sync_data", "filesystem IO"),
    ("read_to_string", "filesystem IO"),
    ("create_dir_all", "filesystem IO"),
    ("remove_file", "filesystem IO"),
    ("Instant", "wall-clock time"),
    ("SystemTime", "wall-clock time"),
    ("sleep", "wall-clock time"),
    ("spawn", "threading"),
    ("recv", "channel blocking"),
    ("Mutex", "locking"),
    ("RwLock", "locking"),
    ("Condvar", "locking"),
];

/// Is the `fn` name a sim event handler under the R8 purity contract?
fn is_handler_name(name: &str) -> bool {
    name == "on_event" || name == "handle" || name.starts_with("on_") || name.starts_with("handle_")
}

fn sim_handler_findings(
    toks: &[Token],
    syn: &Syntax,
    test_mask: &[bool],
) -> Vec<(u32, u32, String)> {
    let acqs = acquisitions(toks);
    let mut out = Vec::new();
    for f in &syn.fns {
        if !is_handler_name(&f.name) {
            continue;
        }
        for (i, t) in toks.iter().enumerate().take(f.close).skip(f.open + 1) {
            if test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Some(id) = t.kind.ident() else { continue };
            if let Some((_, why)) = HANDLER_BANNED.iter().find(|(b, _)| *b == id) {
                out.push((
                    t.line,
                    t.col,
                    format!(
                        "`{id}` ({why}) inside sim handler `{}` — handlers must be a pure \
                         function of (state, event); move effects to the driver layer",
                        f.name
                    ),
                ));
            }
        }
        for a in acqs.iter().filter(|a| a.idx > f.open && a.idx < f.close) {
            if test_mask.get(a.idx).copied().unwrap_or(false) {
                continue;
            }
            out.push((
                toks[a.idx].line,
                toks[a.idx].col,
                format!(
                    "lock acquisition (`{}` of `{}`) inside sim handler `{}` — handlers \
                     must be pure; shared state belongs to the component itself",
                    a.method,
                    a.lock_name.as_deref().unwrap_or("<lock>"),
                    f.name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R9: lock-unwrap discipline
// ---------------------------------------------------------------------------

/// Methods whose poison Result must not be unwrapped outside the
/// boundary: guard acquisitions plus condvar waits.
const POISONABLE_METHODS: &[&str] =
    &["lock", "read", "write", "wait", "wait_timeout", "wait_while"];

fn lock_unwrap_findings(toks: &[Token], test_mask: &[bool]) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(id) = t.kind.ident() else { continue };
        if !POISONABLE_METHODS.contains(&id)
            || i == 0
            || !toks[i - 1].kind.is_punct(".")
            || !toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("))
        {
            continue;
        }
        // `.lock()`/`.read()`/`.write()` must be empty-argument calls
        // (RwLock acquisition, not io::Read/Write); waits take arguments.
        let is_wait = id.starts_with("wait");
        let Some(close) = crate::syntax::call_close_paren(toks, i + 1) else { continue };
        if !is_wait && close != i + 2 {
            continue;
        }
        let unwrapper = toks.get(close + 1).is_some_and(|t| t.kind.is_punct("."))
            && toks
                .get(close + 2)
                .is_some_and(|t| t.kind.is_ident("unwrap") || t.kind.is_ident("expect"));
        if !unwrapper {
            continue;
        }
        let helper = if is_wait { "wait_or_die" } else { "lock_or_die" };
        let u = toks[close + 2].kind.ident().unwrap_or("unwrap");
        out.push((
            t.line,
            t.col,
            format!(
                "`.{id}(..).{u}(..)` unwraps lock poison ad hoc — route it through \
                 `crate::sync::{helper}` so the service's poison policy stays one \
                 audited site"
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Allowlist annotations
// ---------------------------------------------------------------------------

/// Parse every `lint:` annotation in the file. Returns the usable
/// allows, the `lock-order:` declaration chains (each chain a list of
/// alias groups, outermost-first), and violations for malformed ones.
fn parse_allows(
    lexed: &LexOut,
    rel_path: &str,
) -> (Vec<Allow>, Vec<Vec<Vec<String>>>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut chains: Vec<Vec<Vec<String>>> = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else { continue };
        let rest = rest.trim_start();
        let mut fail = |message: String| {
            bad.push(Violation {
                file: rel_path.to_string(),
                line: c.line,
                col: c.col,
                rule: Rule::BadAnnotation,
                message,
            });
        };
        // `lint: lock-order: a < b|b_alias < c` — an R7 order declaration.
        if let Some(decl) = rest.strip_prefix("lock-order") {
            let decl = decl.trim_start();
            let Some(decl) = decl.strip_prefix(':') else {
                fail(
                    "malformed lock-order declaration — expected `lint: lock-order: a < b < c`"
                        .into(),
                );
                continue;
            };
            let groups: Vec<Vec<String>> = decl
                .split('<')
                .map(|g| {
                    g.split('|')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect()
                })
                .collect();
            let well_formed = groups.len() >= 2
                && groups.iter().all(|g| {
                    !g.is_empty()
                        && g.iter().all(|n| {
                            !n.is_empty()
                                && n.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
                        })
                });
            if !well_formed {
                fail(
                    "malformed lock-order declaration — expected `lint: lock-order: \
                     a < b|b_alias < c` with identifier lock names"
                        .into(),
                );
                continue;
            }
            chains.push(groups);
            continue;
        }
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            fail(
                "malformed lint annotation — expected `lint: allow(<rule>[, <scope>]) — <reason>`"
                    .into(),
            );
            continue;
        };
        let (inside, after) = args;
        let mut parts = inside.split(',').map(str::trim);
        let rule_name = parts.next().unwrap_or("");
        let Some(rule) = Rule::from_allow_name(rule_name) else {
            fail(format!("unknown rule `{rule_name}` in lint annotation"));
            continue;
        };
        let scope_word = parts.next();
        if parts.next().is_some() {
            fail(
                "too many arguments in lint annotation — expected `allow(<rule>[, fn|file])`"
                    .into(),
            );
            continue;
        }
        // The reason is mandatory: `— <why this is sound>` after the `)`.
        let reason = after
            .trim_start()
            .strip_prefix('—')
            .or_else(|| after.trim_start().strip_prefix("--"))
            .or_else(|| after.trim_start().strip_prefix('-'))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            fail(format!(
                "allow({rule_name}) carries no reason — write `lint: allow({rule_name}) — <why>`"
            ));
            continue;
        }
        let scope = match scope_word {
            None => {
                if c.trailing {
                    AllowScope::Line(c.line)
                } else {
                    // Free-standing comment: annotates the next code line.
                    match lexed.tokens.iter().find(|t| t.line > c.line) {
                        Some(t) => AllowScope::Line(t.line),
                        None => {
                            fail("lint annotation at end of file annotates nothing".into());
                            continue;
                        }
                    }
                }
            }
            Some("file") => AllowScope::File,
            Some("fn") => match fn_body_range(&lexed.tokens, c.line) {
                Some((lo, hi)) => AllowScope::Range(lo, hi),
                None => {
                    fail("allow(.., fn) is not followed by a function".into());
                    continue;
                }
            },
            Some(other) => {
                fail(format!("unknown scope `{other}` in lint annotation — use `fn` or `file`"));
                continue;
            }
        };
        allows.push(Allow {
            rule,
            scope,
            line: c.line,
            col: c.col,
            used: std::cell::Cell::new(false),
        });
    }
    (allows, chains, bad)
}

/// Line range (signature line through closing brace) of the first `fn`
/// item starting after `line`.
fn fn_body_range(toks: &[Token], line: u32) -> Option<(u32, u32)> {
    let start = toks.iter().position(|t| t.line > line && t.kind.is_ident("fn"))?;
    let (open, close) = first_brace_block(toks, start)?;
    Some((toks[start].line, toks[close].line.max(toks[open].line)))
}
