#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

//! `mlcd-lint` — the workspace determinism & numeric-safety
//! static-analysis pass.
//!
//! Every result this reproduction stands on (golden `SearchOutcome`
//! digests, traced ≡ untraced purity, parallel ≡ sequential grids, the
//! seed-pinned figure claims) depends on bit-exact determinism and
//! NaN-free float handling. This crate *enforces* those rules lexically:
//! it tokenizes every `.rs` file under `crates/*`, `src/`, `examples/` and
//! `tests/` with a hand-rolled lexer (no external dependencies, consistent
//! with the offline `vendor/` policy), recovers lightweight scope facts
//! with [`syntax`], and checks nine rule families plus annotation
//! hygiene — see [`rules::Rule`] and DESIGN.md §"Determinism lint".
//!
//! Run it as `cargo run -p mlcd-lint -- --deny` (CI does); the only
//! escape hatch is an inline `// lint: allow(<rule>) — <reason>`
//! annotation whose reason text is mandatory.

pub mod lexer;
pub mod rules;
pub mod syntax;

pub use rules::{lint_source, FileCtx, Rule, Violation};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Top-level directories scanned for `.rs` files, relative to the
/// workspace root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Directory names never descended into. `vendor/` holds offline shims of
/// third-party crates (not our code), `fixtures/` holds the lint's own
/// deliberately-bad test inputs.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "golden"];

/// Collect every `.rs` file under the scan roots, sorted so diagnostics
/// are emitted in a stable order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`. Violations come back sorted
/// by file, then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        violations.extend(lint_source(&rel, &source));
    }
    violations.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(violations)
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// The `--json` schema version. Bumped when the document shape changes:
/// format 2 added this field and per-violation byte columns.
pub const JSON_FORMAT: u32 = 2;

/// Render violations as a JSON document (machine-readable mode). No
/// external JSON crate: the document is assembled by hand with proper
/// string escaping. `tests/json_schema.rs` pins the shape.
pub fn to_json(violations: &[Violation]) -> String {
    let mut s = format!("{{\"format\":{JSON_FORMAT},\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&v.file),
            v.line,
            v.col,
            json_str(v.rule.name()),
            json_str(&v.message)
        ));
    }
    s.push_str(&format!("],\"count\":{}}}", violations.len()));
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        let v = vec![Violation {
            file: "a\"b.rs".into(),
            line: 3,
            col: 7,
            rule: Rule::FloatCmp,
            message: "tab\there".into(),
        }];
        let j = to_json(&v);
        assert!(j.starts_with("{\"format\":2,"));
        assert!(j.contains(r#""file":"a\"b.rs""#));
        assert!(j.contains(r#""line":3,"col":7"#));
        assert!(j.contains(r#"tab\there"#));
        assert!(j.ends_with("\"count\":1}"));
    }

    #[test]
    fn workspace_root_is_found_from_nested_dirs() {
        let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/lint").exists());
    }
}
