//! Fleet mode: concurrent sessions share one simulated capacity pool.
//!
//! Normally every session owns a private `SimCloud` — probes never
//! contend and billing is per-session by construction. In fleet mode
//! ([`crate::session::ServiceConfig::fleet`]) the manager instead owns
//! one shared [`SimCloud`] with finite per-type capacity caps, and a
//! [`mlcd_fleet::FleetScheduler`] policy arbitrates which session runs
//! its next probe against that pool:
//!
//! * Each session's profiler is built over a [`FleetCloud`] — the
//!   shared provider plus per-session cluster ownership, so
//!   `total_spent()` (and with it every probe-cost delta) stays
//!   tenant-local on the shared ledger.
//! * A [`FleetGateEnv`] wraps the profiler *inside* the shared probe
//!   cache: each `profile()` first acquires the pool turn (the policy
//!   decides who goes next), then runs the whole probe — launch, wait,
//!   measure, terminate — atomically in virtual time. A policy *denial*
//!   settles the request with [`CloudError::Denied`], which the gate
//!   surfaces as a failed probe so the searcher drops the candidate —
//!   the same contract as the fleet driver's `settle_deny`. Cache hits
//!   are free and never touch the pool, so a popular deployment costs
//!   the fleet one admission, total.
//! * The final training run takes one turn the same way.
//!
//! Unlike `mlcd-fleet`'s strict-handoff driver, the service gate is
//! driven by OS scheduling of the worker pool: which session reaches the
//! gate first is wall-clock nondeterministic, so fleet mode is
//! incompatible with journaling (crash-resume replays require
//! bit-reproducible probe streams) — [`crate::session::SessionManager::new`]
//! rejects the combination. Deterministic fleet experiments live in the
//! `mlcd-fleet` crate; fleet *service* mode trades determinism for a live
//! multi-tenant pool with real backpressure.

use crate::sync::{lock_or_die, wait_or_die};
use mlcd::env::paper_probe_duration;
use mlcd::prelude::{
    Deployment, InstanceType, Money, Observation, ProfileError, ProfilingEnv, SearchSpace,
    SimDuration, SimTime,
};
use mlcd::system::CloudInterface;
use mlcd_cloudsim::{CloudError, Cluster, ClusterId, MetricStore, SimCloud};
use mlcd_fleet::{
    policy_by_name, Decision, FleetScheduler, FleetView, JobCtx, PendingReq, Purpose,
};
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// Fleet-mode configuration: which policy arbitrates the pool and how
/// much capacity the pool holds.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Scheduling policy name ([`mlcd_fleet::POLICY_NAMES`]).
    pub policy: String,
    /// Seed of the shared simulated cloud.
    pub seed: u64,
    /// Capacity cap for every CPU instance type.
    pub cpu_cap: u32,
    /// Capacity cap for every GPU instance type.
    pub gpu_cap: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { policy: "fifo".to_string(), seed: 2020, cpu_cap: 64, gpu_cap: 16 }
    }
}

/// Fleet counters, as reported in `Stats` (see
/// [`crate::proto::FleetStatsWire`] for the wire mirror).
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetCounters {
    /// Launch turns granted (probes + training runs).
    pub admitted: u64,
    /// Requests that had to wait at least one decision round.
    pub deferred: u64,
    /// Requests the policy refused outright: the session observes
    /// [`CloudError::Denied`] and its searcher drops the candidate
    /// (mirroring the fleet driver's `settle_deny`).
    pub denied: u64,
    /// Spot revocations tenants suffered on the shared pool.
    pub preempted: u64,
    /// Requests currently waiting at the gate.
    pub queue_depth: u64,
}

struct Gate {
    policy: Box<dyn FleetScheduler>,
    pending: BTreeMap<u64, PendingReq>,
    jobs: BTreeMap<u64, JobCtx>,
    clusters: BTreeMap<u64, Vec<ClusterId>>,
    /// A granted turn is executing its probe/training on the shared
    /// clock.
    busy: bool,
    admitted: u64,
    deferred: u64,
    denied: u64,
    preempted: u64,
}

/// The shared capacity pool: one `SimCloud` plus the admission gate all
/// fleet sessions go through.
pub struct FleetPool {
    shared: SimCloud,
    caps: BTreeMap<InstanceType, u32>,
    policy_name: &'static str,
    gate: Mutex<Gate>,
    turn_cv: Condvar,
}

impl FleetPool {
    /// Build the pool: shared cloud, capacity caps applied, policy
    /// resolved.
    ///
    /// # Errors
    /// When the policy name is unknown.
    pub fn new(cfg: &FleetConfig) -> Result<FleetPool, String> {
        let policy = policy_by_name(&cfg.policy)
            .ok_or_else(|| format!("unknown fleet policy `{}`", cfg.policy))?;
        let policy_name = policy.name();
        let shared = SimCloud::new(cfg.seed);
        let mut caps = BTreeMap::new();
        for itype in InstanceType::all() {
            let cap = if itype.spec().has_gpu() { cfg.gpu_cap } else { cfg.cpu_cap };
            shared.set_capacity(itype, cap);
            caps.insert(itype, cap);
        }
        Ok(FleetPool {
            shared,
            caps,
            policy_name,
            gate: Mutex::new(Gate {
                policy,
                pending: BTreeMap::new(),
                jobs: BTreeMap::new(),
                clusters: BTreeMap::new(),
                busy: false,
                admitted: 0,
                deferred: 0,
                denied: 0,
                preempted: 0,
            }),
            turn_cv: Condvar::new(),
        })
    }

    /// A handle to the shared provider (for building per-session
    /// [`FleetCloud`]s).
    pub fn cloud(&self) -> SimCloud {
        self.shared.clone()
    }

    /// The resolved policy name.
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// Register a session with the scheduler before its first probe.
    ///
    /// The returned guard deregisters the session when dropped —
    /// including during a panic/cancel unwind — so a dead session can
    /// never leave a pending request or job context behind in the gate
    /// (a leaked pending entry would make the policy grant a turn nobody
    /// can take, wedging every live waiter).
    #[must_use = "dropping the guard deregisters the session; bind it for the session's lifetime"]
    pub fn register(
        &self,
        id: u64,
        priority: u8,
        deadline: Option<SimDuration>,
    ) -> Registration<'_> {
        let now = self.shared.now();
        let ctx = JobCtx {
            priority,
            arrived_at: now,
            deadline_at: deadline.map(|d| now + d),
            spent: Money::ZERO,
            granted: 0,
            denied: 0,
        };
        lock_or_die(&self.gate, "fleet gate").jobs.insert(id, ctx);
        Registration { pool: self, id }
    }

    /// Drop a finished session from the scheduler's view.
    pub fn finish(&self, id: u64) {
        let mut g = lock_or_die(&self.gate, "fleet gate");
        g.jobs.remove(&id);
        g.pending.remove(&id);
        g.clusters.remove(&id);
        drop(g);
        self.turn_cv.notify_all();
    }

    /// Block until the policy settles `id`'s next launch request. A
    /// grant returns a guard holding the pool turn (one probe or
    /// training run at a time); a policy denial returns
    /// [`CloudError::Denied`] so the caller can surface it exactly like
    /// a failed launch (the fleet driver's `settle_deny` equivalent).
    ///
    /// Liveness: every decision round with an idle pool settles someone.
    /// A grant or denial of another session wakes that session, which
    /// re-derives the same verdict (the policy is a pure function of the
    /// unchanged gate state) and settles itself; a standing `Wait`
    /// force-grants the oldest request, because with the pool idle the
    /// shared clock cannot move and the policy's answer would never
    /// change — the driver's wedge-breaker, at the gate.
    ///
    /// # Errors
    /// [`CloudError::Denied`] when the policy refuses the request
    /// outright (e.g. fair-share's cost ceiling under contention).
    pub fn acquire(
        &self,
        id: u64,
        itype: InstanceType,
        n: u32,
        purpose: Purpose,
    ) -> Result<Turn<'_>, CloudError> {
        let mut g = lock_or_die(&self.gate, "fleet gate");
        let req = PendingReq {
            itype,
            n,
            spot: false,
            purpose,
            requested_at: self.shared.now(),
            quoted_cost: Money::from_dollars(
                itype.hourly_usd() * f64::from(n) * paper_probe_duration(n.max(1)).as_hours(),
            ),
        };
        g.pending.insert(id, req);
        let mut waited = false;
        loop {
            if !g.busy {
                // A request no policy could ever admit (bigger than the
                // cap or the quota) takes a turn straight away: the
                // launch inside the turn surfaces the provider's real
                // error, mirroring the driver's impossibility settlement.
                let cap = self.caps.get(&itype).copied().unwrap_or(0);
                if n > cap.min(self.shared.quota(itype)) {
                    return Ok(self.grant_locked(&mut g, id));
                }
                match decide(&mut g, &self.caps, &self.shared) {
                    Decision::Grant(j) if j == id => {
                        return Ok(self.grant_locked(&mut g, id));
                    }
                    Decision::Deny(j) if j == id => {
                        g.pending.remove(&id);
                        g.denied += 1;
                        if let Some(ctx) = g.jobs.get_mut(&id) {
                            ctx.denied += 1;
                        }
                        drop(g);
                        // The queue shrank; let the remaining waiters
                        // re-decide.
                        self.turn_cv.notify_all();
                        return Err(CloudError::Denied {
                            reason: "fleet admission: probe throttled under contention",
                        });
                    }
                    Decision::Grant(_) | Decision::Deny(_) => {
                        // Another session's settlement: wake it so it can
                        // re-derive the verdict and settle itself. (It is
                        // parked on the condvar or the gate mutex — every
                        // pending request belongs to a thread blocked in
                        // this loop; the registration guard removes the
                        // requests of dead sessions.)
                        self.turn_cv.notify_all();
                    }
                    Decision::Wait => {
                        let oldest = g
                            .pending
                            .iter()
                            .min_by_key(|(j, r)| (r.requested_at.as_secs().to_bits(), **j))
                            .map(|(j, _)| *j);
                        if oldest == Some(id) {
                            return Ok(self.grant_locked(&mut g, id));
                        }
                        self.turn_cv.notify_all();
                    }
                }
            }
            if !waited {
                waited = true;
                g.deferred += 1;
            }
            g = wait_or_die(&self.turn_cv, g, "fleet gate");
        }
    }

    /// Take the pool turn for `id` (gate lock held).
    fn grant_locked(&self, g: &mut Gate, id: u64) -> Turn<'_> {
        g.pending.remove(&id);
        g.busy = true;
        g.admitted += 1;
        if let Some(ctx) = g.jobs.get_mut(&id) {
            ctx.granted += 1;
        }
        Turn { pool: self }
    }

    /// Record a cluster as owned by a session (tenant-local billing).
    fn note_cluster(&self, id: u64, cluster: ClusterId) {
        lock_or_die(&self.gate, "fleet gate").clusters.entry(id).or_default().push(cluster);
    }

    /// Count a spot revocation suffered on the shared pool.
    fn note_preemption(&self) {
        lock_or_die(&self.gate, "fleet gate").preempted += 1;
    }

    /// Snapshot the counters.
    pub fn counters(&self) -> FleetCounters {
        let g = lock_or_die(&self.gate, "fleet gate");
        FleetCounters {
            admitted: g.admitted,
            deferred: g.deferred,
            denied: g.denied,
            preempted: g.preempted,
            queue_depth: g.pending.len() as u64,
        }
    }
}

/// Run one policy decision against the current gate state. Spend is
/// refreshed lazily from the shared ledger (per-session cluster sums) so
/// cost-aware policies see up-to-date totals.
fn decide(g: &mut Gate, caps: &BTreeMap<InstanceType, u32>, shared: &SimCloud) -> Decision {
    if g.pending.is_empty() {
        return Decision::Wait;
    }
    let billing = shared.billing();
    let spent: BTreeMap<u64, Money> = g
        .clusters
        .iter()
        .map(|(id, cs)| (*id, cs.iter().map(|c| billing.cost_for_cluster(*c)).sum()))
        .collect();
    for (id, ctx) in g.jobs.iter_mut() {
        if let Some(s) = spent.get(id) {
            ctx.spent = *s;
        }
    }
    let free: BTreeMap<InstanceType, u32> = caps
        .iter()
        .map(|(&itype, &cap)| (itype, shared.capacity_available(itype).unwrap_or(cap)))
        .collect();
    let view =
        FleetView { now: shared.now(), caps, free: &free, pending: &g.pending, jobs: &g.jobs };
    g.policy.decide(&view)
}

/// An admitted pool turn; dropping it passes the pool to the next
/// waiter.
pub struct Turn<'a> {
    pool: &'a FleetPool,
}

impl Drop for Turn<'_> {
    fn drop(&mut self) {
        lock_or_die(&self.pool.gate, "fleet gate").busy = false;
        self.pool.turn_cv.notify_all();
    }
}

/// A session's membership in the gate, returned by
/// [`FleetPool::register`]. Dropping it runs [`FleetPool::finish`], so
/// the scheduler's view is cleaned up on every exit path — normal
/// completion, cancellation and searcher panics alike (the session body
/// unwinds through `catch_unwind`, dropping this guard on the way).
pub struct Registration<'a> {
    pool: &'a FleetPool,
    id: u64,
}

impl Drop for Registration<'_> {
    fn drop(&mut self) {
        self.pool.finish(self.id);
    }
}

/// Per-session [`CloudInterface`] over the shared pool: forwards
/// lifecycle calls, tracks cluster ownership, and keeps
/// [`total_spent`](CloudInterface::total_spent) tenant-local so probe
/// cost deltas never include other sessions' activity.
pub struct FleetCloud<'a> {
    pool: &'a FleetPool,
    shared: SimCloud,
    id: u64,
    owned: std::cell::RefCell<Vec<ClusterId>>,
}

impl<'a> FleetCloud<'a> {
    /// A session-scoped handle onto the pool.
    pub fn new(pool: &'a FleetPool, id: u64) -> FleetCloud<'a> {
        FleetCloud { pool, shared: pool.cloud(), id, owned: std::cell::RefCell::new(Vec::new()) }
    }
}

impl CloudInterface for FleetCloud<'_> {
    fn launch(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        let res = self.shared.launch(itype, n);
        if let Ok(c) = &res {
            self.owned.borrow_mut().push(c.id);
            self.pool.note_cluster(self.id, c.id);
        }
        res
    }

    fn launch_spot(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        let res = self.shared.launch_spot(itype, n);
        if let Ok(c) = &res {
            self.owned.borrow_mut().push(c.id);
            self.pool.note_cluster(self.id, c.id);
        }
        res
    }

    fn wait_until_running(&self, cluster: &Cluster) -> SimDuration {
        self.shared.wait_until_running(cluster)
    }

    fn run_for(&self, cluster: &Cluster, d: SimDuration) -> Result<(), CloudError> {
        let res = self.shared.run_for(cluster, d);
        if matches!(res, Err(CloudError::SpotRevoked { .. })) {
            self.pool.note_preemption();
        }
        res
    }

    fn terminate(&self, cluster: &Cluster) {
        self.shared.terminate(cluster);
    }

    fn terminate_at(&self, cluster: &Cluster, end: SimTime) {
        self.shared.terminate_at(cluster, end);
    }

    fn skip_to(&self, t: SimTime) {
        // On a shared clock another tenant may already have advanced past
        // `t`; skipping backwards is meaningless.
        if t.as_secs() > self.shared.now().as_secs() {
            self.shared.skip_to(t);
        }
    }

    fn now(&self) -> SimTime {
        self.shared.now()
    }

    fn total_spent(&self) -> Money {
        let billing = self.shared.billing();
        self.owned.borrow().iter().map(|id| billing.cost_for_cluster(*id)).sum()
    }

    fn metrics(&self) -> &MetricStore {
        self.shared.metrics()
    }

    fn provisioning_delay(&self, cluster: &Cluster) -> Option<SimDuration> {
        self.shared.provisioning_delay(cluster)
    }

    fn revocation_before(&self, cluster: &Cluster, t: SimTime) -> Option<SimTime> {
        self.shared.revocation_before(cluster, t)
    }
}

/// A [`ProfilingEnv`] wrapper that takes a pool turn around every probe.
/// Sits *inside* the probe cache, so cache hits never pay admission.
/// `profile_batch` is intentionally left on the trait's sequential
/// default: the profiler's concurrent batch wave assumes launch and
/// settlement happen with no admission wait in between, which does not
/// hold at a contended gate.
pub struct FleetGateEnv<'a, E> {
    inner: &'a mut E,
    pool: &'a FleetPool,
    id: u64,
}

impl<'a, E: ProfilingEnv> FleetGateEnv<'a, E> {
    /// Gate `inner`'s probes through `pool` on behalf of session `id`.
    pub fn new(inner: &'a mut E, pool: &'a FleetPool, id: u64) -> FleetGateEnv<'a, E> {
        FleetGateEnv { inner, pool, id }
    }
}

impl<E: ProfilingEnv> ProfilingEnv for FleetGateEnv<'_, E> {
    fn space(&self) -> &SearchSpace {
        self.inner.space()
    }

    fn total_samples(&self) -> f64 {
        self.inner.total_samples()
    }

    fn quote(&self, d: &Deployment) -> (SimDuration, Money) {
        self.inner.quote(d)
    }

    fn profile(&mut self, d: &Deployment) -> Result<Observation, ProfileError> {
        // A policy denial surfaces like a failed launch so the searcher
        // drops the candidate — the same thing a fleet-driver tenant
        // sees from `settle_deny`. This is what makes fair-share's
        // cost-cooling real in service mode rather than a silent wait.
        let turn = self
            .pool
            .acquire(self.id, d.itype, d.n, Purpose::Probe)
            .map_err(|e| ProfileError::Failed(e.to_string()))?;
        let res = self.inner.profile(d);
        drop(turn);
        res
    }

    fn elapsed(&self) -> SimDuration {
        self.inner.elapsed()
    }

    fn spent(&self) -> Money {
        self.inner.spent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_rejects_unknown_policy() {
        let cfg = FleetConfig { policy: "nope".into(), ..Default::default() };
        assert!(FleetPool::new(&cfg).is_err());
    }

    #[test]
    fn single_waiter_is_always_admitted() {
        let pool = FleetPool::new(&FleetConfig::default()).expect("pool");
        let _reg = pool.register(1, 0, None);
        let turn = pool.acquire(1, InstanceType::C5Xlarge, 2, Purpose::Probe).expect("granted");
        drop(turn);
        let c = pool.counters();
        assert_eq!(c.admitted, 1);
        assert_eq!(c.queue_depth, 0);
    }

    #[test]
    fn turns_serialize_across_threads() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let pool = Arc::new(FleetPool::new(&FleetConfig::default()).expect("pool"));
        let in_turn = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for id in 0..4u64 {
            let pool = Arc::clone(&pool);
            let in_turn = Arc::clone(&in_turn);
            handles.push(std::thread::spawn(move || {
                let _reg = pool.register(id, 0, None);
                for _ in 0..8 {
                    let turn = pool
                        .acquire(id, InstanceType::C5Xlarge, 1, Purpose::Probe)
                        .expect("cheap probes are granted");
                    assert_eq!(in_turn.fetch_add(1, Ordering::SeqCst), 0, "turn overlap");
                    in_turn.fetch_sub(1, Ordering::SeqCst);
                    drop(turn);
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(pool.counters().admitted, 32);
    }

    #[test]
    fn policy_denial_settles_as_an_error() {
        // Fair-share's cost ceiling ($2 base, idle pool) is below an
        // 8-node GPU probe's quoted cost: the request must settle with
        // `CloudError::Denied`, not park forever.
        let cfg = FleetConfig { policy: "fairshare".into(), ..Default::default() };
        let pool = FleetPool::new(&cfg).expect("pool");
        let _reg = pool.register(1, 0, None);
        let err = pool
            .acquire(1, InstanceType::P32xlarge, 8, Purpose::Probe)
            .err()
            .expect("over-ceiling probe must be denied");
        assert!(matches!(err, CloudError::Denied { .. }), "{err}");
        let c = pool.counters();
        assert_eq!((c.admitted, c.denied, c.queue_depth), (0, 1, 0));
    }

    #[test]
    fn standing_denials_do_not_wedge_multiple_waiters() {
        // The review's deadlock scenario: 2+ waiters, idle pool, a
        // policy that keeps denying. Every waiter must settle (grant or
        // error) rather than park on the condvar forever.
        use std::sync::Arc;
        let cfg = FleetConfig { policy: "fairshare".into(), ..Default::default() };
        let pool = Arc::new(FleetPool::new(&cfg).expect("pool"));
        let mut handles = Vec::new();
        for id in 0..3u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let _reg = pool.register(id, 0, None);
                // Expensive GPU probes: all over the cooled ceiling.
                pool.acquire(id, InstanceType::P32xlarge, 8, Purpose::Probe).map(|_| ())
            }));
        }
        for h in handles {
            let res = h.join().expect("worker must not deadlock");
            assert!(matches!(res, Err(CloudError::Denied { .. })), "{res:?}");
        }
        assert_eq!(pool.counters().denied, 3);
    }

    #[test]
    fn impossible_requests_take_a_turn_and_do_not_block_the_queue() {
        // n > cap can never be admitted by any policy; the gate grants
        // the turn so the launch surfaces the provider's real error
        // (the driver's impossibility settlement), instead of fifo
        // head-of-line blocking everyone behind it.
        let pool = FleetPool::new(&FleetConfig::default()).expect("pool");
        let _r1 = pool.register(1, 0, None);
        let _r2 = pool.register(2, 0, None);
        let turn =
            pool.acquire(1, InstanceType::C5Xlarge, 65, Purpose::Probe).expect("forced through");
        assert!(pool.cloud().launch(InstanceType::C5Xlarge, 65).is_err(), "provider error");
        drop(turn);
        let turn2 = pool.acquire(2, InstanceType::C5Xlarge, 1, Purpose::Probe).expect("granted");
        drop(turn2);
        assert_eq!(pool.counters().admitted, 2);
    }

    #[test]
    fn standing_wait_force_grants_the_oldest() {
        // DeadlineAware reserves 25% of each type for deadline traffic;
        // a lone no-deadline probe asking for 60/64 nodes gets a
        // standing Wait. With the pool idle the clock cannot move, so
        // the gate must force the request through.
        let cfg = FleetConfig { policy: "deadline".into(), ..Default::default() };
        let pool = FleetPool::new(&cfg).expect("pool");
        let _reg = pool.register(1, 0, None);
        let turn = pool
            .acquire(1, InstanceType::C5Xlarge, 60, Purpose::Probe)
            .expect("wedge-breaker grants");
        drop(turn);
        assert_eq!(pool.counters().admitted, 1);
    }

    #[test]
    fn dropping_registration_clears_pending_state() {
        // A session that dies mid-wait (panic/cancel unwind drops its
        // guard) must not leave a pending request behind.
        let pool = FleetPool::new(&FleetConfig::default()).expect("pool");
        {
            let _reg = pool.register(7, 0, None);
            let turn = pool.acquire(7, InstanceType::C5Xlarge, 1, Purpose::Probe).expect("granted");
            drop(turn);
        }
        let c = pool.counters();
        assert_eq!(c.queue_depth, 0);
        assert!(lock_or_die(&pool.gate, "fleet gate").jobs.is_empty());
    }
}
