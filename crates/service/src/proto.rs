//! Wire types of the newline-delimited-JSON protocol and the session
//! vocabulary shared by the journal.
//!
//! Every request and response is one JSON value per line, externally
//! tagged exactly as the vendored serde derive renders enums:
//! `{"Submit": {...}}`, `{"Status": {"id": null}}`, `"Shutdown"`. The
//! `mlcd` binary's client subcommands build these shapes with the `json!`
//! macro rather than linking this crate, so the rendering here *is* the
//! protocol contract.

use mlcd::experiment::ExperimentOutcome;
use mlcd::observation::SearchOutcome;
use mlcd::prelude::{DeploymentPlan, Scenario};
use mlcd_cloudsim::{InstanceType, Money, SimDuration};
use mlcd_perfmodel::TrainingJob;
use serde::{DeError, Deserialize, Serialize, Value};

/// Everything a `submit` request carries: which job to plan, under which
/// scenario, with which searcher, seed and queue priority.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SubmitSpec {
    /// Preset job name ([`TrainingJob::by_name`]).
    pub job: String,
    /// Searcher name ([`mlcd::search::searcher_by_name`]).
    pub searcher: String,
    /// Seed the whole session is a pure function of.
    pub seed: u64,
    /// Queue priority: higher runs first; FIFO within a priority.
    pub priority: u8,
    /// Scenario-3 budget in dollars, if any.
    pub budget: Option<f64>,
    /// Scenario-2 deadline in hours, if any.
    pub deadline_hours: Option<f64>,
    /// Restrict the search space to these instance-type names.
    pub types: Option<Vec<String>>,
    /// Cap on the scale-out dimension.
    pub max_nodes: u32,
}

impl SubmitSpec {
    /// A spec with the CLI defaults: priority 0, seed 2020, the full
    /// catalog, 50-node cap, unconstrained scenario.
    pub fn new(job: &str, searcher: &str, seed: u64) -> SubmitSpec {
        SubmitSpec {
            job: job.to_string(),
            searcher: searcher.to_string(),
            seed,
            priority: 0,
            budget: None,
            deadline_hours: None,
            types: None,
            max_nodes: 50,
        }
    }

    /// Scenario-3 variant of this spec.
    pub fn with_budget(mut self, dollars: f64) -> SubmitSpec {
        self.budget = Some(dollars);
        self
    }

    /// Scenario-2 variant of this spec.
    pub fn with_deadline_hours(mut self, hours: f64) -> SubmitSpec {
        self.deadline_hours = Some(hours);
        self
    }

    /// Queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> SubmitSpec {
        self.priority = priority;
        self
    }

    /// The scenario this spec requests.
    ///
    /// # Errors
    /// When both a budget and a deadline are given.
    pub fn scenario(&self) -> Result<Scenario, String> {
        match (self.deadline_hours, self.budget) {
            (Some(_), Some(_)) => Err("give a deadline or a budget, not both".into()),
            (Some(h), None) => Ok(Scenario::CheapestWithDeadline(SimDuration::from_hours(h))),
            (None, Some(d)) => Ok(Scenario::FastestWithBudget(Money::from_dollars(d))),
            (None, None) => Ok(Scenario::FastestUnlimited),
        }
    }

    /// Resolve the preset job.
    ///
    /// # Errors
    /// When the job name is not a preset.
    pub fn training_job(&self) -> Result<TrainingJob, String> {
        TrainingJob::by_name(&self.job).ok_or_else(|| format!("unknown job `{}`", self.job))
    }

    /// Parse the instance-type restriction, if any.
    ///
    /// # Errors
    /// When a type name is not in the catalog.
    pub fn instance_types(&self) -> Result<Option<Vec<InstanceType>>, String> {
        match &self.types {
            None => Ok(None),
            Some(names) => {
                let mut parsed = Vec::with_capacity(names.len());
                for n in names {
                    parsed.push(
                        InstanceType::from_name(n)
                            .ok_or_else(|| format!("unknown instance type `{n}`"))?,
                    );
                }
                Ok(Some(parsed))
            }
        }
    }

    /// Validate everything a submit must reject up front: job, searcher,
    /// scenario and type names. Non-finite budgets/deadlines are rejected
    /// here too, so nothing downstream ever sees a NaN constraint.
    ///
    /// # Errors
    /// A human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.training_job()?;
        if mlcd::search::searcher_by_name(&self.searcher, self.seed).is_none() {
            return Err(format!("unknown searcher `{}`", self.searcher));
        }
        if let Some(b) = self.budget {
            if !b.is_finite() || b < 0.0 {
                return Err(format!("budget must be a non-negative finite amount, got {b}"));
            }
        }
        if let Some(h) = self.deadline_hours {
            if !h.is_finite() || h <= 0.0 {
                return Err(format!("deadline must be a positive finite hour count, got {h}"));
            }
        }
        self.scenario()?;
        self.instance_types()?;
        if self.max_nodes == 0 {
            return Err("max_nodes must be at least 1".into());
        }
        Ok(())
    }
}

// Hand-written so absent optional fields default instead of erroring:
// `{"job": "...", "searcher": "..."}` is a valid minimal submit.
impl Deserialize for SubmitSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::expected("object for SubmitSpec", v));
        }
        let req_str = |key: &str| -> Result<String, DeError> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| DeError::expected(&format!("string `{key}`"), v))
        };
        let opt = |key: &str| v.get(key).filter(|x| !x.is_null());
        Ok(SubmitSpec {
            job: req_str("job")?,
            searcher: req_str("searcher")?,
            seed: match opt("seed") {
                Some(s) => u64::from_value(s)?,
                None => 2020,
            },
            priority: match opt("priority") {
                Some(p) => u8::from_value(p)?,
                None => 0,
            },
            budget: match opt("budget") {
                Some(b) => Some(f64::from_value(b)?),
                None => None,
            },
            deadline_hours: match opt("deadline_hours") {
                Some(h) => Some(f64::from_value(h)?),
                None => None,
            },
            types: match opt("types") {
                Some(t) => Some(Vec::<String>::from_value(t)?),
                None => None,
            },
            max_nodes: match opt("max_nodes") {
                Some(n) => u32::from_value(n)?,
                None => 50,
            },
        })
    }
}

/// A finished session, as served by `result` and journaled on completion.
/// Mirrors [`ExperimentOutcome`] minus the `&'static str` searcher name
/// (owned here so the record round-trips through JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionResult {
    /// Searcher that produced it.
    pub searcher: String,
    /// The scenario it ran under.
    pub scenario: Scenario,
    /// The plan, if a deployment was found.
    pub plan: Option<DeploymentPlan>,
    /// Full search outcome (steps, stop reason, profiling totals).
    pub search: SearchOutcome,
    /// Wall-clock of the training run.
    pub train_time: SimDuration,
    /// Billed cost of the training run.
    pub train_cost: Money,
    /// Profiling + training wall-clock.
    pub total_time: SimDuration,
    /// Profiling + training spend.
    pub total_cost: Money,
    /// Whether the completed run satisfied the scenario's constraints.
    pub satisfied: bool,
}

impl From<&ExperimentOutcome> for SessionResult {
    fn from(o: &ExperimentOutcome) -> SessionResult {
        SessionResult {
            searcher: o.searcher.to_string(),
            scenario: o.scenario,
            plan: o.plan,
            search: o.search.clone(),
            train_time: o.train_time,
            train_cost: o.train_cost,
            total_time: o.total_time,
            total_cost: o.total_cost,
            satisfied: o.satisfied,
        }
    }
}

/// One client request — one JSON value per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Queue a new search session.
    Submit(SubmitSpec),
    /// One session's status, or all sessions when `id` is null.
    Status {
        /// Session to report on; `null` for every session.
        id: Option<u64>,
    },
    /// A finished session's result; `wait` blocks until it is terminal.
    Result {
        /// Session whose result is wanted.
        id: u64,
        /// Block until the session reaches a terminal state.
        wait: bool,
    },
    /// Stream a session's trace events (backlog, then live until it ends).
    Watch {
        /// Session to watch.
        id: u64,
    },
    /// Request cooperative cancellation of a session.
    Cancel {
        /// Session to cancel.
        id: u64,
    },
    /// Service-wide counters (sessions, cache, group commit).
    Stats,
    /// Stop accepting work and shut the server down.
    Shutdown,
}

/// Service-wide counters, served for [`Request::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Sessions currently held in memory (queued, running or retained
    /// terminal) — evicted ones are not counted.
    pub live_sessions: u64,
    /// Sessions sitting in the work queue.
    pub queued: u64,
    /// Terminal sessions evicted from memory under the retention cap
    /// since the manager started.
    pub evicted: u64,
    /// Probe-cache hits.
    pub cache_hits: u64,
    /// Probe-cache misses.
    pub cache_misses: u64,
    /// Grid-cache hits (sessions that reused a shared grid enumeration).
    pub grid_hits: u64,
    /// Grid-cache misses (sessions that enumerated a fresh grid).
    pub grid_misses: u64,
    /// Whether journal appends go through the group committer.
    pub group_commit: bool,
    /// Groups the committer has made durable.
    pub journal_groups: u64,
    /// Records across all durable groups.
    pub journal_records: u64,
    /// Commit-log checkpoints (fsync session files + truncate log).
    pub journal_checkpoints: u64,
    /// Simulator event counters — one row per event kind with the
    /// process-wide scheduled/dispatched/cancelled totals, aggregated
    /// across every `SimEngine` the server has driven.
    pub sim_events: Vec<mlcd_cloudsim::SimEventCounter>,
    /// Fleet-mode counters; `null` when the server runs sessions on
    /// private clouds (the default). Absent fields deserialize as `None`,
    /// so pre-fleet stats lines still parse.
    pub fleet: Option<FleetStatsWire>,
}

/// Fleet-mode counters on the wire, mirroring
/// [`crate::fleet::FleetCounters`] plus the resolved policy name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStatsWire {
    /// Scheduling policy arbitrating the shared pool.
    pub policy: String,
    /// Launch turns granted (probes + training runs).
    pub admitted: u64,
    /// Requests that waited at least one decision round.
    pub deferred: u64,
    /// Policy denial rounds.
    pub denied: u64,
    /// Spot revocations suffered on the shared pool.
    pub preempted: u64,
    /// Requests currently waiting at the gate.
    pub queue_depth: u64,
}

/// One session row of a `status` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusLine {
    /// Session id.
    pub id: u64,
    /// Preset job name.
    pub job: String,
    /// Searcher name.
    pub searcher: String,
    /// Session seed.
    pub seed: u64,
    /// Queue priority.
    pub priority: u8,
    /// Lifecycle state: `queued`, `running`, `done`, `failed`,
    /// `cancelled` or `crashed`.
    pub state: String,
}

/// One server response — one JSON value per line. `Watch` responses are
/// followed by raw [`mlcd::search::TraceEvent`] lines and close with
/// [`Response::WatchEnd`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The session was queued.
    Submitted {
        /// Its id.
        id: u64,
    },
    /// The submit was refused — the typed backpressure signal.
    Rejected {
        /// True when the bounded queue was full (retry later); false for
        /// invalid specs or a shutting-down server.
        queue_full: bool,
        /// Why it was refused.
        reason: String,
    },
    /// Status rows, one per requested session.
    StatusReport {
        /// The rows.
        sessions: Vec<StatusLine>,
    },
    /// A terminal session's result.
    ResultReady {
        /// Session id.
        id: u64,
        /// The result.
        result: SessionResult,
    },
    /// The session exists but is not done (only without `wait`).
    NotReady {
        /// Session id.
        id: u64,
        /// Current lifecycle state.
        state: String,
    },
    /// Event stream follows, one trace event per line.
    Watching {
        /// Session id.
        id: u64,
    },
    /// End of a watch stream.
    WatchEnd {
        /// Session id.
        id: u64,
        /// Terminal (or current, if the watcher was dropped) state.
        state: String,
    },
    /// Service-wide counters.
    Stats {
        /// The counters.
        stats: ServiceStats,
    },
    /// Cancellation was requested.
    Cancelling {
        /// Session id.
        id: u64,
    },
    /// The server is shutting down.
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// What went wrong.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_spec_round_trips() {
        let spec =
            SubmitSpec::new("resnet-cifar10", "heterbo", 7).with_budget(150.0).with_priority(3);
        let json = serde_json::to_string(&spec).unwrap();
        let back: SubmitSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn minimal_submit_defaults() {
        let spec: SubmitSpec =
            serde_json::from_str(r#"{"job":"char-rnn","searcher":"convbo"}"#).unwrap();
        assert_eq!(spec.seed, 2020);
        assert_eq!(spec.priority, 0);
        assert_eq!(spec.max_nodes, 50);
        assert!(spec.budget.is_none() && spec.deadline_hours.is_none() && spec.types.is_none());
        assert!(matches!(spec.scenario(), Ok(Scenario::FastestUnlimited)));
    }

    #[test]
    fn service_stats_round_trip_with_sim_events() {
        let stats = ServiceStats {
            live_sessions: 2,
            sim_events: vec![mlcd_cloudsim::SimEventCounter {
                kind: "provisioning_done".into(),
                scheduled: 5,
                dispatched: 4,
                cancelled: 1,
            }],
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"sim_events\""), "{json}");
        let back: ServiceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }

    #[test]
    fn service_stats_round_trip_with_fleet_counters() {
        let stats = ServiceStats {
            fleet: Some(FleetStatsWire {
                policy: "fairshare".into(),
                admitted: 9,
                deferred: 3,
                denied: 2,
                preempted: 1,
                queue_depth: 4,
            }),
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"fleet\""), "{json}");
        assert!(json.contains("\"queue_depth\":4"), "{json}");
        let back: ServiceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
        // A pre-fleet stats line (no `fleet` field at all) still parses.
        let legacy: ServiceStats = serde_json::from_str(
            r#"{"live_sessions":1,"queued":0,"evicted":0,"cache_hits":0,"cache_misses":0,
                "grid_hits":0,"grid_misses":0,"group_commit":false,"journal_groups":0,
                "journal_records":0,"journal_checkpoints":0,"sim_events":[]}"#,
        )
        .unwrap();
        assert!(legacy.fleet.is_none());
        assert_eq!(legacy.live_sessions, 1);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(SubmitSpec::new("nope", "heterbo", 1).validate().is_err());
        assert!(SubmitSpec::new("char-rnn", "nope", 1).validate().is_err());
        let both =
            SubmitSpec::new("char-rnn", "heterbo", 1).with_budget(10.0).with_deadline_hours(5.0);
        assert!(both.validate().is_err());
        let nan = SubmitSpec::new("char-rnn", "heterbo", 1).with_budget(f64::NAN);
        assert!(nan.validate().is_err());
        assert!(SubmitSpec::new("char-rnn", "heterbo", 1).validate().is_ok());
    }

    #[test]
    fn requests_round_trip_externally_tagged() {
        let reqs = vec![
            Request::Submit(SubmitSpec::new("resnet-cifar10", "heterbo", 1)),
            Request::Status { id: None },
            Request::Result { id: 3, wait: true },
            Request::Watch { id: 3 },
            Request::Cancel { id: 3 },
            Request::Shutdown,
        ];
        for r in reqs {
            let line = serde_json::to_string(&r).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(r, back, "{line}");
        }
        // The exact wire shapes the `mlcd` client builds by hand.
        assert_eq!(serde_json::to_string(&Request::Shutdown).unwrap(), "\"Shutdown\"");
        assert!(serde_json::to_string(&Request::Status { id: None })
            .unwrap()
            .contains("{\"Status\":{\"id\":null}}"));
    }
}
