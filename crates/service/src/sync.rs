//! The service's single audited poison boundary (lint rule R9).
//!
//! Every `Mutex`/`Condvar` in `crates/service` routes its poison
//! `Result` through the helpers below instead of scattering
//! `.lock().expect(..)` across call sites. The policy is deliberate and
//! uniform: a poisoned lock means some holder panicked mid-update, so
//! the protected state can no longer be trusted — we die loudly rather
//! than limp on with torn invariants. Worker panics that must *not* take
//! the service down are already converted to session failures before any
//! lock is involved (see `session::run_session`'s catch_unwind), so a
//! poisoned lock here is always a bug, never load.
//!
//! Centralising the unwrap also keeps the policy changeable in one
//! place: if a future revision wants poison *recovery* (e.g. mark the
//! session shard degraded and keep serving others), only this file and
//! its callers' signatures are involved — not ~50 ad-hoc `expect`s.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Acquire `m`, dying loudly on poison. `what` names the lock in the
/// panic message (`"session state"`, `"queue shard"`, …).
pub fn lock_or_die<'a, T>(m: &'a Mutex<T>, what: &str) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(_) => panic!("{what} lock poisoned — a holder panicked mid-update"),
    }
}

/// Block on `cv`, consuming and returning the guard, dying loudly on
/// poison. The guard hand-off is the condvar protocol; callers keep the
/// standard `g = wait_or_die(&cv, g, ..)` loop shape.
pub fn wait_or_die<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>, what: &str) -> MutexGuard<'a, T> {
    match cv.wait(g) {
        Ok(g) => g,
        Err(_) => panic!("{what} lock poisoned — a holder panicked mid-update"),
    }
}

/// Timed variant of [`wait_or_die`]; returns the guard and whether the
/// wait timed out.
pub fn wait_timeout_or_die<'a, T>(
    cv: &Condvar,
    g: MutexGuard<'a, T>,
    dur: Duration,
    what: &str,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    match cv.wait_timeout(g, dur) {
        Ok(pair) => pair,
        Err(_) => panic!("{what} lock poisoned — a holder panicked mid-update"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn lock_or_die_passes_through_unpoisoned() {
        let m = Mutex::new(7u32);
        assert_eq!(*lock_or_die(&m, "test"), 7);
    }

    #[test]
    fn wait_or_die_round_trips_the_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *lock_or_die(m, "flag") = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = lock_or_die(m, "flag");
        while !*g {
            g = wait_or_die(cv, g, "flag");
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "test-lock lock poisoned")]
    fn poison_panics_with_the_lock_name() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        drop(lock_or_die(&m, "test-lock"));
    }
}
