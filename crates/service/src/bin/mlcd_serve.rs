//! `mlcd-serve` — run the deployment-planning service.
//!
//! ```text
//! mlcd-serve --listen 127.0.0.1:7070 --journal-dir /var/lib/mlcd \
//!            [--workers N] [--queue-cap N] [--no-probe-cache] \
//!            [--no-grid-cache] [--shards N] [--retain-cap N] \
//!            [--no-group-commit]
//! mlcd-serve --fleet fairshare [--fleet-seed N] [--fleet-cpu-cap N] \
//!            [--fleet-gpu-cap N] ...
//! ```
//!
//! `--fleet <policy>` runs every session against one shared finite-
//! capacity pool arbitrated by the named scheduler (`fifo`, `deadline`
//! or `fairshare`); it is incompatible with `--journal-dir`.
//!
//! On start the journal directory is scanned: finished sessions are
//! restored (their results stay queryable), in-flight ones are resumed by
//! deterministic replay. The first stdout line is always
//! `listening on <addr>` so scripts can bind port 0 and read the
//! ephemeral port back.

use mlcd_service::{Server, ServiceConfig, SessionManager};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: mlcd-serve [--listen ADDR] [--journal-dir DIR] \
                     [--workers N] [--queue-cap N] [--no-probe-cache] \
                     [--no-grid-cache] [--shards N] [--retain-cap N] \
                     [--no-group-commit] [--fleet POLICY] [--fleet-seed N] \
                     [--fleet-cpu-cap N] [--fleet-gpu-cap N]";

fn main() -> ExitCode {
    let mut listen = "127.0.0.1:7070".to_string();
    let mut cfg = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        let parsed: Result<(), String> = match arg.as_str() {
            "--listen" => value("--listen").map(|v| listen = v),
            "--journal-dir" => {
                value("--journal-dir").map(|v| cfg.journal_dir = Some(PathBuf::from(v)))
            }
            "--workers" => value("--workers").and_then(|v| {
                v.parse().map(|n| cfg.workers = n).map_err(|e| format!("--workers: {e}"))
            }),
            "--queue-cap" => value("--queue-cap").and_then(|v| {
                v.parse().map(|n| cfg.queue_cap = n).map_err(|e| format!("--queue-cap: {e}"))
            }),
            "--no-probe-cache" => {
                cfg.probe_cache = false;
                Ok(())
            }
            "--no-grid-cache" => {
                cfg.grid_cache = false;
                Ok(())
            }
            "--shards" => value("--shards").and_then(|v| {
                v.parse().map(|n| cfg.shards = n).map_err(|e| format!("--shards: {e}"))
            }),
            "--retain-cap" => value("--retain-cap").and_then(|v| {
                v.parse().map(|n| cfg.retain_terminal = n).map_err(|e| format!("--retain-cap: {e}"))
            }),
            "--no-group-commit" => {
                cfg.group_commit = false;
                Ok(())
            }
            "--fleet" => value("--fleet").map(|v| {
                cfg.fleet.get_or_insert_with(Default::default).policy = v;
            }),
            "--fleet-seed" => value("--fleet-seed").and_then(|v| {
                v.parse()
                    .map(|n| cfg.fleet.get_or_insert_with(Default::default).seed = n)
                    .map_err(|e| format!("--fleet-seed: {e}"))
            }),
            "--fleet-cpu-cap" => value("--fleet-cpu-cap").and_then(|v| {
                v.parse()
                    .map(|n| cfg.fleet.get_or_insert_with(Default::default).cpu_cap = n)
                    .map_err(|e| format!("--fleet-cpu-cap: {e}"))
            }),
            "--fleet-gpu-cap" => value("--fleet-gpu-cap").and_then(|v| {
                v.parse()
                    .map(|n| cfg.fleet.get_or_insert_with(Default::default).gpu_cap = n)
                    .map_err(|e| format!("--fleet-gpu-cap: {e}"))
            }),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`\n{USAGE}")),
        };
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    if cfg.workers == 0 {
        eprintln!("--workers must be at least 1");
        return ExitCode::FAILURE;
    }

    let manager = match SessionManager::new(cfg) {
        Ok(m) => Arc::new(m),
        Err(e) => {
            eprintln!("failed to start session manager: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&listen, manager) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Scripts parse this line to discover an ephemeral port.
            println!("listening on {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("failed to read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}
