//! Newline-delimited-JSON protocol over TCP.
//!
//! One JSON request per line in, one JSON response per line out (plus a
//! raw [`TraceEvent`] stream between `Watching` and `WatchEnd` for watch
//! requests). Connections are handled on detached threads; the accept
//! loop stops when a `Shutdown` request arrives.
//!
//! This module is the **only** part of the workspace (outside the
//! benchmark harness) allowed to read the wall clock: connection log
//! lines are stamped with [`std::time::SystemTime`]. mlcd-lint's
//! nondet-source rule carves out exactly `crates/service/src/net/` —
//! nothing here feeds a `SearchOutcome`, so determinism is untouched.
//! The session path (`session.rs`, `journal.rs`, `cache.rs`) stays under
//! the full rule.

use crate::proto::{Request, Response};
use crate::session::{Phase, SessionManager};
use crate::sync::{lock_or_die, wait_timeout_or_die};
use mlcd::search::TraceEvent;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// How long shutdown waits for in-flight connection threads to flush
/// their final frames (`WatchEnd`, `ShuttingDown`) before the process
/// is allowed to exit anyway.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(3);

/// Count of live connection threads, so shutdown can wait for their
/// final frames instead of racing process exit against detached threads.
struct ConnGauge {
    count: Mutex<usize>,
    cv: Condvar,
}

impl ConnGauge {
    fn new() -> ConnGauge {
        ConnGauge { count: Mutex::new(0), cv: Condvar::new() }
    }

    fn enter(&self) {
        *lock_or_die(&self.count, "conn gauge") += 1;
    }

    fn exit(&self) {
        *lock_or_die(&self.count, "conn gauge") -= 1;
        self.cv.notify_all();
    }

    /// Wait (bounded) until every connection thread has exited.
    fn drain(&self, timeout: Duration) {
        let deadline = std::time::Instant::now() + timeout;
        let mut count = lock_or_die(&self.count, "conn gauge");
        while *count > 0 {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                eprintln!("[{}] shutdown: {} connection(s) still draining", log_stamp(), *count);
                return;
            }
            let (guard, _) = wait_timeout_or_die(&self.cv, count, left, "conn gauge");
            count = guard;
        }
    }
}

/// The NDJSON server: an accept loop over a [`SessionManager`].
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnGauge>,
}

/// Unix-seconds stamp for connection log lines (never enters a session).
fn log_stamp() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

impl Server {
    /// Bind a listener. Use port 0 for an ephemeral port and read it back
    /// with [`Server::local_addr`].
    ///
    /// # Errors
    /// Whatever [`TcpListener::bind`] reports.
    pub fn bind(addr: &str, manager: Arc<SessionManager>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            manager,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(ConnGauge::new()),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    /// Whatever [`TcpListener::local_addr`] reports.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `Shutdown` request arrives, then drain the session
    /// manager (running sessions finish; journaled queued sessions stay
    /// resumable) and return.
    ///
    /// # Errors
    /// Accept-loop I/O failure.
    pub fn run(&self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("[{}] accept error: {e}", log_stamp());
                    continue;
                }
            };
            let manager = self.manager.clone();
            let stop = self.stop.clone();
            let addr = self.local_addr()?;
            let conns = self.conns.clone();
            conns.enter();
            // Detached: a watcher blocked on a long search must not delay
            // other connections or the shutdown path.
            std::thread::spawn(move || {
                if let Err(e) = handle_conn(stream, &manager, &stop, addr) {
                    eprintln!("[{}] connection error: {e}", log_stamp());
                }
                conns.exit();
            });
        }
        // Draining the manager detaches every session: watchers blocked
        // in `next_events`/`wait_terminal` wake with the current state
        // and their connection threads send `WatchEnd` before exiting.
        // Wait (bounded) for those final frames to flush.
        self.manager.shutdown_and_wait();
        self.conns.drain(SHUTDOWN_DRAIN);
        Ok(())
    }

    /// Ask the accept loop to stop (used by `Shutdown` handling; also
    /// handy for tests). Wakes the loop with a self-connection.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(addr) = self.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut line = serde_json::to_string(resp)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn send_event(stream: &mut TcpStream, event: &TraceEvent) -> std::io::Result<()> {
    let mut line = serde_json::to_string(event)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn handle_conn(
    stream: TcpStream,
    manager: &SessionManager,
    stop: &AtomicBool,
    server_addr: SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        if line.trim().is_empty() {
            continue;
        }
        let request: Request = match serde_json::from_str(line.trim()) {
            Ok(r) => r,
            Err(e) => {
                send(&mut out, &Response::Error { message: format!("bad request: {e}") })?;
                continue;
            }
        };
        match request {
            Request::Submit(spec) => match manager.submit(spec) {
                Ok(id) => send(&mut out, &Response::Submitted { id })?,
                Err(r) => send(
                    &mut out,
                    &Response::Rejected { queue_full: r.queue_full, reason: r.reason },
                )?,
            },
            Request::Status { id } => match manager.status(id) {
                Some(sessions) => send(&mut out, &Response::StatusReport { sessions })?,
                None => send(
                    &mut out,
                    &Response::Error { message: format!("unknown session {}", id.unwrap_or(0)) },
                )?,
            },
            Request::Result { id, wait } => match manager.session(id) {
                None => {
                    send(&mut out, &Response::Error { message: format!("unknown session {id}") })?;
                }
                Some(session) => {
                    let phase = if wait { session.wait_terminal() } else { session.phase() };
                    match phase {
                        Phase::Done(result) => {
                            send(&mut out, &Response::ResultReady { id, result: *result })?;
                        }
                        Phase::Failed(message) => send(
                            &mut out,
                            &Response::Error { message: format!("session {id} failed: {message}") },
                        )?,
                        other => send(
                            &mut out,
                            &Response::NotReady { id, state: other.name().to_string() },
                        )?,
                    }
                }
            },
            Request::Watch { id } => match manager.session(id) {
                None => {
                    send(&mut out, &Response::Error { message: format!("unknown session {id}") })?;
                }
                Some(session) => {
                    send(&mut out, &Response::Watching { id })?;
                    let mut pos = 0usize;
                    loop {
                        let (events, terminal) = session.next_events(pos);
                        pos += events.len();
                        for event in &events {
                            send_event(&mut out, event)?;
                        }
                        if let Some(state) = terminal {
                            send(&mut out, &Response::WatchEnd { id, state })?;
                            break;
                        }
                    }
                }
            },
            Request::Cancel { id } => {
                if manager.cancel(id) {
                    send(&mut out, &Response::Cancelling { id })?;
                } else {
                    send(&mut out, &Response::Error { message: format!("unknown session {id}") })?;
                }
            }
            Request::Stats => {
                send(&mut out, &Response::Stats { stats: manager.stats() })?;
            }
            Request::Shutdown => {
                send(&mut out, &Response::ShuttingDown)?;
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so `run` can drain and return.
                let _ = TcpStream::connect(server_addr);
                return Ok(());
            }
        }
    }
}
