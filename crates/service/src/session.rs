//! Concurrent search sessions on a bounded worker pool.
//!
//! A [`SessionManager`] owns a fixed-size pool of worker threads, a
//! bounded priority queue of submitted sessions (higher priority first,
//! FIFO within a priority), the shared [`ProbeCache`] and, when a journal
//! directory is configured, one write-ahead journal per session.
//!
//! # Lifecycle
//!
//! ```text
//!            submit                    worker picks up
//!  client ───────────▶ Queued ──────────────────────────▶ Running
//!                        │ cancel                            │
//!                        ▼                                   ├──▶ Done(result)
//!                     Cancelled ◀── cancel (cooperative) ────┤
//!                                                            ├──▶ Failed(error)
//!                                         simulated kill ────┴──▶ Crashed
//! ```
//!
//! `Done`, `Failed` and `Cancelled` are journaled terminal records;
//! `Crashed` is *not* (that is the point — the journal holds only the
//! durable prefix), so a restarted manager finds the unterminated journal
//! and resumes the session.
//!
//! # Crash-resume = deterministic replay
//!
//! Every search outcome is a pure function of `(job, scenario, searcher,
//! seed, types, max_nodes)` — nothing downstream of the seed reads a
//! clock or an entropy source (mlcd-lint's nondet-source rule enforces
//! this). Resuming therefore re-runs the search from scratch while a
//! verifying sink compares each re-emitted journaled event against the
//! journal prefix *string-for-string* (the serde shim's float rendering
//! round-trips finite f64s bit-exactly, so string equality is bit
//! equality). Any divergence fails the session loudly instead of
//! appending a corrupt suffix.
//!
//! The shared probe cache needs one extra move: a cache hit is free and
//! leaves the session profiler's RNG/clock/billing state untouched, so a
//! resume that re-probed it would both pay for it and shift the platform
//! RNG stream — unreproducible, since the cache died with the process.
//! The journal therefore records each probe's provenance (`Event` vs
//! `CachedEvent`), and the replay environment serves journaled hits
//! straight from the prefix while re-running journaled misses against
//! the profiler, reproducing the exact pre-crash environment state. Past
//! the prefix a resumed session probes cache-free: the live cache's
//! contents after a restart are unrelated to what the dead process held,
//! and the journal — not the cache — is the authority on this session.
//!
//! # Scaling shape
//!
//! The manager is built to hold thousands of sessions per node:
//!
//! * **Sharded state.** The session map and the work queue are split
//!   into [`ServiceConfig::shards`] shards keyed by session id, and the
//!   probe cache is sharded by key hash — lookups, event pushes and
//!   watch polls on different sessions never contend on one mutex. A
//!   single small `control` mutex carries only the shutdown/pause flags
//!   and the worker wakeup condvar; global FIFO-within-priority order is
//!   preserved because a worker's pop scans every queue shard for the
//!   globally best `(priority, seq)` entry.
//! * **Group-commit journaling.** With a journal directory configured
//!   (and [`ServiceConfig::group_commit`] on), appends from all sessions
//!   funnel through one [`GroupCommitter`] thread: one write + one fsync
//!   per batch instead of one fsync per record. The durable contract is
//!   unchanged — `append` returns only once the record is durable.
//! * **Bounded retention.** Terminal sessions are evicted from memory
//!   past [`ServiceConfig::retain_terminal`], oldest-completed first;
//!   the journal stays the durable record, and `Status`/`Result`/
//!   `Watch` for an evicted id are answered by reading it back
//!   ([`SessionManager::session`] falls back to the journal). Without a
//!   journal an evicted result is gone — the cap trades that for a
//!   bounded footprint.

use crate::cache::{CachedEnv, GridCache, GridKey, ProbeCache, ProvenanceLog};
use crate::journal::{
    is_journaled, journal_file, list_journals, read_journal, reconcile_commit_log, AppendError,
    CommitCrashPoint, CommitStats, GroupCommitter, JournalRecord, SessionJournal, JOURNAL_FORMAT,
};
use crate::proto::{ServiceStats, SessionResult, StatusLine, SubmitSpec};
use crate::sync::{lock_or_die, wait_or_die};
use mlcd::prelude::{
    Deployment, ExperimentRunner, Money, Observation, ProfileError, ProfilingEnv, Scenario,
    SearchSpace, SimDuration, TraceEvent, TraceSink,
};
use mlcd::search::searcher_by_name;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::thread::JoinHandle;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads — the concurrency of the session pool.
    pub workers: usize,
    /// Bound on the number of *queued* (not yet running) sessions; a
    /// submit past it is rejected with `queue_full` (the backpressure
    /// signal — there are no unbounded channels anywhere in the service).
    pub queue_cap: usize,
    /// Where to keep per-session write-ahead journals. `None` disables
    /// journaling (and with it crash-resume).
    pub journal_dir: Option<PathBuf>,
    /// Consult the shared probe cache for fresh (non-resumed) sessions.
    pub probe_cache: bool,
    /// Share one candidate-grid enumeration across sessions of the same
    /// `(job, instance types, max_nodes)` via the grid cache. Off, every
    /// session re-enumerates its own grid (bit-identical results either
    /// way — the grid is a pure function of the key).
    pub grid_cache: bool,
    /// Test hook: simulate a `kill -9` after this many journaled records
    /// (replayed ones included) by panicking the worker *without* writing
    /// a terminal record.
    pub crash_after_records: Option<u64>,
    /// Start with the worker pool paused: sessions queue (and journal)
    /// but nothing runs until [`SessionManager::resume_workers`]. Lets an
    /// operator inspect a resumed queue before it drains, and makes queue
    /// -ordering tests deterministic. Also enables the
    /// [`SessionManager::started_order`] audit log (unbounded, so it is
    /// never kept on the production path).
    pub start_paused: bool,
    /// Batch journal appends through the shared group committer (one
    /// write + one fsync per group across all sessions) instead of one
    /// fsync per record. Only meaningful with a journal directory.
    pub group_commit: bool,
    /// Shard count for the session map and the work queue (the probe
    /// cache uses the same count). More shards, less lock contention.
    pub shards: usize,
    /// How many *terminal* sessions to keep in memory. Past the cap the
    /// oldest-completed are evicted; with a journal their status/result
    /// are served back from disk, without one they are gone.
    pub retain_terminal: usize,
    /// Byte threshold past which the group committer fsyncs dirty
    /// session files and truncates the shared commit log.
    pub commit_checkpoint_bytes: u64,
    /// Test hook: simulate a kill of the whole process while the commit
    /// thread is mid-group — at the given crash point of the given
    /// (0-based) group.
    pub crash_commit_at: Option<(u64, CommitCrashPoint)>,
    /// Fleet mode: run every session against one shared finite-capacity
    /// [`mlcd_cloudsim::SimCloud`] pool, with the named
    /// [`mlcd_fleet::FleetScheduler`] policy arbitrating probe admission
    /// (see [`crate::fleet`]). Incompatible with `journal_dir` — fleet
    /// interleaving is wall-clock dependent, so crash-resume's verified
    /// replay cannot hold.
    pub fleet: Option<crate::fleet::FleetConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_cap: 16,
            journal_dir: None,
            probe_cache: true,
            grid_cache: true,
            crash_after_records: None,
            start_paused: false,
            group_commit: true,
            shards: 8,
            retain_terminal: 1024,
            commit_checkpoint_bytes: 4 << 20,
            crash_commit_at: None,
            fleet: None,
        }
    }
}

/// Lifecycle state of one session.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Waiting in the priority queue.
    Queued,
    /// A worker is searching.
    Running,
    /// Finished; result available.
    Done(Box<SessionResult>),
    /// Errored (bad spec discovered late, journal I/O failure, replay
    /// divergence, or a searcher panic).
    Failed(String),
    /// Cancelled cooperatively.
    Cancelled,
    /// The simulated-kill test hook fired; the journal is unterminated
    /// and the session will resume on the next manager start.
    Crashed,
}

impl Phase {
    /// Short lowercase name, as reported on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done(_) => "done",
            Phase::Failed(_) => "failed",
            Phase::Cancelled => "cancelled",
            Phase::Crashed => "crashed",
        }
    }

    /// Whether the session can never change state again (within this
    /// manager — a `Crashed` session resumes in the *next* one).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Phase::Queued | Phase::Running)
    }
}

struct SessionState {
    phase: Phase,
    /// `Arc` per event so watchers can snapshot a batch under the lock
    /// with refcount bumps only and materialise the clones outside it.
    events: Vec<Arc<TraceEvent>>,
}

/// Upper bound on events returned per [`Session::next_events`] poll, so
/// a watcher far behind on a long search never holds the state mutex
/// for a tail-sized copy (the worker's `push_event` would stall).
const WATCH_BATCH: usize = 256;

/// One submitted search session.
pub struct Session {
    /// Session id (unique per journal directory, monotonically assigned).
    pub id: u64,
    /// The spec it was submitted with.
    pub spec: SubmitSpec,
    /// The resolved scenario.
    pub scenario: Scenario,
    state: Mutex<SessionState>,
    state_cv: Condvar,
    cancel: AtomicBool,
    /// Set at manager shutdown, after the workers are joined: the phase
    /// can never change again, so blocked watchers/waiters must wake and
    /// take the current phase as final.
    detached: AtomicBool,
}

impl Session {
    fn new(id: u64, spec: SubmitSpec, scenario: Scenario, phase: Phase) -> Session {
        Session {
            id,
            spec,
            scenario,
            state: Mutex::new(SessionState { phase, events: Vec::new() }),
            state_cv: Condvar::new(),
            cancel: AtomicBool::new(false),
            detached: AtomicBool::new(false),
        }
    }

    /// Current lifecycle phase (cloned snapshot).
    pub fn phase(&self) -> Phase {
        lock_or_die(&self.state, "session state").phase.clone()
    }

    /// Block until the session reaches a terminal phase, and return it.
    /// After manager shutdown the phase is frozen, so a detached session
    /// returns its current phase instead of blocking forever.
    pub fn wait_terminal(&self) -> Phase {
        let mut st = lock_or_die(&self.state, "session state");
        while !st.phase.is_terminal() {
            if self.detached.load(Ordering::SeqCst) {
                break;
            }
            st = wait_or_die(&self.state_cv, st, "session state");
        }
        st.phase.clone()
    }

    /// Mark the session's phase as frozen (manager shut down, workers
    /// joined) and wake every blocked watcher/waiter.
    fn detach(&self) {
        self.detached.store(true, Ordering::SeqCst);
        self.state_cv.notify_all();
    }

    /// Ask the session to stop. Queued sessions cancel before starting;
    /// running ones cancel at their next trace event (probes are atomic —
    /// cancellation never leaves a half-journaled record).
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
        self.state_cv.notify_all();
    }

    fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Status row for this session.
    pub fn status_line(&self) -> StatusLine {
        StatusLine {
            id: self.id,
            job: self.spec.job.clone(),
            searcher: self.spec.searcher.clone(),
            seed: self.spec.seed,
            priority: self.spec.priority,
            state: self.phase().name().to_string(),
        }
    }

    /// Blocking event tail for watchers: up to `WATCH_BATCH` events
    /// past `from`, or — once all events are delivered and the session
    /// has ended (or was detached at shutdown) — the terminal/current
    /// state name. Only `Arc` refcounts are bumped under the state
    /// mutex; the event payloads are cloned after it is released.
    pub fn next_events(&self, from: usize) -> (Vec<TraceEvent>, Option<String>) {
        let (batch, terminal): (Vec<Arc<TraceEvent>>, Option<String>) = {
            let mut st = lock_or_die(&self.state, "session state");
            loop {
                if st.events.len() > from {
                    let end = st.events.len().min(from + WATCH_BATCH);
                    break (st.events[from..end].to_vec(), None);
                }
                if st.phase.is_terminal() || self.detached.load(Ordering::SeqCst) {
                    break (Vec::new(), Some(st.phase.name().to_string()));
                }
                st = wait_or_die(&self.state_cv, st, "session state");
            }
        };
        (batch.iter().map(|e| (**e).clone()).collect(), terminal)
    }

    fn push_event(&self, event: TraceEvent) {
        let event = Arc::new(event);
        let mut st = lock_or_die(&self.state, "session state");
        st.events.push(event);
        drop(st);
        self.state_cv.notify_all();
    }

    fn set_phase(&self, phase: Phase) {
        let mut st = lock_or_die(&self.state, "session state");
        st.phase = phase;
        drop(st);
        self.state_cv.notify_all();
    }

    fn seed_events(&self, events: Vec<TraceEvent>) {
        lock_or_die(&self.state, "session state").events =
            events.into_iter().map(Arc::new).collect();
    }
}

// ---- panic sentinels -------------------------------------------------

/// Cooperative-cancel payload thrown out of the sink.
struct CancelSignal;
/// Simulated-kill payload thrown by the `crash_after_records` hook.
struct CrashSignal;
/// Resume-verification mismatch.
struct ReplayDivergence(String);
/// Journal append failure mid-search.
struct JournalIo(String);

/// Install (once, process-wide) a panic hook that stays silent for the
/// service's control-flow sentinels and delegates everything else to the
/// previous hook. Worker panics are caught and turned into session
/// states; without this every cancel would spew a backtrace.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<CancelSignal>()
                || p.is::<CrashSignal>()
                || p.is::<ReplayDivergence>()
                || p.is::<JournalIo>()
            {
                return;
            }
            previous(info);
        }));
    });
}

// ---- the verifying / journaling sink ---------------------------------

/// Is this journaled event a probe record (carries an observation the
/// environment produced, and therefore a [`ProvenanceLog`] flag)?
fn is_probe_event(event: &TraceEvent) -> bool {
    matches!(event, TraceEvent::InitProbe { .. } | TraceEvent::Probe { .. })
}

struct SessionSink<'a> {
    session: &'a Session,
    writer: Option<&'a mut SessionJournal>,
    /// Journaled prefix to verify against when resuming: each event with
    /// its provenance (`true` = served by the cache in the original run).
    replay: &'a [(TraceEvent, bool)],
    replay_pos: usize,
    /// Journaled events seen so far (replayed + appended).
    journaled: u64,
    /// Probe provenance, pushed by the environment in probe order.
    provenance: &'a ProvenanceLog,
    crash_after: Option<u64>,
}

impl TraceSink for SessionSink<'_> {
    fn record(&mut self, event: TraceEvent) {
        if self.session.cancel_requested() {
            panic_any(CancelSignal);
        }
        if is_journaled(&event) {
            // Every journaled probe event consumes its provenance flag —
            // on the verify path too, so the queue stays aligned with the
            // probe stream across the prefix/append boundary.
            let cached = is_probe_event(&event) && self.provenance.pop();
            if self.replay_pos < self.replay.len() {
                // Verify the re-emitted event against the journal prefix.
                // String equality is bit equality here: the serde shim's
                // float rendering round-trips every finite f64 exactly.
                let (ref journaled_event, journaled_cached) = self.replay[self.replay_pos];
                let expected = serde_json::to_string(journaled_event)
                    .unwrap_or_else(|e| format!("<unserializable: {e}>"));
                let got = serde_json::to_string(&event)
                    .unwrap_or_else(|e| format!("<unserializable: {e}>"));
                if expected != got {
                    panic_any(ReplayDivergence(format!(
                        "resume divergence at journaled event {}: journal has {expected}, \
                         replay produced {got}",
                        self.replay_pos
                    )));
                }
                if journaled_cached != cached {
                    panic_any(ReplayDivergence(format!(
                        "resume divergence at journaled event {}: journal says cached={}, \
                         replay served cached={}",
                        self.replay_pos, journaled_cached, cached
                    )));
                }
                self.replay_pos += 1;
            } else if let Some(w) = self.writer.as_deref_mut() {
                let seq = self.journaled;
                let record = if cached {
                    JournalRecord::CachedEvent { seq, event: event.clone() }
                } else {
                    JournalRecord::Event { seq, event: event.clone() }
                };
                match w.append(&record) {
                    Ok(()) => {}
                    // The committer's simulated kill takes the whole
                    // "process" down: this session crashes too, with no
                    // terminal record, exactly like the crash_after hook.
                    Err(AppendError::Crashed) => panic_any(CrashSignal),
                    Err(AppendError::Io(e)) => panic_any(JournalIo(e)),
                }
            }
            self.journaled += 1;
        }
        self.session.push_event(event);
        if let Some(n) = self.crash_after {
            if self.journaled >= n {
                panic_any(CrashSignal);
            }
        }
    }
}

// ---- the replaying environment ---------------------------------------

/// The [`ProfilingEnv`] a *resumed* session searches against.
///
/// For the journaled prefix it reproduces exactly what the crashed run's
/// [`CachedEnv`] did: probes journaled as `CachedEvent` are served from
/// the journal (free, and without touching the inner profiler — the
/// original hit never advanced its RNG/clock/billing either), while
/// probes journaled as `Event` are re-run against the profiler, which
/// deterministically re-derives them. Once the prefix is exhausted the
/// session continues cache-free: the live cache's contents are unrelated
/// to what the dead process held, so the deterministic completion never
/// consults it.
struct ReplayEnv<'a> {
    inner: &'a mut dyn ProfilingEnv,
    /// `(observation, cached)` of each journaled probe event, in order.
    prefix: Vec<(Observation, bool)>,
    cursor: usize,
    provenance: &'a ProvenanceLog,
}

impl<'a> ReplayEnv<'a> {
    /// Build from the journaled prefix a resumed session must reproduce.
    fn new(
        inner: &'a mut dyn ProfilingEnv,
        replay: &[(TraceEvent, bool)],
        provenance: &'a ProvenanceLog,
    ) -> Self {
        let prefix = replay
            .iter()
            .filter_map(|(event, cached)| match event {
                TraceEvent::InitProbe { observation, .. }
                | TraceEvent::Probe { observation, .. } => Some((*observation, *cached)),
                _ => None,
            })
            .collect();
        ReplayEnv { inner, prefix, cursor: 0, provenance }
    }

    /// The journaled probe at the cursor, when it is a cache hit replay
    /// must serve for `d`. Panics with [`ReplayDivergence`] if the hit
    /// was recorded for a different deployment — the search has already
    /// forked from the journal and re-probing would fork it silently.
    fn serve_journaled_hit(&mut self, d: &Deployment) -> Option<Observation> {
        let (obs, cached) = *self.prefix.get(self.cursor)?;
        if !cached {
            return None;
        }
        if obs.deployment != *d {
            panic_any(ReplayDivergence(format!(
                "resume divergence at journaled probe {}: journal cached an observation of \
                 {}, replay probed {d}",
                self.cursor, obs.deployment
            )));
        }
        self.cursor += 1;
        self.provenance.push(true);
        Some(obs)
    }

    /// Account a paid probe the inner environment just served.
    fn note_paid(&mut self, ok: bool) {
        if ok {
            if self.cursor < self.prefix.len() {
                self.cursor += 1;
            }
            self.provenance.push(false);
        }
    }
}

impl ProfilingEnv for ReplayEnv<'_> {
    fn space(&self) -> &SearchSpace {
        self.inner.space()
    }

    fn total_samples(&self) -> f64 {
        self.inner.total_samples()
    }

    fn quote(&self, d: &Deployment) -> (SimDuration, Money) {
        self.inner.quote(d)
    }

    fn profile(&mut self, d: &Deployment) -> Result<Observation, ProfileError> {
        if let Some(obs) = self.serve_journaled_hit(d) {
            return Ok(obs);
        }
        let result = self.inner.profile(d);
        self.note_paid(result.is_ok());
        result
    }

    fn profile_batch(&mut self, ds: &[Deployment]) -> Vec<Result<Observation, ProfileError>> {
        // Mirror `CachedEnv::profile_batch`: serve journaled hits from
        // the prefix and forward the rest as ONE batch so the profiler
        // keeps its concurrent-provisioning wall-clock semantics. Slots
        // are matched to prefix entries positionally (journal order is
        // batch order), assuming every batch member settles — the sink's
        // string-for-string verification catches any divergence.
        let mut out: Vec<Option<(Result<Observation, ProfileError>, bool)>> = vec![None; ds.len()];
        let mut miss_idx = Vec::new();
        let mut miss_ds = Vec::new();
        for (i, d) in ds.iter().enumerate() {
            let slot = self.cursor + miss_idx.len();
            let journaled_hit = match self.prefix.get(slot) {
                Some((obs, true)) if obs.deployment == *d => Some(*obs),
                _ => None,
            };
            match journaled_hit {
                Some(obs) => {
                    self.cursor += 1;
                    out[i] = Some((Ok(obs), true));
                }
                None => {
                    miss_idx.push(i);
                    miss_ds.push(*d);
                }
            }
        }
        let fresh = self.inner.profile_batch(&miss_ds);
        for (slot, result) in miss_idx.into_iter().zip(fresh) {
            if result.is_ok() && self.cursor < self.prefix.len() {
                self.cursor += 1;
            }
            out[slot] = Some((result, false));
        }
        // The sink pops provenance per journaled probe event, and the
        // kernel journals batch results in result (ds) order — so the
        // flags must be pushed in that order too, not hits-first.
        out.into_iter()
            .map(|slot| {
                let (result, cached) = slot.expect("every slot filled");
                if result.is_ok() {
                    self.provenance.push(cached);
                }
                result
            })
            .collect()
    }

    fn elapsed(&self) -> SimDuration {
        self.inner.elapsed()
    }

    fn spent(&self) -> Money {
        self.inner.spent()
    }
}

// ---- manager ---------------------------------------------------------

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// True when the bounded queue was full — retry later; false when the
    /// spec itself (or the server's state) is the problem.
    pub queue_full: bool,
    /// Human-readable reason.
    pub reason: String,
}

struct WorkItem {
    session: Arc<Session>,
    journal: Option<SessionJournal>,
    /// `true` for any journal-restored entry — even one whose journal
    /// holds a header only. Resume status must not be inferred from the
    /// replayed-event count: a header-only resume still has to run
    /// cache-free, or a hit in the new process could yield an outcome the
    /// original run could not have produced.
    resumed: bool,
    /// Journaled prefix to replay: each event with its cache provenance.
    resume_events: Vec<(TraceEvent, bool)>,
    priority: u8,
    seq: u64,
}

/// The one small global mutex: shutdown/pause flags, paired with
/// `work_cv` for worker wakeup. Everything heavyweight (sessions, queue
/// entries, cache, journal I/O) lives in shards or off-lock entirely.
struct Control {
    shutdown: bool,
    paused: bool,
}

/// Completion order of terminal sessions, for oldest-first eviction.
struct TerminalLog {
    order: VecDeque<u64>,
    evicted: u64,
}

// The manager's acquire-before discipline, machine-checked by lint rule
// R7 (this declaration merges with the built-in mlcd-service manifest):
// the small control mutex is outermost, then the retention log, then
// session/queue shards, then an individual session's state. Never hold
// two shards of the same family at once.
// lint: lock-order: control < terminal < session_shard|session_shards < queue_shard|queue_shards < state
struct Inner {
    cfg: ServiceConfig,
    cache: ProbeCache,
    /// Shared candidate-grid enumerations, keyed per scenario spec.
    grids: GridCache,
    /// Session map shards, keyed by `id % shards`.
    session_shards: Vec<Mutex<BTreeMap<u64, Arc<Session>>>>,
    /// Work queue shards, same keying. Priority order is global: pops
    /// scan every shard for the best `(priority, Reverse(seq))`.
    queue_shards: Vec<Mutex<Vec<WorkItem>>>,
    control: Mutex<Control>,
    work_cv: Condvar,
    /// Queued-entry count, for O(1) bounded admission without a global
    /// queue lock.
    queued: AtomicUsize,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    committer: Option<GroupCommitter>,
    terminal: Mutex<TerminalLog>,
    /// Worker pickup order; only tracked under `start_paused` (tests /
    /// operator inspection) — unbounded by nature, so never on by
    /// default.
    started: Option<Mutex<Vec<u64>>>,
    /// Fleet mode's shared capacity pool (see [`crate::fleet`]); `None`
    /// runs every session on its own private cloud.
    fleet: Option<crate::fleet::FleetPool>,
}

impl Inner {
    fn shard_of(&self, id: u64) -> usize {
        (id % self.session_shards.len() as u64) as usize
    }

    fn session_shard(&self, id: u64) -> &Mutex<BTreeMap<u64, Arc<Session>>> {
        &self.session_shards[self.shard_of(id)]
    }

    fn queue_shard(&self, id: u64) -> &Mutex<Vec<WorkItem>> {
        &self.queue_shards[self.shard_of(id)]
    }

    /// Move a now-terminal session into the retention log, evicting the
    /// oldest terminal sessions past the cap. `Crashed` sessions are
    /// not retired: they belong to the *next* manager.
    fn retire(&self, id: u64) {
        let mut t = lock_or_die(&self.terminal, "terminal log");
        t.order.push_back(id);
        while t.order.len() > self.cfg.retain_terminal {
            if let Some(victim) = t.order.pop_front() {
                lock_or_die(self.session_shard(victim), "session shard").remove(&victim);
                t.evicted += 1;
            }
        }
    }
}

/// The service core: session queue, worker pool, journals, probe cache.
pub struct SessionManager {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SessionManager {
    /// Start a manager: scan the journal directory (if any) for sessions
    /// to restore or resume, then spawn the worker pool.
    ///
    /// # Errors
    /// Journal-directory I/O failure, or a corrupt (non-torn) journal.
    pub fn new(cfg: ServiceConfig) -> std::io::Result<SessionManager> {
        install_quiet_hook();
        assert!(cfg.workers >= 1, "SessionManager: need at least one worker");
        if cfg.fleet.is_some() && cfg.journal_dir.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "fleet mode is incompatible with journaling: probe interleaving on the \
                 shared pool is wall-clock dependent, so crash-resume's verified replay \
                 cannot hold",
            ));
        }
        let fleet = match &cfg.fleet {
            Some(fc) => Some(
                crate::fleet::FleetPool::new(fc)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?,
            ),
            None => None,
        };
        let nshards = cfg.shards.max(1);
        let mut sessions = BTreeMap::new();
        let mut terminal_order = VecDeque::new();
        let mut entries = Vec::new();
        let mut next_id = 1u64;
        let mut seq = 0u64;

        // The committer is started after the commit log is reconciled
        // into the session files — recovery below then sees exactly the
        // durable prefix in each file, group commit or not.
        let committer = match &cfg.journal_dir {
            Some(dir) if cfg.group_commit => {
                std::fs::create_dir_all(dir)?;
                reconcile_commit_log(dir)?;
                Some(GroupCommitter::start(dir, cfg.commit_checkpoint_bytes, cfg.crash_commit_at)?)
            }
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                reconcile_commit_log(dir)?;
                None
            }
            None => None,
        };

        if let Some(dir) = &cfg.journal_dir {
            for (id, path) in list_journals(dir)? {
                let contents = read_journal(&path)?;
                let Some(JournalRecord::Header { spec, scenario, .. }) = contents.header().cloned()
                else {
                    // Header never made it to disk: the submit itself was
                    // torn. Nothing to resume; drop the empty journal.
                    let _ = std::fs::remove_file(&path);
                    continue;
                };
                next_id = next_id.max(id + 1);
                let entries_with_provenance: Vec<(TraceEvent, bool)> = contents
                    .event_entries()
                    .into_iter()
                    .map(|(event, cached)| (event.clone(), cached))
                    .collect();
                let events: Vec<TraceEvent> =
                    entries_with_provenance.iter().map(|(e, _)| e.clone()).collect();
                match contents.terminal() {
                    Some(JournalRecord::Completed { result }) => {
                        let s = Arc::new(Session::new(
                            id,
                            spec,
                            scenario,
                            Phase::Done(Box::new(result.clone())),
                        ));
                        s.seed_events(events);
                        sessions.insert(id, s);
                        terminal_order.push_back(id);
                    }
                    Some(JournalRecord::Cancelled) => {
                        let s = Arc::new(Session::new(id, spec, scenario, Phase::Cancelled));
                        s.seed_events(events);
                        sessions.insert(id, s);
                        terminal_order.push_back(id);
                    }
                    Some(JournalRecord::Failed { error }) => {
                        let s = Arc::new(Session::new(
                            id,
                            spec,
                            scenario,
                            Phase::Failed(error.clone()),
                        ));
                        s.seed_events(events);
                        sessions.insert(id, s);
                        terminal_order.push_back(id);
                    }
                    _ => {
                        // In-flight at the crash: truncate the torn tail
                        // and requeue for deterministic replay.
                        let journal = SessionJournal::open_append(
                            &path,
                            contents.valid_len,
                            contents.records.len() as u64,
                            id,
                            committer.as_ref().map(GroupCommitter::handle),
                        )?;
                        let session =
                            Arc::new(Session::new(id, spec.clone(), scenario, Phase::Queued));
                        sessions.insert(id, session.clone());
                        entries.push(WorkItem {
                            session,
                            journal: Some(journal),
                            resumed: true,
                            resume_events: entries_with_provenance,
                            priority: spec.priority,
                            seq,
                        });
                        seq += 1;
                    }
                }
            }
        }

        // Restored terminal sessions obey the retention cap too (oldest
        // id first — completion order is not recorded across restarts).
        let mut evicted = 0u64;
        while terminal_order.len() > cfg.retain_terminal {
            if let Some(victim) = terminal_order.pop_front() {
                sessions.remove(&victim);
                evicted += 1;
            }
        }

        let paused = cfg.start_paused;
        let started = paused.then(|| Mutex::new(Vec::new()));
        let queued = entries.len();
        let mut session_shards: Vec<BTreeMap<u64, Arc<Session>>> =
            (0..nshards).map(|_| BTreeMap::new()).collect();
        for (id, s) in sessions {
            session_shards[(id % nshards as u64) as usize].insert(id, s);
        }
        let mut queue_shards: Vec<Vec<WorkItem>> = (0..nshards).map(|_| Vec::new()).collect();
        for item in entries {
            let shard = (item.session.id % nshards as u64) as usize;
            queue_shards[shard].push(item);
        }
        let cache_shards = nshards;
        let inner = Arc::new(Inner {
            cfg,
            cache: ProbeCache::with_shards(cache_shards),
            grids: GridCache::with_shards(cache_shards),
            session_shards: session_shards.into_iter().map(Mutex::new).collect(),
            queue_shards: queue_shards.into_iter().map(Mutex::new).collect(),
            control: Mutex::new(Control { shutdown: false, paused }),
            work_cv: Condvar::new(),
            queued: AtomicUsize::new(queued),
            next_id: AtomicU64::new(next_id),
            next_seq: AtomicU64::new(seq),
            committer,
            terminal: Mutex::new(TerminalLog { order: terminal_order, evicted }),
            started,
            fleet,
        });
        let workers = (0..inner.cfg.workers)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(SessionManager { inner, workers: Mutex::new(workers) })
    }

    /// Submit a session.
    ///
    /// # Errors
    /// [`Reject`] with `queue_full: true` when the bounded queue is at
    /// capacity, `false` for invalid specs, journal I/O failure or a
    /// shutting-down manager.
    pub fn submit(&self, spec: SubmitSpec) -> Result<u64, Reject> {
        if let Err(reason) = spec.validate() {
            return Err(Reject { queue_full: false, reason });
        }
        let scenario = spec.scenario().expect("spec validated");

        // Phase 1 — admission without any global lock: a single atomic
        // counter bounds the queue, and the shutdown flag is re-checked
        // under `control` in phase 3 before the session becomes visible.
        if lock_or_die(&self.inner.control, "service control").shutdown {
            return Err(Reject { queue_full: false, reason: "server is shutting down".into() });
        }
        let cap = self.inner.cfg.queue_cap;
        if let Err(old) = self
            .inner
            .queued
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| (n < cap).then_some(n + 1))
        {
            return Err(Reject {
                queue_full: true,
                reason: format!("queue full: {old} sessions already queued (cap {cap})"),
            });
        }
        let release_slot = || {
            self.inner.queued.fetch_sub(1, Ordering::AcqRel);
        };
        let id = self.inner.next_id.fetch_add(1, Ordering::AcqRel);

        // Phase 2 — write-ahead, unlocked: the header must be durable
        // before the session is visible, so a crash between submit and
        // first probe still resumes. The journal header's fsync (or
        // group-commit wait) must NOT happen while any shard lock is
        // held: a hung journal device would stall the whole pool.
        let journal_path = self.inner.cfg.journal_dir.as_ref().map(|dir| journal_file(dir, id));
        let committer = self.inner.committer.as_ref().map(GroupCommitter::handle);
        let mut journal = match &journal_path {
            Some(path) => {
                let journal = (|| {
                    let mut j =
                        SessionJournal::create(path, id, committer).map_err(|e| e.to_string())?;
                    j.append(&JournalRecord::Header {
                        format: JOURNAL_FORMAT,
                        session: id,
                        spec: spec.clone(),
                        scenario,
                    })
                    .map_err(|e| e.to_string())?;
                    Ok::<_, String>(j)
                })();
                match journal {
                    Ok(j) => Some(j),
                    Err(e) => {
                        self.discard_journal(id, &journal_path);
                        release_slot();
                        return Err(Reject {
                            queue_full: false,
                            reason: format!("journal unavailable: {e}"),
                        });
                    }
                }
            }
            None => None,
        };

        // Phase 3 — make the session visible. Shutdown is re-checked
        // under `control` (it may have flipped while we were on disk); a
        // late rejection must not leave a header-only journal behind —
        // the next manager would restore it as a queued session the
        // client was told did not get in. The insert+push itself is
        // cheap, so holding `control` across it keeps the wakeup
        // race-free without a global queue lock.
        let session = Arc::new(Session::new(id, spec.clone(), scenario, Phase::Queued));
        let control = lock_or_die(&self.inner.control, "service control");
        if control.shutdown {
            drop(control);
            journal.take();
            self.discard_journal(id, &journal_path);
            release_slot();
            return Err(Reject { queue_full: false, reason: "server is shutting down".into() });
        }
        let seq = self.inner.next_seq.fetch_add(1, Ordering::AcqRel);
        lock_or_die(self.inner.session_shard(id), "session shard").insert(id, session.clone());
        lock_or_die(self.inner.queue_shard(id), "queue shard").push(WorkItem {
            session,
            journal,
            resumed: false,
            resume_events: Vec::new(),
            priority: spec.priority,
            seq,
        });
        drop(control);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Remove a half-created journal after a late reject. In group mode
    /// the header may already sit in the durable commit log, so a `Drop`
    /// tombstone is appended first — reconcile then skips (and deletes)
    /// the id instead of resurrecting it.
    fn discard_journal(&self, id: u64, path: &Option<PathBuf>) {
        let Some(path) = path else { return };
        if let Some(committer) = &self.inner.committer {
            let _ = committer.handle().append_drop(id);
        }
        let _ = std::fs::remove_file(path);
    }

    /// Look a session up by id. Evicted terminal sessions are rebuilt
    /// from their journal, so `Status`/`Result` keep answering past the
    /// retention cap.
    pub fn session(&self, id: u64) -> Option<Arc<Session>> {
        let live = lock_or_die(self.inner.session_shard(id), "session shard").get(&id).cloned();
        if let Some(s) = live {
            return Some(s);
        }
        self.load_evicted(id)
    }

    /// Rebuild an evicted session from its journal. Only terminal
    /// journals qualify: an id absent from the live map with an
    /// in-flight journal is a recovery concern, not an eviction.
    fn load_evicted(&self, id: u64) -> Option<Arc<Session>> {
        let dir = self.inner.cfg.journal_dir.as_ref()?;
        let path = journal_file(dir, id);
        if !path.exists() {
            return None;
        }
        let contents = read_journal(&path).ok()?;
        let JournalRecord::Header { spec, scenario, .. } = contents.header().cloned()? else {
            return None;
        };
        let phase = match contents.terminal()? {
            JournalRecord::Completed { result } => Phase::Done(Box::new(result.clone())),
            JournalRecord::Cancelled => Phase::Cancelled,
            JournalRecord::Failed { error } => Phase::Failed(error.clone()),
            _ => return None,
        };
        let events: Vec<TraceEvent> =
            contents.event_entries().into_iter().map(|(e, _)| e.clone()).collect();
        let s = Arc::new(Session::new(id, spec, scenario, phase));
        s.seed_events(events);
        Some(s)
    }

    /// Status rows: one session, or every live session in id order.
    pub fn status(&self, id: Option<u64>) -> Option<Vec<StatusLine>> {
        match id {
            Some(id) => self.session(id).map(|s| vec![s.status_line()]),
            None => {
                let mut rows: Vec<StatusLine> = Vec::new();
                for shard in &self.inner.session_shards {
                    let shard = lock_or_die(shard, "session shard");
                    rows.extend(shard.values().map(|s| s.status_line()));
                }
                rows.sort_by_key(|r| r.id);
                Some(rows)
            }
        }
    }

    /// Request cancellation. Returns false for an unknown id.
    pub fn cancel(&self, id: u64) -> bool {
        let live = lock_or_die(self.inner.session_shard(id), "session shard").get(&id).cloned();
        let Some(s) = live else {
            return false;
        };
        s.request_cancel();
        self.inner.work_cv.notify_all();
        true
    }

    /// The shared probe cache's `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.cache.stats()
    }

    /// The shared grid cache's `(hits, misses)`.
    pub fn grid_stats(&self) -> (u64, u64) {
        self.inner.grids.stats()
    }

    /// Service-wide counters for the `Stats` request.
    pub fn stats(&self) -> ServiceStats {
        let live = self
            .inner
            .session_shards
            .iter()
            .map(|s| lock_or_die(s, "session shard").len() as u64)
            .sum();
        let (cache_hits, cache_misses) = self.inner.cache.stats();
        let (grid_hits, grid_misses) = self.inner.grids.stats();
        let evicted = lock_or_die(&self.inner.terminal, "terminal log").evicted;
        let commit: CommitStats =
            self.inner.committer.as_ref().map(GroupCommitter::stats).unwrap_or_default();
        ServiceStats {
            live_sessions: live,
            queued: self.inner.queued.load(Ordering::Acquire) as u64,
            evicted,
            cache_hits,
            cache_misses,
            grid_hits,
            grid_misses,
            group_commit: self.inner.committer.is_some(),
            journal_groups: commit.groups,
            journal_records: commit.records,
            journal_checkpoints: commit.checkpoints,
            sim_events: mlcd_cloudsim::global_event_counters(),
            fleet: self.inner.fleet.as_ref().map(|pool| {
                let c = pool.counters();
                crate::proto::FleetStatsWire {
                    policy: pool.policy_name().to_string(),
                    admitted: c.admitted,
                    deferred: c.deferred,
                    denied: c.denied,
                    preempted: c.preempted,
                    queue_depth: c.queue_depth,
                }
            }),
        }
    }

    /// Order in which sessions were picked up by workers. Recorded only
    /// for managers started paused (the test path); otherwise empty.
    pub fn started_order(&self) -> Vec<u64> {
        match &self.inner.started {
            Some(started) => lock_or_die(started, "started log").clone(),
            None => Vec::new(),
        }
    }

    /// Unpause a manager started with
    /// [`ServiceConfig::start_paused`]: the worker pool begins draining
    /// the queue. A no-op when not paused.
    pub fn resume_workers(&self) {
        lock_or_die(&self.inner.control, "service control").paused = false;
        self.inner.work_cv.notify_all();
    }

    /// Stop accepting and starting work. Running sessions finish; queued
    /// journaled sessions stay on disk and resume on the next start.
    pub fn shutdown(&self) {
        lock_or_die(&self.inner.control, "service control").shutdown = true;
        self.inner.work_cv.notify_all();
    }

    /// [`SessionManager::shutdown`], then join every worker, detach any
    /// remaining watchers (each blocked `wait_terminal`/`next_events`
    /// returns with the session's current, possibly non-terminal, state
    /// so the connection can send `WatchEnd`), and stop the group
    /// committer so everything buffered is durable.
    pub fn shutdown_and_wait(&self) {
        self.shutdown();
        let handles: Vec<_> = std::mem::take(&mut *lock_or_die(&self.workers, "worker pool"));
        for h in handles {
            let _ = h.join();
        }
        // Stop the committer before detaching watchers: terminal records
        // the workers handed off asynchronously are flushed and their
        // sessions' phases published here, so a watcher detached below
        // sees the final phase, not a session frozen mid-completion.
        if let Some(committer) = &self.inner.committer {
            committer.shutdown();
        }
        for shard in &self.inner.session_shards {
            let sessions: Vec<Arc<Session>> =
                lock_or_die(shard, "session shard").values().cloned().collect();
            for s in sessions {
                s.detach();
            }
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shutdown_and_wait();
    }
}

/// Pop the best entry across every queue shard: highest priority wins,
/// FIFO (lowest global `seq`) within a priority. The scan takes each
/// shard lock in turn; candidates are compared by `(priority,
/// Reverse(seq))` exactly as the old single-queue `pop_best` did, so
/// ordering semantics are unchanged.
fn pop_best(inner: &Inner) -> Option<WorkItem> {
    let mut best: Option<(u8, std::cmp::Reverse<u64>, usize)> = None;
    for (shard_idx, shard) in inner.queue_shards.iter().enumerate() {
        let q = lock_or_die(shard, "queue shard");
        if let Some(e) = q.iter().max_by_key(|e| (e.priority, std::cmp::Reverse(e.seq))) {
            let better = match best {
                None => true,
                Some((p, s, _)) => (e.priority, std::cmp::Reverse(e.seq)) > (p, s),
            };
            if better {
                best = Some((e.priority, std::cmp::Reverse(e.seq), shard_idx));
            }
        }
    }
    let (priority, seq, shard_idx) = best?;
    let mut q = lock_or_die(&inner.queue_shards[shard_idx], "queue shard");
    let idx = q.iter().position(|e| e.priority == priority && e.seq == seq.0)?;
    Some(q.remove(idx))
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let item = {
            let mut control = lock_or_die(&inner.control, "service control");
            loop {
                if control.shutdown {
                    return;
                }
                if !control.paused {
                    // Pushes happen while `control` is held, so a scan
                    // under this lock cannot miss a concurrent submit.
                    if let Some(item) = pop_best(inner) {
                        break item;
                    }
                }
                control = wait_or_die(&inner.work_cv, control, "service control");
            }
        };
        inner.queued.fetch_sub(1, Ordering::AcqRel);
        if let Some(started) = &inner.started {
            lock_or_die(started, "started log").push(item.session.id);
        }
        run_session(inner, item);
    }
}

/// Append a terminal record and, once it is durable, publish the phase
/// it maps to — without parking this thread on the group fsync. In
/// group mode the finalisation (retire + `set_phase`) runs on the
/// commit thread's ack path, so a worker hands off its finished session
/// and immediately picks up the next one; the session only *becomes*
/// terminal once its record is durable, exactly as before. In direct
/// mode (and with no journal) everything runs inline on this thread.
///
/// An [`AppendError::Crashed`] means the simulated kill happened before
/// the record became durable: the session is left [`Phase::Crashed`]
/// with no terminal record, exactly like a real SIGKILL, and resumes on
/// the next start. Crashed sessions are not retired — they belong to
/// the next manager.
fn finish_session(
    inner: &Arc<Inner>,
    session: &Arc<Session>,
    journal: Option<SessionJournal>,
    record: &JournalRecord,
    on_durable: Phase,
) {
    let finalize = {
        let inner = inner.clone();
        let session = session.clone();
        move |res: Result<(), AppendError>| {
            let phase = match res {
                Ok(()) => on_durable,
                Err(AppendError::Crashed) => Phase::Crashed,
                Err(AppendError::Io(e)) => match on_durable {
                    // A completed result that never hit the disk must not
                    // be reported Done; lesser terminals keep their phase.
                    Phase::Done(_) => Phase::Failed(format!("result not durable: {e}")),
                    other => other,
                },
            };
            // Retire before publishing the phase: a waiter that wakes on
            // the terminal state must already see the retention cap
            // enforced.
            if !matches!(phase, Phase::Crashed) {
                inner.retire(session.id);
            }
            session.set_phase(phase);
        }
    };
    match journal {
        Some(j) => j.append_async(record, finalize),
        None => finalize(Ok(())),
    }
}

fn run_session(inner: &Arc<Inner>, mut item: WorkItem) {
    let session = item.session.clone();
    if session.cancel_requested() {
        // Cancelled while still queued: terminal record, no search.
        let journal = item.journal.take();
        finish_session(inner, &session, journal, &JournalRecord::Cancelled, Phase::Cancelled);
        return;
    }
    session.set_phase(Phase::Running);

    let resuming = item.resumed;
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<SessionResult, String> {
        if inner.fleet.is_some() {
            // Fleet mode: the shared-pool path (no journal, no resume —
            // both rejected at construction).
            return run_fleet_session(inner, &session);
        }
        let spec = &session.spec;
        let job = spec.training_job()?;
        let searcher = searcher_by_name(&spec.searcher, spec.seed)
            .ok_or_else(|| format!("unknown searcher `{}`", spec.searcher))?;
        let mut runner = ExperimentRunner::new(spec.seed).with_max_nodes(spec.max_nodes);
        if let Some(types) = spec.instance_types()? {
            runner = runner.with_types(types);
        }
        // One grid enumeration per (job, types, max_nodes) across every
        // concurrent session; the grid is a pure function of the key, so
        // the cached copy is bit-identical to a private enumeration.
        let mut profiler = if inner.cfg.grid_cache {
            let key = GridKey::new(&spec.job, spec.instance_types()?.as_deref(), spec.max_nodes);
            let space = inner.grids.get_or_build(key, || runner.space(&job));
            runner.profiler_with_space(&job, (*space).clone())
        } else {
            runner.profiler_for(&job)
        };
        let search = {
            let provenance = ProvenanceLog::new();
            // Fresh sessions search through the shared cache; resumed
            // sessions search through the journal replayer, which serves
            // journaled hits itself and never consults the live cache.
            let cache = inner.cfg.probe_cache.then_some(&inner.cache);
            let mut cached_env;
            let mut replay_env;
            let env: &mut dyn ProfilingEnv = if resuming {
                replay_env = ReplayEnv::new(&mut profiler, &item.resume_events, &provenance);
                &mut replay_env
            } else {
                cached_env = CachedEnv::new(&mut profiler, cache, &spec.job, &provenance);
                &mut cached_env
            };
            let mut sink = SessionSink {
                session: &session,
                writer: item.journal.as_mut(),
                replay: &item.resume_events,
                replay_pos: 0,
                journaled: 0,
                provenance: &provenance,
                crash_after: inner.cfg.crash_after_records,
            };
            let search = searcher.search_traced(env, &session.scenario, &mut sink);
            if sink.replay_pos < sink.replay.len() {
                return Err(format!(
                    "resume divergence: replay consumed only {} of {} journaled events",
                    sink.replay_pos,
                    sink.replay.len()
                ));
            }
            search
        };
        let experiment = runner.complete(profiler, search, searcher.name(), &session.scenario);
        Ok(SessionResult::from(&experiment))
    }));

    let journal = item.journal.take();
    match outcome {
        Ok(Ok(result)) => finish_session(
            inner,
            &session,
            journal,
            &JournalRecord::Completed { result: result.clone() },
            Phase::Done(Box::new(result)),
        ),
        Ok(Err(error)) => finish_session(
            inner,
            &session,
            journal,
            &JournalRecord::Failed { error: error.clone() },
            Phase::Failed(error),
        ),
        Err(payload) => {
            if payload.is::<CancelSignal>() {
                finish_session(
                    inner,
                    &session,
                    journal,
                    &JournalRecord::Cancelled,
                    Phase::Cancelled,
                );
            } else if payload.is::<CrashSignal>() {
                // Simulated kill: no terminal record — exactly what a real
                // SIGKILL leaves behind. The next manager resumes it. Not
                // retired: crashed sessions belong to the next manager.
                session.set_phase(Phase::Crashed);
            } else {
                let error = if let Some(d) = payload.downcast_ref::<ReplayDivergence>() {
                    d.0.clone()
                } else if let Some(j) = payload.downcast_ref::<JournalIo>() {
                    format!("journal append failed: {}", j.0)
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    format!("searcher panicked: {s}")
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    format!("searcher panicked: {s}")
                } else {
                    "searcher panicked".to_string()
                };
                finish_session(
                    inner,
                    &session,
                    journal,
                    &JournalRecord::Failed { error: error.clone() },
                    Phase::Failed(error),
                );
            }
        }
    }
}

/// The fleet-mode session body: same searcher pipeline as the private-
/// cloud path, but the profiler runs over a [`crate::fleet::FleetCloud`]
/// on the shared pool and every probe takes a scheduler-granted turn
/// through a [`crate::fleet::FleetGateEnv`] (inside the probe cache, so
/// hits skip admission). The final training run takes one turn the same
/// way.
fn run_fleet_session(inner: &Arc<Inner>, session: &Arc<Session>) -> Result<SessionResult, String> {
    use crate::fleet::{FleetCloud, FleetGateEnv};
    use mlcd_fleet::Purpose;

    let pool = inner.fleet.as_ref().expect("fleet mode");
    let spec = &session.spec;
    let job = spec.training_job()?;
    let searcher = searcher_by_name(&spec.searcher, spec.seed)
        .ok_or_else(|| format!("unknown searcher `{}`", spec.searcher))?;
    let mut runner = ExperimentRunner::new(spec.seed).with_max_nodes(spec.max_nodes);
    if let Some(types) = spec.instance_types()? {
        runner = runner.with_types(types);
    }
    let space = if inner.cfg.grid_cache {
        let key = GridKey::new(&spec.job, spec.instance_types()?.as_deref(), spec.max_nodes);
        (*inner.grids.get_or_build(key, || runner.space(&job))).clone()
    } else {
        runner.space(&job)
    };
    let deadline = match session.scenario {
        Scenario::CheapestWithDeadline(d) => Some(d),
        _ => None,
    };
    // RAII registration: the guard deregisters the session on every exit
    // path, including panic/cancel unwinds (caught by `run_session`'s
    // catch_unwind). A leaked registration would leave a pending request
    // in the gate that no thread can ever consume, livelocking the pool.
    let _registration = pool.register(session.id, spec.priority, deadline);
    let mut profiler = runner.profiler_on_cloud(&job, space, FleetCloud::new(pool, session.id));
    let search = {
        let provenance = ProvenanceLog::new();
        let cache = inner.cfg.probe_cache.then_some(&inner.cache);
        let mut gate = FleetGateEnv::new(&mut profiler, pool, session.id);
        let mut env = CachedEnv::new(&mut gate, cache, &spec.job, &provenance);
        let mut sink = SessionSink {
            session,
            writer: None,
            replay: &[],
            replay_pos: 0,
            journaled: 0,
            provenance: &provenance,
            crash_after: None,
        };
        searcher.search_traced(&mut env, &session.scenario, &mut sink)
    };
    let train_turn = search.best.as_ref().and_then(|b| {
        // Policies never deny trainings; if the gate errors anyway, run
        // the training unserialized and let the launch surface the
        // provider's real failure.
        pool.acquire(session.id, b.deployment.itype, b.deployment.n, Purpose::Train).ok()
    });
    let experiment = runner.complete(profiler, search, searcher.name(), &session.scenario);
    drop(train_turn);
    Ok(SessionResult::from(&experiment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd::env::SyntheticEnv;
    use mlcd::prelude::InstanceType;
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn tiny_spec(job: &str, seed: u64) -> SubmitSpec {
        // Small spaces keep these unit tests fast; the integration tests
        // exercise the paper-scale spaces.
        let mut s = SubmitSpec::new(job, "random", seed);
        s.types = Some(vec!["c5.xlarge".into(), "p2.xlarge".into()]);
        s.max_nodes = 8;
        s
    }

    fn manager(cfg: ServiceConfig) -> SessionManager {
        SessionManager::new(cfg).expect("manager starts")
    }

    fn done_result(m: &SessionManager, id: u64) -> SessionResult {
        match m.session(id).expect("session exists").wait_terminal() {
            Phase::Done(r) => *r,
            other => panic!("session {id} ended as {}", other.name()),
        }
    }

    #[test]
    fn runs_a_session_to_done() {
        let m = manager(ServiceConfig { workers: 1, ..Default::default() });
        let id = m.submit(tiny_spec("resnet-cifar10", 3)).unwrap();
        let result = done_result(&m, id);
        assert_eq!(result.searcher, "Random");
        assert!(result.search.n_probes() > 0);
        assert_eq!(m.status(Some(id)).unwrap()[0].state, "done");
    }

    #[test]
    fn rejects_invalid_specs_without_consuming_ids() {
        let m = manager(ServiceConfig::default());
        let r = m.submit(SubmitSpec::new("no-such-job", "random", 1)).unwrap_err();
        assert!(!r.queue_full);
        let id = m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        assert_eq!(id, 1, "rejected submits must not burn session ids");
    }

    #[test]
    fn backpressure_is_typed_and_bounded() {
        // Paused pool: nothing drains, so the single queue slot fills on
        // the first submit and the second must be rejected with the typed
        // queue_full signal (never blocked, never unbounded).
        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 1,
            start_paused: true,
            ..Default::default()
        });
        m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        let r = m.submit(tiny_spec("resnet-cifar10", 2)).unwrap_err();
        assert!(r.queue_full, "rejection must carry the queue_full signal: {}", r.reason);
        // Spec problems are rejections too, but never queue_full.
        let bad = m.submit(SubmitSpec::new("no-such-job", "random", 1)).unwrap_err();
        assert!(!bad.queue_full);
    }

    #[test]
    fn priority_orders_the_queue_fifo_within_priority() {
        // Queue everything while paused, then drain with one worker: the
        // order must be strictly (priority desc, submit order).
        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 16,
            start_paused: true,
            ..Default::default()
        });
        let low_a = m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        let low_b = m.submit(tiny_spec("resnet-cifar10", 2)).unwrap();
        let hi = m.submit(tiny_spec("resnet-cifar10", 3).with_priority(5)).unwrap();
        let mid = m.submit(tiny_spec("resnet-cifar10", 4).with_priority(2)).unwrap();
        m.resume_workers();
        for id in [low_a, low_b, hi, mid] {
            let _ = m.session(id).unwrap().wait_terminal();
        }
        assert_eq!(m.started_order(), vec![hi, mid, low_a, low_b]);
    }

    #[test]
    fn cancel_queued_session_never_runs() {
        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 16,
            start_paused: true,
            ..Default::default()
        });
        let keep = m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        let dropped = m.submit(tiny_spec("resnet-cifar10", 2)).unwrap();
        assert!(m.cancel(dropped));
        m.resume_workers();
        assert!(matches!(m.session(dropped).unwrap().wait_terminal(), Phase::Cancelled));
        assert!(matches!(m.session(keep).unwrap().wait_terminal(), Phase::Done(_)));
        let cancelled = m.session(dropped).unwrap();
        assert_eq!(cancelled.next_events(0).0.len(), 0, "cancelled-in-queue never searched");
        assert!(!m.cancel(999), "unknown ids are reported, not ignored");
    }

    #[test]
    fn same_spec_twice_shares_probes_for_free() {
        let m = manager(ServiceConfig { workers: 1, ..Default::default() });
        let a = m.submit(tiny_spec("resnet-cifar10", 7)).unwrap();
        let b = m.submit(tiny_spec("resnet-cifar10", 7)).unwrap();
        let ra = done_result(&m, a);
        let rb = done_result(&m, b);
        // Identical specs walk the identical trajectory: same deployments
        // probed, same observed speeds, same pick…
        assert_eq!(ra.search.best, rb.search.best);
        assert_eq!(ra.search.steps.len(), rb.search.steps.len());
        for (sa, sb) in ra.search.steps.iter().zip(&rb.search.steps) {
            assert_eq!(sa.observation, sb.observation);
        }
        // …but the later session pays nothing: every probe is a cache hit
        // (that is the service's whole reason to share the cache).
        let (hits, _) = m.cache_stats();
        assert!(hits as usize >= rb.search.steps.len(), "second run must be all hits");
        assert_eq!(rb.search.profile_cost.dollars(), 0.0);
        assert!(ra.search.profile_cost.dollars() > 0.0);
    }

    fn synthetic_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
        let space = SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::P2Xlarge],
            10,
            &TrainingJob::resnet_cifar10(),
            &ThroughputModel::default(),
        );
        SyntheticEnv::new(space, 1e6, |d| 100.0 * d.n as f64)
    }

    fn probe_event(observation: Observation) -> TraceEvent {
        TraceEvent::Probe {
            observation,
            cum_profile_time: SimDuration::ZERO,
            cum_profile_cost: Money::ZERO,
        }
    }

    #[test]
    fn replay_env_serves_journaled_hits_and_reprobes_misses() {
        let d1 = Deployment::new(InstanceType::C5Xlarge, 1);
        let d2 = Deployment::new(InstanceType::C5Xlarge, 2);
        let d3 = Deployment::new(InstanceType::P2Xlarge, 3);

        // What the paid probes look like on the raw environment.
        let mut baseline = synthetic_env();
        let base1 = baseline.profile(&d1).unwrap();
        let base3 = baseline.profile(&d3).unwrap();
        let paid_elapsed = baseline.elapsed();

        // The journaled prefix: d1 paid, d2 a cache hit whose observation
        // (sentinel speed) could never come from this env, d3 paid.
        let hit = Observation {
            deployment: d2,
            speed: 123.456,
            profile_time: SimDuration::ZERO,
            profile_cost: Money::ZERO,
        };
        let prefix = vec![
            (probe_event(base1), false),
            (probe_event(hit), true),
            (probe_event(base3), false),
        ];

        let mut inner = synthetic_env();
        let log = ProvenanceLog::new();
        let mut replay = ReplayEnv::new(&mut inner, &prefix, &log);

        assert_eq!(replay.profile(&d1).unwrap(), base1, "journaled miss is re-probed");
        assert!(!log.pop());
        let served = replay.profile(&d2).unwrap();
        assert_eq!(served, hit, "journaled hit is served from the journal, not the env");
        assert!(log.pop());
        assert_eq!(replay.profile(&d3).unwrap(), base3);
        assert!(!log.pop());
        // Past the prefix the env is a plain delegate: every probe paid.
        let again = replay.profile(&d2).unwrap();
        assert_ne!(again, hit, "suffix probes must come from the env, not the journal");
        assert!(!log.pop());
        // The inner env was charged for exactly the three paid probes —
        // the served hit never touched it.
        let (t2, _) = inner.quote(&d2);
        assert_eq!(inner.elapsed(), paid_elapsed + t2);
    }

    #[test]
    fn replay_env_batches_mix_journaled_hits_and_paid_misses() {
        let d1 = Deployment::new(InstanceType::C5Xlarge, 1);
        let d2 = Deployment::new(InstanceType::C5Xlarge, 2);
        let d3 = Deployment::new(InstanceType::P2Xlarge, 3);

        let mut baseline = synthetic_env();
        let batch = baseline.profile_batch(&[d1, d3]);
        let base1 = *batch[0].as_ref().unwrap();
        let base3 = *batch[1].as_ref().unwrap();

        let hit = Observation {
            deployment: d2,
            speed: 777.0,
            profile_time: SimDuration::ZERO,
            profile_cost: Money::ZERO,
        };
        let prefix = vec![
            (probe_event(base1), false),
            (probe_event(hit), true),
            (probe_event(base3), false),
        ];

        let mut inner = synthetic_env();
        let log = ProvenanceLog::new();
        let mut replay = ReplayEnv::new(&mut inner, &prefix, &log);
        let results = replay.profile_batch(&[d1, d2, d3]);
        assert_eq!(*results[0].as_ref().unwrap(), base1);
        assert_eq!(*results[1].as_ref().unwrap(), hit);
        assert_eq!(*results[2].as_ref().unwrap(), base3);
        // Provenance in batch (ds) order: paid, hit, paid.
        assert!(!log.pop());
        assert!(log.pop());
        assert!(!log.pop());
        // Only the two misses were charged to the inner env; the served
        // hit never touched it.
        let (t1, _) = replay.quote(&d1);
        let (t3, _) = replay.quote(&d3);
        assert_eq!(inner.elapsed(), t1 + t3);
    }

    #[test]
    fn header_only_journal_still_resumes_cache_free() {
        // Crash before the first journaled event: the journal holds a
        // header only. The restored session must STILL count as resumed
        // and run cache-free — inferring resume status from the replayed
        // -event count would let it hit the live cache and produce an
        // outcome the original run could not have.
        let jdir =
            std::env::temp_dir().join(format!("mlcd-session-headeronly-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        std::fs::create_dir_all(&jdir).unwrap();

        let spec = tiny_spec("resnet-cifar10", 11);
        let doomed = manager(ServiceConfig {
            workers: 1,
            journal_dir: Some(jdir.clone()),
            probe_cache: true,
            crash_after_records: Some(0),
            ..Default::default()
        });
        let id = doomed.submit(spec.clone()).unwrap();
        assert!(matches!(doomed.session(id).unwrap().wait_terminal(), Phase::Crashed));
        drop(doomed);

        // Revive paused, and let a fresh same-spec session warm the cache
        // first; only then drain the resumed one.
        let revived = manager(ServiceConfig {
            workers: 1,
            queue_cap: 8,
            journal_dir: Some(jdir.clone()),
            probe_cache: true,
            start_paused: true,
            ..Default::default()
        });
        let warm = revived.submit(spec.with_priority(5)).unwrap();
        revived.resume_workers();
        let warm_result = done_result(&revived, warm);
        let resumed_result = done_result(&revived, id);
        assert_eq!(revived.started_order(), vec![warm, id]);
        assert!(warm_result.search.profile_cost.dollars() > 0.0);
        // Same trajectory, but every probe paid: the resumed session
        // never consulted the cache the warm session just filled.
        assert_eq!(resumed_result.search.digest(), warm_result.search.digest());
        assert!(
            resumed_result.search.profile_cost.dollars() > 0.0,
            "header-only resume must not be served by the live probe cache"
        );
        let _ = std::fs::remove_dir_all(&jdir);
    }

    #[test]
    fn rejected_submit_leaves_no_journal_file() {
        let jdir =
            std::env::temp_dir().join(format!("mlcd-session-rejected-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        std::fs::create_dir_all(&jdir).unwrap();

        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 1,
            journal_dir: Some(jdir.clone()),
            start_paused: true,
            ..Default::default()
        });
        let kept = m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        let r = m.submit(tiny_spec("resnet-cifar10", 2)).unwrap_err();
        assert!(r.queue_full);
        // Count session journals only: the shared commit.log is expected.
        let journals = list_journals(&jdir).unwrap();
        assert_eq!(
            journals.len(),
            1,
            "a rejected submit must not leave a journal for the next manager to restore"
        );
        m.resume_workers();
        let _ = m.session(kept).unwrap().wait_terminal();
        let _ = std::fs::remove_dir_all(&jdir);
    }

    #[test]
    fn terminal_sessions_are_evicted_and_served_from_the_journal() {
        let jdir = std::env::temp_dir().join(format!("mlcd-session-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        std::fs::create_dir_all(&jdir).unwrap();

        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 16,
            journal_dir: Some(jdir.clone()),
            retain_terminal: 2,
            ..Default::default()
        });
        let ids: Vec<u64> =
            (0..5).map(|i| m.submit(tiny_spec("resnet-cifar10", 20 + i)).unwrap()).collect();
        let fresh: Vec<SessionResult> = ids.iter().map(|&id| done_result(&m, id)).collect();

        // Only the retention cap's worth of terminal sessions stay live.
        let live: u64 = m.stats().live_sessions;
        assert_eq!(live, 2, "terminal sessions past the cap must be evicted");
        assert!(m.stats().evicted >= 3);

        // Every id — evicted or live — still answers Status and Result,
        // bit-identical to the fresh result, because the journal is the
        // durable record.
        for (&id, fresh) in ids.iter().zip(&fresh) {
            let rows = m.status(Some(id)).expect("status for evicted id");
            assert_eq!(rows[0].state, "done");
            match m.session(id).expect("evicted session loads").phase() {
                Phase::Done(r) => assert_eq!(r.search.digest(), fresh.search.digest()),
                other => panic!("session {id} reloaded as {}", other.name()),
            }
        }
        let _ = std::fs::remove_dir_all(&jdir);
    }

    #[test]
    fn eviction_without_a_journal_forgets_the_session() {
        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 16,
            retain_terminal: 1,
            ..Default::default()
        });
        let a = m.submit(tiny_spec("resnet-cifar10", 31)).unwrap();
        let b = m.submit(tiny_spec("resnet-cifar10", 32)).unwrap();
        let _ = done_result(&m, a);
        let _ = done_result(&m, b);
        // One of the two was evicted; without a journal it is simply gone.
        let remaining = [a, b].iter().filter(|&&id| m.session(id).is_some()).count();
        assert_eq!(remaining, 1);
        assert_eq!(m.stats().evicted, 1);
    }

    #[test]
    fn next_events_batches_are_bounded() {
        let m = manager(ServiceConfig { workers: 1, ..Default::default() });
        let spec = {
            let mut s = SubmitSpec::new("resnet-cifar10", "exhaustive", 1);
            s.types = Some(vec!["c5.xlarge".into(), "p2.xlarge".into()]);
            s.max_nodes = 8;
            s
        };
        let id = m.submit(spec).unwrap();
        let session = m.session(id).unwrap();
        let _ = session.wait_terminal();
        let mut pos = 0usize;
        let mut total = 0usize;
        loop {
            let (events, terminal) = session.next_events(pos);
            assert!(events.len() <= WATCH_BATCH, "poll batches must be bounded");
            pos += events.len();
            total += events.len();
            if terminal.is_some() {
                break;
            }
        }
        assert!(total > 0, "the full backlog still streams, batch by batch");
    }

    #[test]
    fn started_audit_log_is_gated_behind_the_paused_path() {
        let m = manager(ServiceConfig { workers: 1, ..Default::default() });
        let id = m.submit(tiny_spec("resnet-cifar10", 41)).unwrap();
        let _ = done_result(&m, id);
        assert!(
            m.started_order().is_empty(),
            "unpaused managers must not grow the unbounded started log"
        );
    }

    #[test]
    fn stats_expose_group_commit_counters() {
        let jdir = std::env::temp_dir().join(format!("mlcd-session-stats-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        std::fs::create_dir_all(&jdir).unwrap();

        let m = manager(ServiceConfig {
            workers: 2,
            queue_cap: 16,
            journal_dir: Some(jdir.clone()),
            ..Default::default()
        });
        let id = m.submit(tiny_spec("resnet-cifar10", 51)).unwrap();
        let _ = done_result(&m, id);
        let stats = m.stats();
        assert!(stats.group_commit);
        assert!(stats.journal_groups >= 1, "appends must have flowed through the committer");
        // Header + events + terminal all went through the shared log.
        assert!(stats.journal_records >= 3);
        // One simulator-counter row per event kind, in declaration order,
        // and the session's search must have dispatched lifecycle events.
        let kinds: Vec<&str> = stats.sim_events.iter().map(|r| r.kind.as_str()).collect();
        let expected: Vec<&str> = mlcd_cloudsim::EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(kinds, expected);
        assert!(
            stats.sim_events.iter().any(|r| r.dispatched > 0),
            "running a search must dispatch simulator events: {:?}",
            stats.sim_events
        );
        let _ = std::fs::remove_dir_all(&jdir);
    }

    #[test]
    fn fleet_mode_rejects_journaling() {
        let jdir = std::env::temp_dir().join(format!("mlcd-session-fleetj-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        let err = match SessionManager::new(ServiceConfig {
            journal_dir: Some(jdir.clone()),
            fleet: Some(crate::fleet::FleetConfig::default()),
            ..Default::default()
        }) {
            Ok(_) => panic!("fleet + journal must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("incompatible"), "{err}");
        let _ = std::fs::remove_dir_all(&jdir);
    }

    #[test]
    fn fleet_sessions_share_the_pool_and_report_counters() {
        let m = manager(ServiceConfig {
            workers: 2,
            fleet: Some(crate::fleet::FleetConfig {
                policy: "fairshare".into(),
                ..Default::default()
            }),
            ..Default::default()
        });
        let a = m.submit(tiny_spec("resnet-cifar10", 3)).unwrap();
        let b = m.submit(tiny_spec("char-rnn", 4)).unwrap();
        let ra = done_result(&m, a);
        let rb = done_result(&m, b);
        assert!(ra.search.n_probes() > 0 && rb.search.n_probes() > 0);
        let f = m.stats().fleet.expect("fleet counters must be reported");
        assert_eq!(f.policy, "fairshare");
        assert!(f.admitted > 0, "sessions probed, so turns were granted: {f:?}");
        assert_eq!(f.queue_depth, 0, "drained pool has no waiters");
        // Private-cloud managers report no fleet block.
        let plain = manager(ServiceConfig { workers: 1, ..Default::default() });
        assert!(plain.stats().fleet.is_none());
    }

    #[test]
    fn shutdown_drains_current_session_and_stops() {
        let m = manager(ServiceConfig { workers: 1, ..Default::default() });
        let id = m.submit(tiny_spec("resnet-cifar10", 5)).unwrap();
        m.shutdown_and_wait();
        assert!(
            m.session(id).unwrap().phase().is_terminal() || {
                // The worker may not have picked it up before shutdown; then
                // it simply stays queued (journal-less here, so it is lost by
                // design — journaled queues resume instead).
                matches!(m.session(id).unwrap().phase(), Phase::Queued)
            }
        );
        let r = m.submit(tiny_spec("resnet-cifar10", 6)).unwrap_err();
        assert!(r.reason.contains("shutting down"));
    }
}
