//! Concurrent search sessions on a bounded worker pool.
//!
//! A [`SessionManager`] owns a fixed-size pool of worker threads, a
//! bounded priority queue of submitted sessions (higher priority first,
//! FIFO within a priority), the shared [`ProbeCache`] and, when a journal
//! directory is configured, one write-ahead journal per session.
//!
//! # Lifecycle
//!
//! ```text
//!            submit                    worker picks up
//!  client ───────────▶ Queued ──────────────────────────▶ Running
//!                        │ cancel                            │
//!                        ▼                                   ├──▶ Done(result)
//!                     Cancelled ◀── cancel (cooperative) ────┤
//!                                                            ├──▶ Failed(error)
//!                                         simulated kill ────┴──▶ Crashed
//! ```
//!
//! `Done`, `Failed` and `Cancelled` are journaled terminal records;
//! `Crashed` is *not* (that is the point — the journal holds only the
//! durable prefix), so a restarted manager finds the unterminated journal
//! and resumes the session.
//!
//! # Crash-resume = deterministic replay
//!
//! Every search outcome is a pure function of `(job, scenario, searcher,
//! seed, types, max_nodes)` — nothing downstream of the seed reads a
//! clock or an entropy source (mlcd-lint's nondet-source rule enforces
//! this). Resuming therefore re-runs the search from scratch while a
//! verifying sink compares each re-emitted journaled event against the
//! journal prefix *string-for-string* (the serde shim's float rendering
//! round-trips finite f64s bit-exactly, so string equality is bit
//! equality). Any divergence fails the session loudly instead of
//! appending a corrupt suffix.
//!
//! The shared probe cache needs one extra move: a cache hit is free and
//! leaves the session profiler's RNG/clock/billing state untouched, so a
//! resume that re-probed it would both pay for it and shift the platform
//! RNG stream — unreproducible, since the cache died with the process.
//! The journal therefore records each probe's provenance (`Event` vs
//! `CachedEvent`), and the replay environment serves journaled hits
//! straight from the prefix while re-running journaled misses against
//! the profiler, reproducing the exact pre-crash environment state. Past
//! the prefix a resumed session probes cache-free: the live cache's
//! contents after a restart are unrelated to what the dead process held,
//! and the journal — not the cache — is the authority on this session.

use crate::cache::{CachedEnv, ProbeCache, ProvenanceLog};
use crate::journal::{
    is_journaled, journal_file, list_journals, read_journal, JournalRecord, JournalWriter,
    JOURNAL_FORMAT,
};
use crate::proto::{SessionResult, StatusLine, SubmitSpec};
use mlcd::prelude::{
    Deployment, ExperimentRunner, Money, Observation, ProfileError, ProfilingEnv, Scenario,
    SearchSpace, SimDuration, TraceEvent, TraceSink,
};
use mlcd::search::searcher_by_name;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::thread::JoinHandle;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads — the concurrency of the session pool.
    pub workers: usize,
    /// Bound on the number of *queued* (not yet running) sessions; a
    /// submit past it is rejected with `queue_full` (the backpressure
    /// signal — there are no unbounded channels anywhere in the service).
    pub queue_cap: usize,
    /// Where to keep per-session write-ahead journals. `None` disables
    /// journaling (and with it crash-resume).
    pub journal_dir: Option<PathBuf>,
    /// Consult the shared probe cache for fresh (non-resumed) sessions.
    pub probe_cache: bool,
    /// Test hook: simulate a `kill -9` after this many journaled records
    /// (replayed ones included) by panicking the worker *without* writing
    /// a terminal record.
    pub crash_after_records: Option<u64>,
    /// Start with the worker pool paused: sessions queue (and journal)
    /// but nothing runs until [`SessionManager::resume_workers`]. Lets an
    /// operator inspect a resumed queue before it drains, and makes queue
    /// -ordering tests deterministic.
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_cap: 16,
            journal_dir: None,
            probe_cache: true,
            crash_after_records: None,
            start_paused: false,
        }
    }
}

/// Lifecycle state of one session.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Waiting in the priority queue.
    Queued,
    /// A worker is searching.
    Running,
    /// Finished; result available.
    Done(Box<SessionResult>),
    /// Errored (bad spec discovered late, journal I/O failure, replay
    /// divergence, or a searcher panic).
    Failed(String),
    /// Cancelled cooperatively.
    Cancelled,
    /// The simulated-kill test hook fired; the journal is unterminated
    /// and the session will resume on the next manager start.
    Crashed,
}

impl Phase {
    /// Short lowercase name, as reported on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done(_) => "done",
            Phase::Failed(_) => "failed",
            Phase::Cancelled => "cancelled",
            Phase::Crashed => "crashed",
        }
    }

    /// Whether the session can never change state again (within this
    /// manager — a `Crashed` session resumes in the *next* one).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Phase::Queued | Phase::Running)
    }
}

struct SessionState {
    phase: Phase,
    events: Vec<TraceEvent>,
}

/// One submitted search session.
pub struct Session {
    /// Session id (unique per journal directory, monotonically assigned).
    pub id: u64,
    /// The spec it was submitted with.
    pub spec: SubmitSpec,
    /// The resolved scenario.
    pub scenario: Scenario,
    state: Mutex<SessionState>,
    state_cv: Condvar,
    cancel: AtomicBool,
}

impl Session {
    fn new(id: u64, spec: SubmitSpec, scenario: Scenario, phase: Phase) -> Session {
        Session {
            id,
            spec,
            scenario,
            state: Mutex::new(SessionState { phase, events: Vec::new() }),
            state_cv: Condvar::new(),
            cancel: AtomicBool::new(false),
        }
    }

    /// Current lifecycle phase (cloned snapshot).
    pub fn phase(&self) -> Phase {
        self.state.lock().expect("session poisoned").phase.clone()
    }

    /// Block until the session reaches a terminal phase, and return it.
    pub fn wait_terminal(&self) -> Phase {
        let mut st = self.state.lock().expect("session poisoned");
        while !st.phase.is_terminal() {
            st = self.state_cv.wait(st).expect("session poisoned");
        }
        st.phase.clone()
    }

    /// Ask the session to stop. Queued sessions cancel before starting;
    /// running ones cancel at their next trace event (probes are atomic —
    /// cancellation never leaves a half-journaled record).
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
        self.state_cv.notify_all();
    }

    fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Status row for this session.
    pub fn status_line(&self) -> StatusLine {
        StatusLine {
            id: self.id,
            job: self.spec.job.clone(),
            searcher: self.spec.searcher.clone(),
            seed: self.spec.seed,
            priority: self.spec.priority,
            state: self.phase().name().to_string(),
        }
    }

    /// Blocking event tail for watchers: events past `from`, or — once
    /// all events are delivered and the session has ended — the terminal
    /// state name.
    pub fn next_events(&self, from: usize) -> (Vec<TraceEvent>, Option<String>) {
        let mut st = self.state.lock().expect("session poisoned");
        loop {
            if st.events.len() > from {
                return (st.events[from..].to_vec(), None);
            }
            if st.phase.is_terminal() {
                return (Vec::new(), Some(st.phase.name().to_string()));
            }
            st = self.state_cv.wait(st).expect("session poisoned");
        }
    }

    fn push_event(&self, event: TraceEvent) {
        let mut st = self.state.lock().expect("session poisoned");
        st.events.push(event);
        drop(st);
        self.state_cv.notify_all();
    }

    fn set_phase(&self, phase: Phase) {
        let mut st = self.state.lock().expect("session poisoned");
        st.phase = phase;
        drop(st);
        self.state_cv.notify_all();
    }

    fn seed_events(&self, events: Vec<TraceEvent>) {
        self.state.lock().expect("session poisoned").events = events;
    }
}

// ---- panic sentinels -------------------------------------------------

/// Cooperative-cancel payload thrown out of the sink.
struct CancelSignal;
/// Simulated-kill payload thrown by the `crash_after_records` hook.
struct CrashSignal;
/// Resume-verification mismatch.
struct ReplayDivergence(String);
/// Journal append failure mid-search.
struct JournalIo(String);

/// Install (once, process-wide) a panic hook that stays silent for the
/// service's control-flow sentinels and delegates everything else to the
/// previous hook. Worker panics are caught and turned into session
/// states; without this every cancel would spew a backtrace.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<CancelSignal>()
                || p.is::<CrashSignal>()
                || p.is::<ReplayDivergence>()
                || p.is::<JournalIo>()
            {
                return;
            }
            previous(info);
        }));
    });
}

// ---- the verifying / journaling sink ---------------------------------

/// Is this journaled event a probe record (carries an observation the
/// environment produced, and therefore a [`ProvenanceLog`] flag)?
fn is_probe_event(event: &TraceEvent) -> bool {
    matches!(event, TraceEvent::InitProbe { .. } | TraceEvent::Probe { .. })
}

struct SessionSink<'a> {
    session: &'a Session,
    writer: Option<&'a mut JournalWriter>,
    /// Journaled prefix to verify against when resuming: each event with
    /// its provenance (`true` = served by the cache in the original run).
    replay: &'a [(TraceEvent, bool)],
    replay_pos: usize,
    /// Journaled events seen so far (replayed + appended).
    journaled: u64,
    /// Probe provenance, pushed by the environment in probe order.
    provenance: &'a ProvenanceLog,
    crash_after: Option<u64>,
}

impl TraceSink for SessionSink<'_> {
    fn record(&mut self, event: TraceEvent) {
        if self.session.cancel_requested() {
            panic_any(CancelSignal);
        }
        if is_journaled(&event) {
            // Every journaled probe event consumes its provenance flag —
            // on the verify path too, so the queue stays aligned with the
            // probe stream across the prefix/append boundary.
            let cached = is_probe_event(&event) && self.provenance.pop();
            if self.replay_pos < self.replay.len() {
                // Verify the re-emitted event against the journal prefix.
                // String equality is bit equality here: the serde shim's
                // float rendering round-trips every finite f64 exactly.
                let (ref journaled_event, journaled_cached) = self.replay[self.replay_pos];
                let expected = serde_json::to_string(journaled_event)
                    .unwrap_or_else(|e| format!("<unserializable: {e}>"));
                let got = serde_json::to_string(&event)
                    .unwrap_or_else(|e| format!("<unserializable: {e}>"));
                if expected != got {
                    panic_any(ReplayDivergence(format!(
                        "resume divergence at journaled event {}: journal has {expected}, \
                         replay produced {got}",
                        self.replay_pos
                    )));
                }
                if journaled_cached != cached {
                    panic_any(ReplayDivergence(format!(
                        "resume divergence at journaled event {}: journal says cached={}, \
                         replay served cached={}",
                        self.replay_pos, journaled_cached, cached
                    )));
                }
                self.replay_pos += 1;
            } else if let Some(w) = self.writer.as_deref_mut() {
                let seq = self.journaled;
                let record = if cached {
                    JournalRecord::CachedEvent { seq, event: event.clone() }
                } else {
                    JournalRecord::Event { seq, event: event.clone() }
                };
                if let Err(e) = w.append(&record) {
                    panic_any(JournalIo(e.to_string()));
                }
            }
            self.journaled += 1;
        }
        self.session.push_event(event);
        if let Some(n) = self.crash_after {
            if self.journaled >= n {
                panic_any(CrashSignal);
            }
        }
    }
}

// ---- the replaying environment ---------------------------------------

/// The [`ProfilingEnv`] a *resumed* session searches against.
///
/// For the journaled prefix it reproduces exactly what the crashed run's
/// [`CachedEnv`] did: probes journaled as `CachedEvent` are served from
/// the journal (free, and without touching the inner profiler — the
/// original hit never advanced its RNG/clock/billing either), while
/// probes journaled as `Event` are re-run against the profiler, which
/// deterministically re-derives them. Once the prefix is exhausted the
/// session continues cache-free: the live cache's contents are unrelated
/// to what the dead process held, so the deterministic completion never
/// consults it.
struct ReplayEnv<'a> {
    inner: &'a mut dyn ProfilingEnv,
    /// `(observation, cached)` of each journaled probe event, in order.
    prefix: Vec<(Observation, bool)>,
    cursor: usize,
    provenance: &'a ProvenanceLog,
}

impl<'a> ReplayEnv<'a> {
    /// Build from the journaled prefix a resumed session must reproduce.
    fn new(
        inner: &'a mut dyn ProfilingEnv,
        replay: &[(TraceEvent, bool)],
        provenance: &'a ProvenanceLog,
    ) -> Self {
        let prefix = replay
            .iter()
            .filter_map(|(event, cached)| match event {
                TraceEvent::InitProbe { observation, .. }
                | TraceEvent::Probe { observation, .. } => Some((*observation, *cached)),
                _ => None,
            })
            .collect();
        ReplayEnv { inner, prefix, cursor: 0, provenance }
    }

    /// The journaled probe at the cursor, when it is a cache hit replay
    /// must serve for `d`. Panics with [`ReplayDivergence`] if the hit
    /// was recorded for a different deployment — the search has already
    /// forked from the journal and re-probing would fork it silently.
    fn serve_journaled_hit(&mut self, d: &Deployment) -> Option<Observation> {
        let (obs, cached) = *self.prefix.get(self.cursor)?;
        if !cached {
            return None;
        }
        if obs.deployment != *d {
            panic_any(ReplayDivergence(format!(
                "resume divergence at journaled probe {}: journal cached an observation of \
                 {}, replay probed {d}",
                self.cursor, obs.deployment
            )));
        }
        self.cursor += 1;
        self.provenance.push(true);
        Some(obs)
    }

    /// Account a paid probe the inner environment just served.
    fn note_paid(&mut self, ok: bool) {
        if ok {
            if self.cursor < self.prefix.len() {
                self.cursor += 1;
            }
            self.provenance.push(false);
        }
    }
}

impl ProfilingEnv for ReplayEnv<'_> {
    fn space(&self) -> &SearchSpace {
        self.inner.space()
    }

    fn total_samples(&self) -> f64 {
        self.inner.total_samples()
    }

    fn quote(&self, d: &Deployment) -> (SimDuration, Money) {
        self.inner.quote(d)
    }

    fn profile(&mut self, d: &Deployment) -> Result<Observation, ProfileError> {
        if let Some(obs) = self.serve_journaled_hit(d) {
            return Ok(obs);
        }
        let result = self.inner.profile(d);
        self.note_paid(result.is_ok());
        result
    }

    fn profile_batch(&mut self, ds: &[Deployment]) -> Vec<Result<Observation, ProfileError>> {
        // Mirror `CachedEnv::profile_batch`: serve journaled hits from
        // the prefix and forward the rest as ONE batch so the profiler
        // keeps its concurrent-provisioning wall-clock semantics. Slots
        // are matched to prefix entries positionally (journal order is
        // batch order), assuming every batch member settles — the sink's
        // string-for-string verification catches any divergence.
        let mut out: Vec<Option<(Result<Observation, ProfileError>, bool)>> = vec![None; ds.len()];
        let mut miss_idx = Vec::new();
        let mut miss_ds = Vec::new();
        for (i, d) in ds.iter().enumerate() {
            let slot = self.cursor + miss_idx.len();
            let journaled_hit = match self.prefix.get(slot) {
                Some((obs, true)) if obs.deployment == *d => Some(*obs),
                _ => None,
            };
            match journaled_hit {
                Some(obs) => {
                    self.cursor += 1;
                    out[i] = Some((Ok(obs), true));
                }
                None => {
                    miss_idx.push(i);
                    miss_ds.push(*d);
                }
            }
        }
        let fresh = self.inner.profile_batch(&miss_ds);
        for (slot, result) in miss_idx.into_iter().zip(fresh) {
            if result.is_ok() && self.cursor < self.prefix.len() {
                self.cursor += 1;
            }
            out[slot] = Some((result, false));
        }
        // The sink pops provenance per journaled probe event, and the
        // kernel journals batch results in result (ds) order — so the
        // flags must be pushed in that order too, not hits-first.
        out.into_iter()
            .map(|slot| {
                let (result, cached) = slot.expect("every slot filled");
                if result.is_ok() {
                    self.provenance.push(cached);
                }
                result
            })
            .collect()
    }

    fn elapsed(&self) -> SimDuration {
        self.inner.elapsed()
    }

    fn spent(&self) -> Money {
        self.inner.spent()
    }
}

// ---- manager ---------------------------------------------------------

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// True when the bounded queue was full — retry later; false when the
    /// spec itself (or the server's state) is the problem.
    pub queue_full: bool,
    /// Human-readable reason.
    pub reason: String,
}

struct WorkItem {
    session: Arc<Session>,
    writer: Option<JournalWriter>,
    /// `true` for any journal-restored entry — even one whose journal
    /// holds a header only. Resume status must not be inferred from the
    /// replayed-event count: a header-only resume still has to run
    /// cache-free, or a hit in the new process could yield an outcome the
    /// original run could not have produced.
    resumed: bool,
    /// Journaled prefix to replay: each event with its cache provenance.
    resume_events: Vec<(TraceEvent, bool)>,
    priority: u8,
    seq: u64,
}

struct QueueState {
    entries: Vec<WorkItem>,
    next_id: u64,
    seq: u64,
    shutdown: bool,
    paused: bool,
}

struct Inner {
    cfg: ServiceConfig,
    cache: ProbeCache,
    sessions: Mutex<BTreeMap<u64, Arc<Session>>>,
    queue: Mutex<QueueState>,
    work_cv: Condvar,
    started: Mutex<Vec<u64>>,
}

/// The service core: session queue, worker pool, journals, probe cache.
pub struct SessionManager {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SessionManager {
    /// Start a manager: scan the journal directory (if any) for sessions
    /// to restore or resume, then spawn the worker pool.
    ///
    /// # Errors
    /// Journal-directory I/O failure, or a corrupt (non-torn) journal.
    pub fn new(cfg: ServiceConfig) -> std::io::Result<SessionManager> {
        install_quiet_hook();
        assert!(cfg.workers >= 1, "SessionManager: need at least one worker");
        let mut sessions = BTreeMap::new();
        let mut entries = Vec::new();
        let mut next_id = 1u64;
        let mut seq = 0u64;

        if let Some(dir) = &cfg.journal_dir {
            std::fs::create_dir_all(dir)?;
            for (id, path) in list_journals(dir)? {
                let contents = read_journal(&path)?;
                let Some(JournalRecord::Header { spec, scenario, .. }) = contents.header().cloned()
                else {
                    // Header never made it to disk: the submit itself was
                    // torn. Nothing to resume; drop the empty journal.
                    let _ = std::fs::remove_file(&path);
                    continue;
                };
                next_id = next_id.max(id + 1);
                let entries_with_provenance: Vec<(TraceEvent, bool)> = contents
                    .event_entries()
                    .into_iter()
                    .map(|(event, cached)| (event.clone(), cached))
                    .collect();
                let events: Vec<TraceEvent> =
                    entries_with_provenance.iter().map(|(e, _)| e.clone()).collect();
                match contents.terminal() {
                    Some(JournalRecord::Completed { result }) => {
                        let s = Arc::new(Session::new(
                            id,
                            spec,
                            scenario,
                            Phase::Done(Box::new(result.clone())),
                        ));
                        s.seed_events(events);
                        sessions.insert(id, s);
                    }
                    Some(JournalRecord::Cancelled) => {
                        let s = Arc::new(Session::new(id, spec, scenario, Phase::Cancelled));
                        s.seed_events(events);
                        sessions.insert(id, s);
                    }
                    Some(JournalRecord::Failed { error }) => {
                        let s = Arc::new(Session::new(
                            id,
                            spec,
                            scenario,
                            Phase::Failed(error.clone()),
                        ));
                        s.seed_events(events);
                        sessions.insert(id, s);
                    }
                    _ => {
                        // In-flight at the crash: truncate the torn tail
                        // and requeue for deterministic replay.
                        let writer = JournalWriter::open_append(&path, contents.valid_len)?;
                        let session =
                            Arc::new(Session::new(id, spec.clone(), scenario, Phase::Queued));
                        sessions.insert(id, session.clone());
                        entries.push(WorkItem {
                            session,
                            writer: Some(writer),
                            resumed: true,
                            resume_events: entries_with_provenance,
                            priority: spec.priority,
                            seq,
                        });
                        seq += 1;
                    }
                }
            }
        }

        let paused = cfg.start_paused;
        let inner = Arc::new(Inner {
            cfg,
            cache: ProbeCache::new(),
            sessions: Mutex::new(sessions),
            queue: Mutex::new(QueueState { entries, next_id, seq, shutdown: false, paused }),
            work_cv: Condvar::new(),
            started: Mutex::new(Vec::new()),
        });
        let workers = (0..inner.cfg.workers)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(SessionManager { inner, workers: Mutex::new(workers) })
    }

    /// Submit a session.
    ///
    /// # Errors
    /// [`Reject`] with `queue_full: true` when the bounded queue is at
    /// capacity, `false` for invalid specs, journal I/O failure or a
    /// shutting-down manager.
    pub fn submit(&self, spec: SubmitSpec) -> Result<u64, Reject> {
        if let Err(reason) = spec.validate() {
            return Err(Reject { queue_full: false, reason });
        }
        let scenario = spec.scenario().expect("spec validated");

        // Phase 1 — reserve an id under the lock. The journal header's
        // fsync must NOT happen while the queue mutex is held: every
        // concurrent submit and every worker pop would serialize behind
        // the disk, so a hung journal device would stall the whole pool.
        let admit = |q: &QueueState| -> Result<(), Reject> {
            if q.shutdown {
                return Err(Reject { queue_full: false, reason: "server is shutting down".into() });
            }
            if q.entries.len() >= self.inner.cfg.queue_cap {
                return Err(Reject {
                    queue_full: true,
                    reason: format!(
                        "queue full: {} sessions already queued (cap {})",
                        q.entries.len(),
                        self.inner.cfg.queue_cap
                    ),
                });
            }
            Ok(())
        };
        let id = {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            admit(&q)?;
            let id = q.next_id;
            q.next_id += 1;
            id
        };

        // Phase 2 — write-ahead, unlocked: the header must be durable
        // before the session is visible, so a crash between submit and
        // first probe still resumes.
        let journal_path = self.inner.cfg.journal_dir.as_ref().map(|dir| journal_file(dir, id));
        let writer = match &journal_path {
            Some(path) => {
                let journal = (|| {
                    let mut w = JournalWriter::create(path)?;
                    w.append(&JournalRecord::Header {
                        format: JOURNAL_FORMAT,
                        session: id,
                        spec: spec.clone(),
                        scenario,
                    })?;
                    Ok::<_, std::io::Error>(w)
                })();
                match journal {
                    Ok(w) => Some(w),
                    Err(e) => {
                        if let Some(path) = &journal_path {
                            let _ = std::fs::remove_file(path);
                        }
                        return Err(Reject {
                            queue_full: false,
                            reason: format!("journal unavailable: {e}"),
                        });
                    }
                }
            }
            None => None,
        };

        // Phase 3 — re-acquire and enqueue, re-checking admission (the
        // queue may have filled or shut down while we were on disk). A
        // late rejection must not leave a header-only journal behind: the
        // next manager would restore it as a queued session the client
        // was told did not get in.
        let session = Arc::new(Session::new(id, spec.clone(), scenario, Phase::Queued));
        let mut q = self.inner.queue.lock().expect("queue poisoned");
        if let Err(reject) = admit(&q) {
            drop(q);
            if let Some(path) = &journal_path {
                let _ = std::fs::remove_file(path);
            }
            return Err(reject);
        }
        let seq = q.seq;
        q.seq += 1;
        self.inner.sessions.lock().expect("sessions poisoned").insert(id, session.clone());
        q.entries.push(WorkItem {
            session,
            writer,
            resumed: false,
            resume_events: Vec::new(),
            priority: spec.priority,
            seq,
        });
        drop(q);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Look a session up by id.
    pub fn session(&self, id: u64) -> Option<Arc<Session>> {
        self.inner.sessions.lock().expect("sessions poisoned").get(&id).cloned()
    }

    /// Status rows: one session, or every session in id order.
    pub fn status(&self, id: Option<u64>) -> Option<Vec<StatusLine>> {
        let sessions = self.inner.sessions.lock().expect("sessions poisoned");
        match id {
            Some(id) => sessions.get(&id).map(|s| vec![s.status_line()]),
            None => Some(sessions.values().map(|s| s.status_line()).collect()),
        }
    }

    /// Request cancellation. Returns false for an unknown id.
    pub fn cancel(&self, id: u64) -> bool {
        match self.session(id) {
            Some(s) => {
                s.request_cancel();
                self.inner.work_cv.notify_all();
                true
            }
            None => false,
        }
    }

    /// The shared probe cache's `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.cache.stats()
    }

    /// Order in which sessions were picked up by workers (test
    /// observability for the priority queue).
    pub fn started_order(&self) -> Vec<u64> {
        self.inner.started.lock().expect("started poisoned").clone()
    }

    /// Unpause a manager started with
    /// [`ServiceConfig::start_paused`]: the worker pool begins draining
    /// the queue. A no-op when not paused.
    pub fn resume_workers(&self) {
        self.inner.queue.lock().expect("queue poisoned").paused = false;
        self.inner.work_cv.notify_all();
    }

    /// Stop accepting and starting work. Running sessions finish; queued
    /// journaled sessions stay on disk and resume on the next start.
    pub fn shutdown(&self) {
        self.inner.queue.lock().expect("queue poisoned").shutdown = true;
        self.inner.work_cv.notify_all();
    }

    /// [`SessionManager::shutdown`], then join every worker.
    pub fn shutdown_and_wait(&self) {
        self.shutdown();
        let handles: Vec<_> = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shutdown_and_wait();
    }
}

fn pop_best(entries: &mut Vec<WorkItem>) -> Option<WorkItem> {
    let idx = entries
        .iter()
        .enumerate()
        .max_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
        .map(|(i, _)| i)?;
    Some(entries.remove(idx))
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let item = {
            let mut q = inner.queue.lock().expect("queue poisoned");
            loop {
                if q.shutdown {
                    return;
                }
                if !q.paused {
                    if let Some(item) = pop_best(&mut q.entries) {
                        break item;
                    }
                }
                q = inner.work_cv.wait(q).expect("queue poisoned");
            }
        };
        inner.started.lock().expect("started poisoned").push(item.session.id);
        run_session(inner, item);
    }
}

fn run_session(inner: &Arc<Inner>, mut item: WorkItem) {
    let session = item.session.clone();
    if session.cancel_requested() {
        // Cancelled while still queued: terminal record, no search.
        if let Some(w) = item.writer.as_mut() {
            let _ = w.append(&JournalRecord::Cancelled);
        }
        session.set_phase(Phase::Cancelled);
        return;
    }
    session.set_phase(Phase::Running);

    let resuming = item.resumed;
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<SessionResult, String> {
        let spec = &session.spec;
        let job = spec.training_job()?;
        let searcher = searcher_by_name(&spec.searcher, spec.seed)
            .ok_or_else(|| format!("unknown searcher `{}`", spec.searcher))?;
        let mut runner = ExperimentRunner::new(spec.seed).with_max_nodes(spec.max_nodes);
        if let Some(types) = spec.instance_types()? {
            runner = runner.with_types(types);
        }
        let mut profiler = runner.profiler_for(&job);
        let search = {
            let provenance = ProvenanceLog::new();
            // Fresh sessions search through the shared cache; resumed
            // sessions search through the journal replayer, which serves
            // journaled hits itself and never consults the live cache.
            let cache = inner.cfg.probe_cache.then_some(&inner.cache);
            let mut cached_env;
            let mut replay_env;
            let env: &mut dyn ProfilingEnv = if resuming {
                replay_env = ReplayEnv::new(&mut profiler, &item.resume_events, &provenance);
                &mut replay_env
            } else {
                cached_env = CachedEnv::new(&mut profiler, cache, &spec.job, &provenance);
                &mut cached_env
            };
            let mut sink = SessionSink {
                session: &session,
                writer: item.writer.as_mut(),
                replay: &item.resume_events,
                replay_pos: 0,
                journaled: 0,
                provenance: &provenance,
                crash_after: inner.cfg.crash_after_records,
            };
            let search = searcher.search_traced(env, &session.scenario, &mut sink);
            if sink.replay_pos < sink.replay.len() {
                return Err(format!(
                    "resume divergence: replay consumed only {} of {} journaled events",
                    sink.replay_pos,
                    sink.replay.len()
                ));
            }
            search
        };
        let experiment = runner.complete(profiler, search, searcher.name(), &session.scenario);
        Ok(SessionResult::from(&experiment))
    }));

    match outcome {
        Ok(Ok(result)) => {
            let phase = match item.writer.as_mut() {
                Some(w) => match w.append(&JournalRecord::Completed { result: result.clone() }) {
                    Ok(()) => Phase::Done(Box::new(result)),
                    Err(e) => Phase::Failed(format!("result not durable: {e}")),
                },
                None => Phase::Done(Box::new(result)),
            };
            session.set_phase(phase);
        }
        Ok(Err(error)) => {
            if let Some(w) = item.writer.as_mut() {
                let _ = w.append(&JournalRecord::Failed { error: error.clone() });
            }
            session.set_phase(Phase::Failed(error));
        }
        Err(payload) => {
            if payload.is::<CancelSignal>() {
                if let Some(w) = item.writer.as_mut() {
                    let _ = w.append(&JournalRecord::Cancelled);
                }
                session.set_phase(Phase::Cancelled);
            } else if payload.is::<CrashSignal>() {
                // Simulated kill: no terminal record — exactly what a real
                // SIGKILL leaves behind. The next manager resumes it.
                session.set_phase(Phase::Crashed);
            } else {
                let error = if let Some(d) = payload.downcast_ref::<ReplayDivergence>() {
                    d.0.clone()
                } else if let Some(j) = payload.downcast_ref::<JournalIo>() {
                    format!("journal append failed: {}", j.0)
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    format!("searcher panicked: {s}")
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    format!("searcher panicked: {s}")
                } else {
                    "searcher panicked".to_string()
                };
                if let Some(w) = item.writer.as_mut() {
                    let _ = w.append(&JournalRecord::Failed { error: error.clone() });
                }
                session.set_phase(Phase::Failed(error));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd::env::SyntheticEnv;
    use mlcd::prelude::InstanceType;
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn tiny_spec(job: &str, seed: u64) -> SubmitSpec {
        // Small spaces keep these unit tests fast; the integration tests
        // exercise the paper-scale spaces.
        let mut s = SubmitSpec::new(job, "random", seed);
        s.types = Some(vec!["c5.xlarge".into(), "p2.xlarge".into()]);
        s.max_nodes = 8;
        s
    }

    fn manager(cfg: ServiceConfig) -> SessionManager {
        SessionManager::new(cfg).expect("manager starts")
    }

    fn done_result(m: &SessionManager, id: u64) -> SessionResult {
        match m.session(id).expect("session exists").wait_terminal() {
            Phase::Done(r) => *r,
            other => panic!("session {id} ended as {}", other.name()),
        }
    }

    #[test]
    fn runs_a_session_to_done() {
        let m = manager(ServiceConfig { workers: 1, ..Default::default() });
        let id = m.submit(tiny_spec("resnet-cifar10", 3)).unwrap();
        let result = done_result(&m, id);
        assert_eq!(result.searcher, "Random");
        assert!(result.search.n_probes() > 0);
        assert_eq!(m.status(Some(id)).unwrap()[0].state, "done");
    }

    #[test]
    fn rejects_invalid_specs_without_consuming_ids() {
        let m = manager(ServiceConfig::default());
        let r = m.submit(SubmitSpec::new("no-such-job", "random", 1)).unwrap_err();
        assert!(!r.queue_full);
        let id = m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        assert_eq!(id, 1, "rejected submits must not burn session ids");
    }

    #[test]
    fn backpressure_is_typed_and_bounded() {
        // Paused pool: nothing drains, so the single queue slot fills on
        // the first submit and the second must be rejected with the typed
        // queue_full signal (never blocked, never unbounded).
        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 1,
            start_paused: true,
            ..Default::default()
        });
        m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        let r = m.submit(tiny_spec("resnet-cifar10", 2)).unwrap_err();
        assert!(r.queue_full, "rejection must carry the queue_full signal: {}", r.reason);
        // Spec problems are rejections too, but never queue_full.
        let bad = m.submit(SubmitSpec::new("no-such-job", "random", 1)).unwrap_err();
        assert!(!bad.queue_full);
    }

    #[test]
    fn priority_orders_the_queue_fifo_within_priority() {
        // Queue everything while paused, then drain with one worker: the
        // order must be strictly (priority desc, submit order).
        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 16,
            start_paused: true,
            ..Default::default()
        });
        let low_a = m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        let low_b = m.submit(tiny_spec("resnet-cifar10", 2)).unwrap();
        let hi = m.submit(tiny_spec("resnet-cifar10", 3).with_priority(5)).unwrap();
        let mid = m.submit(tiny_spec("resnet-cifar10", 4).with_priority(2)).unwrap();
        m.resume_workers();
        for id in [low_a, low_b, hi, mid] {
            let _ = m.session(id).unwrap().wait_terminal();
        }
        assert_eq!(m.started_order(), vec![hi, mid, low_a, low_b]);
    }

    #[test]
    fn cancel_queued_session_never_runs() {
        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 16,
            start_paused: true,
            ..Default::default()
        });
        let keep = m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        let dropped = m.submit(tiny_spec("resnet-cifar10", 2)).unwrap();
        assert!(m.cancel(dropped));
        m.resume_workers();
        assert!(matches!(m.session(dropped).unwrap().wait_terminal(), Phase::Cancelled));
        assert!(matches!(m.session(keep).unwrap().wait_terminal(), Phase::Done(_)));
        let cancelled = m.session(dropped).unwrap();
        assert_eq!(cancelled.next_events(0).0.len(), 0, "cancelled-in-queue never searched");
        assert!(!m.cancel(999), "unknown ids are reported, not ignored");
    }

    #[test]
    fn same_spec_twice_shares_probes_for_free() {
        let m = manager(ServiceConfig { workers: 1, ..Default::default() });
        let a = m.submit(tiny_spec("resnet-cifar10", 7)).unwrap();
        let b = m.submit(tiny_spec("resnet-cifar10", 7)).unwrap();
        let ra = done_result(&m, a);
        let rb = done_result(&m, b);
        // Identical specs walk the identical trajectory: same deployments
        // probed, same observed speeds, same pick…
        assert_eq!(ra.search.best, rb.search.best);
        assert_eq!(ra.search.steps.len(), rb.search.steps.len());
        for (sa, sb) in ra.search.steps.iter().zip(&rb.search.steps) {
            assert_eq!(sa.observation, sb.observation);
        }
        // …but the later session pays nothing: every probe is a cache hit
        // (that is the service's whole reason to share the cache).
        let (hits, _) = m.cache_stats();
        assert!(hits as usize >= rb.search.steps.len(), "second run must be all hits");
        assert_eq!(rb.search.profile_cost.dollars(), 0.0);
        assert!(ra.search.profile_cost.dollars() > 0.0);
    }

    fn synthetic_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
        let space = SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::P2Xlarge],
            10,
            &TrainingJob::resnet_cifar10(),
            &ThroughputModel::default(),
        );
        SyntheticEnv::new(space, 1e6, |d| 100.0 * d.n as f64)
    }

    fn probe_event(observation: Observation) -> TraceEvent {
        TraceEvent::Probe {
            observation,
            cum_profile_time: SimDuration::ZERO,
            cum_profile_cost: Money::ZERO,
        }
    }

    #[test]
    fn replay_env_serves_journaled_hits_and_reprobes_misses() {
        let d1 = Deployment::new(InstanceType::C5Xlarge, 1);
        let d2 = Deployment::new(InstanceType::C5Xlarge, 2);
        let d3 = Deployment::new(InstanceType::P2Xlarge, 3);

        // What the paid probes look like on the raw environment.
        let mut baseline = synthetic_env();
        let base1 = baseline.profile(&d1).unwrap();
        let base3 = baseline.profile(&d3).unwrap();
        let paid_elapsed = baseline.elapsed();

        // The journaled prefix: d1 paid, d2 a cache hit whose observation
        // (sentinel speed) could never come from this env, d3 paid.
        let hit = Observation {
            deployment: d2,
            speed: 123.456,
            profile_time: SimDuration::ZERO,
            profile_cost: Money::ZERO,
        };
        let prefix = vec![
            (probe_event(base1), false),
            (probe_event(hit), true),
            (probe_event(base3), false),
        ];

        let mut inner = synthetic_env();
        let log = ProvenanceLog::new();
        let mut replay = ReplayEnv::new(&mut inner, &prefix, &log);

        assert_eq!(replay.profile(&d1).unwrap(), base1, "journaled miss is re-probed");
        assert!(!log.pop());
        let served = replay.profile(&d2).unwrap();
        assert_eq!(served, hit, "journaled hit is served from the journal, not the env");
        assert!(log.pop());
        assert_eq!(replay.profile(&d3).unwrap(), base3);
        assert!(!log.pop());
        // Past the prefix the env is a plain delegate: every probe paid.
        let again = replay.profile(&d2).unwrap();
        assert_ne!(again, hit, "suffix probes must come from the env, not the journal");
        assert!(!log.pop());
        // The inner env was charged for exactly the three paid probes —
        // the served hit never touched it.
        let (t2, _) = inner.quote(&d2);
        assert_eq!(inner.elapsed(), paid_elapsed + t2);
    }

    #[test]
    fn replay_env_batches_mix_journaled_hits_and_paid_misses() {
        let d1 = Deployment::new(InstanceType::C5Xlarge, 1);
        let d2 = Deployment::new(InstanceType::C5Xlarge, 2);
        let d3 = Deployment::new(InstanceType::P2Xlarge, 3);

        let mut baseline = synthetic_env();
        let batch = baseline.profile_batch(&[d1, d3]);
        let base1 = *batch[0].as_ref().unwrap();
        let base3 = *batch[1].as_ref().unwrap();

        let hit = Observation {
            deployment: d2,
            speed: 777.0,
            profile_time: SimDuration::ZERO,
            profile_cost: Money::ZERO,
        };
        let prefix = vec![
            (probe_event(base1), false),
            (probe_event(hit), true),
            (probe_event(base3), false),
        ];

        let mut inner = synthetic_env();
        let log = ProvenanceLog::new();
        let mut replay = ReplayEnv::new(&mut inner, &prefix, &log);
        let results = replay.profile_batch(&[d1, d2, d3]);
        assert_eq!(*results[0].as_ref().unwrap(), base1);
        assert_eq!(*results[1].as_ref().unwrap(), hit);
        assert_eq!(*results[2].as_ref().unwrap(), base3);
        // Provenance in batch (ds) order: paid, hit, paid.
        assert!(!log.pop());
        assert!(log.pop());
        assert!(!log.pop());
        // Only the two misses were charged to the inner env; the served
        // hit never touched it.
        let (t1, _) = replay.quote(&d1);
        let (t3, _) = replay.quote(&d3);
        assert_eq!(inner.elapsed(), t1 + t3);
    }

    #[test]
    fn header_only_journal_still_resumes_cache_free() {
        // Crash before the first journaled event: the journal holds a
        // header only. The restored session must STILL count as resumed
        // and run cache-free — inferring resume status from the replayed
        // -event count would let it hit the live cache and produce an
        // outcome the original run could not have.
        let jdir =
            std::env::temp_dir().join(format!("mlcd-session-headeronly-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        std::fs::create_dir_all(&jdir).unwrap();

        let spec = tiny_spec("resnet-cifar10", 11);
        let doomed = manager(ServiceConfig {
            workers: 1,
            journal_dir: Some(jdir.clone()),
            probe_cache: true,
            crash_after_records: Some(0),
            ..Default::default()
        });
        let id = doomed.submit(spec.clone()).unwrap();
        assert!(matches!(doomed.session(id).unwrap().wait_terminal(), Phase::Crashed));
        drop(doomed);

        // Revive paused, and let a fresh same-spec session warm the cache
        // first; only then drain the resumed one.
        let revived = manager(ServiceConfig {
            workers: 1,
            queue_cap: 8,
            journal_dir: Some(jdir.clone()),
            probe_cache: true,
            start_paused: true,
            ..Default::default()
        });
        let warm = revived.submit(spec.with_priority(5)).unwrap();
        revived.resume_workers();
        let warm_result = done_result(&revived, warm);
        let resumed_result = done_result(&revived, id);
        assert_eq!(revived.started_order(), vec![warm, id]);
        assert!(warm_result.search.profile_cost.dollars() > 0.0);
        // Same trajectory, but every probe paid: the resumed session
        // never consulted the cache the warm session just filled.
        assert_eq!(resumed_result.search.digest(), warm_result.search.digest());
        assert!(
            resumed_result.search.profile_cost.dollars() > 0.0,
            "header-only resume must not be served by the live probe cache"
        );
        let _ = std::fs::remove_dir_all(&jdir);
    }

    #[test]
    fn rejected_submit_leaves_no_journal_file() {
        let jdir =
            std::env::temp_dir().join(format!("mlcd-session-rejected-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&jdir);
        std::fs::create_dir_all(&jdir).unwrap();

        let m = manager(ServiceConfig {
            workers: 1,
            queue_cap: 1,
            journal_dir: Some(jdir.clone()),
            start_paused: true,
            ..Default::default()
        });
        let kept = m.submit(tiny_spec("resnet-cifar10", 1)).unwrap();
        let r = m.submit(tiny_spec("resnet-cifar10", 2)).unwrap_err();
        assert!(r.queue_full);
        let journals: Vec<_> = std::fs::read_dir(&jdir).unwrap().collect();
        assert_eq!(
            journals.len(),
            1,
            "a rejected submit must not leave a journal for the next manager to restore"
        );
        m.resume_workers();
        let _ = m.session(kept).unwrap().wait_terminal();
        let _ = std::fs::remove_dir_all(&jdir);
    }

    #[test]
    fn shutdown_drains_current_session_and_stops() {
        let m = manager(ServiceConfig { workers: 1, ..Default::default() });
        let id = m.submit(tiny_spec("resnet-cifar10", 5)).unwrap();
        m.shutdown_and_wait();
        assert!(
            m.session(id).unwrap().phase().is_terminal() || {
                // The worker may not have picked it up before shutdown; then
                // it simply stays queued (journal-less here, so it is lost by
                // design — journaled queues resume instead).
                matches!(m.session(id).unwrap().phase(), Phase::Queued)
            }
        );
        let r = m.submit(tiny_spec("resnet-cifar10", 6)).unwrap_err();
        assert!(r.reason.contains("shutting down"));
    }
}
