//! Shared probe cache.
//!
//! Different sessions often probe the same deployment for the same job —
//! the paper's motivating observation is that probes are *expensive*, so
//! the service keeps a process-wide memo of completed probe observations
//! keyed by `(job, instance type, scale-out, quoted probe length)`. A hit
//! skips the simulated probe entirely and, crucially, **costs nothing**:
//! cache hits add zero to a session's profiling time and spend, so a
//! session that reuses another's probes genuinely planned for cheaper.
//!
//! Correctness stance: with the cache disabled (or with no key
//! collisions) a session is bit-identical to a standalone run — the
//! wrapper delegates every call untouched. Because a hit charges nothing
//! and leaves the inner profiler's RNG/clock/billing state untouched, it
//! is unreproducible after a crash (the cache dies with the process), so
//! every hit's provenance is recorded via [`ProvenanceLog`] and journaled
//! as a `CachedEvent`; resume serves those observations from the journal
//! and bypasses the live cache for everything else.

use crate::sync::lock_or_die;
use mlcd::prelude::{
    Deployment, Money, Observation, ProfileError, ProfilingEnv, SearchSpace, SimDuration,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Cache key: everything that determines a probe's observation
/// distribution across sessions of the *same* job preset. The quoted
/// probe length is part of the key so profiler-config differences can
/// never alias (stored as bits — quotes are deterministic f64s).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Preset job name.
    pub job: String,
    /// Instance-type name.
    pub itype: &'static str,
    /// Scale-out (node count).
    pub n: u32,
    /// Quoted probe duration, seconds, as raw bits.
    pub probe_len_bits: u64,
}

impl CacheKey {
    /// Key for probing `d` for `job` under the environment's quote.
    pub fn new(job: &str, d: &Deployment, quoted_len: SimDuration) -> CacheKey {
        CacheKey {
            job: job.to_string(),
            itype: d.itype.name(),
            n: d.n,
            probe_len_bits: quoted_len.as_secs().to_bits(),
        }
    }
}

/// Default shard count for [`ProbeCache::new`].
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// Deterministic FNV-1a over the key's fields. `std`'s `RandomState`
/// would randomise shard placement per process — harmless for
/// correctness but banned by mlcd-lint's nondet-source stance, and a
/// fixed hash keeps shard behaviour reproducible in tests.
fn shard_hash(key: &CacheKey) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(key.job.as_bytes());
    eat(&[0]);
    eat(key.itype.as_bytes());
    eat(&key.n.to_le_bytes());
    eat(&key.probe_len_bits.to_le_bytes());
    h
}

/// Process-wide memo of probe observations, shared by every session.
///
/// Internally sharded: keys are spread over independent mutexes by a
/// deterministic hash, so thousands of concurrent sessions probing
/// disjoint keys never serialise on one lock. Hit/miss counters are
/// per-shard and summed on read.
#[derive(Debug)]
pub struct ProbeCache {
    shards: Vec<Mutex<CacheState>>,
}

impl Default for ProbeCache {
    fn default() -> Self {
        ProbeCache::with_shards(DEFAULT_CACHE_SHARDS)
    }
}

#[derive(Debug, Default)]
struct CacheState {
    map: BTreeMap<CacheKey, Observation>,
    hits: u64,
    misses: u64,
}

impl ProbeCache {
    /// An empty cache with the default shard count.
    pub fn new() -> ProbeCache {
        ProbeCache::default()
    }

    /// An empty cache with `n` shards (at least 1).
    pub fn with_shards(n: usize) -> ProbeCache {
        ProbeCache { shards: (0..n.max(1)).map(|_| Mutex::new(CacheState::default())).collect() }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<CacheState> {
        &self.shards[(shard_hash(key) % self.shards.len() as u64) as usize]
    }

    /// Look up a completed observation.
    pub fn get(&self, key: &CacheKey) -> Option<Observation> {
        let mut st = lock_or_die(self.shard(key), "probe cache shard");
        match st.map.get(key).copied() {
            Some(obs) => {
                st.hits += 1;
                Some(obs)
            }
            None => {
                st.misses += 1;
                None
            }
        }
    }

    /// Record a completed observation. First write wins — a concurrent
    /// duplicate probe of the same key keeps the earlier entry so later
    /// readers all see one stable value.
    pub fn put(&self, key: CacheKey, obs: Observation) {
        let mut st = lock_or_die(self.shard(&key), "probe cache shard");
        st.map.entry(key).or_insert(obs);
    }

    /// `(hits, misses)` so far, summed across shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), shard| {
            let st = lock_or_die(shard, "probe cache shard");
            (h + st.hits, m + st.misses)
        })
    }

    /// Number of distinct keys held, summed across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| lock_or_die(shard, "probe cache shard").map.len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Grid-cache key: everything that determines a session's candidate
/// grid. The service always searches under the default ground-truth
/// physics, so `(job preset, ordered instance-type list, max scale-out)`
/// pins the enumeration exactly; the type list is order-sensitive
/// because [`SearchSpace::new`] enumerates candidates in type order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GridKey {
    /// Preset job name.
    pub job: String,
    /// Instance-type names in spec order; `None` means "all types".
    pub types: Option<Vec<&'static str>>,
    /// Maximum scale-out.
    pub max_nodes: u32,
}

impl GridKey {
    /// Key for the grid a session with these spec fields enumerates.
    pub fn new(
        job: &str,
        types: Option<&[mlcd::prelude::InstanceType]>,
        max_nodes: u32,
    ) -> GridKey {
        GridKey {
            job: job.to_string(),
            types: types.map(|ts| ts.iter().map(|t| t.name()).collect()),
            max_nodes,
        }
    }
}

fn grid_shard_hash(key: &GridKey) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(key.job.as_bytes());
    eat(&[0]);
    match &key.types {
        None => eat(&[0]),
        Some(ts) => {
            for t in ts {
                eat(&[1]);
                eat(t.as_bytes());
            }
        }
    }
    eat(&key.max_nodes.to_le_bytes());
    h
}

/// Process-wide memo of enumerated candidate grids, shared by every
/// session: concurrent sessions of the same job preset share one grid
/// enumeration (the feasibility filter walks the whole scale-up ×
/// scale-out product per build) instead of re-deriving it each. Sharded
/// like [`ProbeCache`], first write wins, deterministic FNV-1a shard
/// placement. Entries are `Arc`'d so a hit is one map lookup plus a
/// refcount bump.
#[derive(Debug)]
pub struct GridCache {
    shards: Vec<Mutex<GridState>>,
}

#[derive(Debug, Default)]
struct GridState {
    map: BTreeMap<GridKey, std::sync::Arc<SearchSpace>>,
    hits: u64,
    misses: u64,
}

impl Default for GridCache {
    fn default() -> Self {
        GridCache::with_shards(DEFAULT_CACHE_SHARDS)
    }
}

impl GridCache {
    /// An empty cache with the default shard count.
    pub fn new() -> GridCache {
        GridCache::default()
    }

    /// An empty cache with `n` shards (at least 1).
    pub fn with_shards(n: usize) -> GridCache {
        GridCache { shards: (0..n.max(1)).map(|_| Mutex::new(GridState::default())).collect() }
    }

    fn shard(&self, key: &GridKey) -> &Mutex<GridState> {
        &self.shards[(grid_shard_hash(key) % self.shards.len() as u64) as usize]
    }

    /// The grid for `key`, built by `build` on a miss. The build runs
    /// outside the shard lock (it walks the whole candidate product), so
    /// two sessions racing on a cold key may both build; the first
    /// insert wins and both return the same stored grid.
    pub fn get_or_build(
        &self,
        key: GridKey,
        build: impl FnOnce() -> SearchSpace,
    ) -> std::sync::Arc<SearchSpace> {
        {
            let mut st = lock_or_die(self.shard(&key), "grid cache shard");
            if let Some(space) = st.map.get(&key).cloned() {
                st.hits += 1;
                return space;
            }
            st.misses += 1;
        }
        let built = std::sync::Arc::new(build());
        let mut st = lock_or_die(self.shard(&key), "grid cache shard");
        st.map.entry(key).or_insert(built).clone()
    }

    /// `(hits, misses)` so far, summed across shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), shard| {
            let st = lock_or_die(shard, "grid cache shard");
            (h + st.hits, m + st.misses)
        })
    }

    /// Number of distinct grids held, summed across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| lock_or_die(shard, "grid cache shard").map.len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-order provenance of one session's successful probes: `true` when
/// the observation was served by the shared cache (free, and invisible to
/// the inner environment's RNG/clock/billing state), `false` when the
/// inner environment paid for it.
///
/// The environment pushes one flag per `Ok` observation; the session's
/// journaling sink pops one per probe event it journals, so each journal
/// record can carry how its observation was obtained — the information
/// crash-resume needs to replay cache hits it cannot re-derive. Session
/// threads are single-threaded through the search, so a `RefCell` queue
/// suffices.
#[derive(Debug, Default)]
pub struct ProvenanceLog(RefCell<VecDeque<bool>>);

impl ProvenanceLog {
    /// An empty log.
    pub fn new() -> ProvenanceLog {
        ProvenanceLog::default()
    }

    /// Record how the next observation was served.
    pub fn push(&self, cached: bool) {
        self.0.borrow_mut().push_back(cached);
    }

    /// Consume the oldest flag. `false` when the log is empty (an event
    /// that did not come from a probe of this environment).
    pub fn pop(&self) -> bool {
        self.0.borrow_mut().pop_front().unwrap_or(false)
    }
}

/// A [`ProfilingEnv`] wrapper that serves probes from a [`ProbeCache`]
/// when possible. With `cache: None` every method is a pure delegate —
/// the disabled configuration is bit-exactly the unwrapped environment.
/// Either way every successful observation's provenance is pushed onto
/// `provenance` for the journaling sink.
pub struct CachedEnv<'a> {
    inner: &'a mut dyn ProfilingEnv,
    cache: Option<&'a ProbeCache>,
    job: String,
    provenance: &'a ProvenanceLog,
}

impl<'a> CachedEnv<'a> {
    /// Wrap `inner`, consulting `cache` (if given) for probes of `job`.
    pub fn new(
        inner: &'a mut dyn ProfilingEnv,
        cache: Option<&'a ProbeCache>,
        job: &str,
        provenance: &'a ProvenanceLog,
    ) -> Self {
        CachedEnv { inner, cache, job: job.to_string(), provenance }
    }

    fn key_for(&self, d: &Deployment) -> CacheKey {
        let (quoted_len, _) = self.inner.quote(d);
        CacheKey::new(&self.job, d, quoted_len)
    }
}

impl ProfilingEnv for CachedEnv<'_> {
    fn space(&self) -> &SearchSpace {
        self.inner.space()
    }

    fn total_samples(&self) -> f64 {
        self.inner.total_samples()
    }

    fn quote(&self, d: &Deployment) -> (SimDuration, Money) {
        self.inner.quote(d)
    }

    fn profile(&mut self, d: &Deployment) -> Result<Observation, ProfileError> {
        let Some(cache) = self.cache else {
            let result = self.inner.profile(d);
            if result.is_ok() {
                self.provenance.push(false);
            }
            return result;
        };
        let key = self.key_for(d);
        if let Some(obs) = cache.get(&key) {
            self.provenance.push(true);
            return Ok(obs); // free: elapsed()/spent() untouched
        }
        let result = self.inner.profile(d);
        if let Ok(obs) = &result {
            cache.put(key, *obs);
            self.provenance.push(false);
        }
        result
    }

    fn profile_batch(&mut self, ds: &[Deployment]) -> Vec<Result<Observation, ProfileError>> {
        let Some(cache) = self.cache else {
            let results = self.inner.profile_batch(ds);
            for r in &results {
                if r.is_ok() {
                    self.provenance.push(false);
                }
            }
            return results;
        };
        // Serve hits for free; forward the misses as ONE batch so the
        // inner environment keeps its concurrent-provisioning wall-clock
        // semantics (a batch bills the slowest probe, not the sum).
        let mut out: Vec<Option<(Result<Observation, ProfileError>, bool)>> = vec![None; ds.len()];
        let mut miss_idx = Vec::new();
        let mut miss_ds = Vec::new();
        for (i, d) in ds.iter().enumerate() {
            let key = self.key_for(d);
            match cache.get(&key) {
                Some(obs) => out[i] = Some((Ok(obs), true)),
                None => {
                    miss_idx.push(i);
                    miss_ds.push(*d);
                }
            }
        }
        let fresh = self.inner.profile_batch(&miss_ds);
        for (slot, (d, result)) in miss_idx.into_iter().zip(miss_ds.iter().zip(fresh)) {
            if let Ok(obs) = &result {
                cache.put(self.key_for(d), *obs);
            }
            out[slot] = Some((result, false));
        }
        // Provenance flags go out in result order — the same order the
        // kernel records the batch's probe events into the sink.
        out.into_iter()
            .map(|r| {
                let (result, cached) = r.expect("every slot filled");
                if result.is_ok() {
                    self.provenance.push(cached);
                }
                result
            })
            .collect()
    }

    fn elapsed(&self) -> SimDuration {
        self.inner.elapsed()
    }

    fn spent(&self) -> Money {
        self.inner.spent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd::env::SyntheticEnv;
    use mlcd::prelude::InstanceType;
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn env() -> SyntheticEnv<fn(&Deployment) -> f64> {
        let space = SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::P2Xlarge],
            10,
            &TrainingJob::resnet_cifar10(),
            &ThroughputModel::default(),
        );
        SyntheticEnv::new(space, 1e6, |d| 100.0 * d.n as f64)
    }

    #[test]
    fn hits_are_free_and_identical() {
        let cache = ProbeCache::new();
        let log = ProvenanceLog::new();
        let d = Deployment::new(InstanceType::C5Xlarge, 4);

        let mut raw = env();
        let mut wrapped = CachedEnv::new(&mut raw, Some(&cache), "resnet-cifar10", &log);
        let first = wrapped.profile(&d).unwrap();
        let spent_after_miss = wrapped.spent();
        let second = wrapped.profile(&d).unwrap();
        assert_eq!(first, second);
        assert_eq!(wrapped.spent(), spent_after_miss, "hit must cost nothing");
        assert_eq!(cache.stats(), (1, 1));
        assert!(!log.pop(), "first probe was a paid miss");
        assert!(log.pop(), "second probe was a free hit");

        // A different session (fresh env) reuses the observation for free.
        let mut raw2 = env();
        let log2 = ProvenanceLog::new();
        let mut other = CachedEnv::new(&mut raw2, Some(&cache), "resnet-cifar10", &log2);
        let reused = other.profile(&d).unwrap();
        assert_eq!(reused, first);
        assert_eq!(other.spent(), Money::ZERO);
        assert_eq!(other.elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn different_jobs_never_collide() {
        let cache = ProbeCache::new();
        let log = ProvenanceLog::new();
        let d = Deployment::new(InstanceType::C5Xlarge, 2);
        let mut a = env();
        CachedEnv::new(&mut a, Some(&cache), "job-a", &log).profile(&d).unwrap();
        let mut b = env();
        CachedEnv::new(&mut b, Some(&cache), "job-b", &log).profile(&d).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn disabled_cache_is_pure_delegate() {
        let d = Deployment::new(InstanceType::P2Xlarge, 3);
        let mut plain = env();
        let baseline = plain.profile(&d).unwrap();
        let (base_t, base_c) = (plain.elapsed(), plain.spent());

        let mut raw = env();
        let log = ProvenanceLog::new();
        let mut off = CachedEnv::new(&mut raw, None, "resnet-cifar10", &log);
        let got = off.profile(&d).unwrap();
        assert_eq!(got, baseline);
        assert_eq!(off.elapsed(), base_t);
        assert_eq!(off.spent(), base_c);
        assert!(!log.pop(), "cache-off probes are always paid");
        // And a repeat pays again, exactly like the raw env.
        off.profile(&d).unwrap();
        assert_eq!(off.elapsed(), base_t + base_t);
    }

    #[test]
    fn batch_serves_hits_and_forwards_misses() {
        let cache = ProbeCache::new();
        let d1 = Deployment::new(InstanceType::C5Xlarge, 1);
        let d2 = Deployment::new(InstanceType::C5Xlarge, 2);

        let mut warm = env();
        let warm_log = ProvenanceLog::new();
        CachedEnv::new(&mut warm, Some(&cache), "j", &warm_log).profile(&d1).unwrap();

        let mut raw = env();
        let log = ProvenanceLog::new();
        let mut wrapped = CachedEnv::new(&mut raw, Some(&cache), "j", &log);
        let results = wrapped.profile_batch(&[d1, d2]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(results[0].as_ref().unwrap().deployment, d1);
        assert_eq!(results[1].as_ref().unwrap().deployment, d2);
        // Only the miss (d2) was paid for.
        let (t, _) = wrapped.quote(&d2);
        assert_eq!(wrapped.elapsed(), t);
        assert_eq!(cache.len(), 2);
        // Provenance comes out in result order: hit then miss.
        assert!(log.pop());
        assert!(!log.pop());
    }

    #[test]
    fn sharding_is_deterministic_and_stats_aggregate() {
        // The same key must land in the same shard every process run —
        // shard_hash is a fixed FNV-1a, not RandomState.
        let d = Deployment::new(InstanceType::C5Xlarge, 4);
        let key = CacheKey::new("job", &d, SimDuration::from_mins(10.0));
        assert_eq!(shard_hash(&key), shard_hash(&key.clone()));

        // Keys spread across shards; counters sum correctly regardless
        // of which shard served them.
        let cache = ProbeCache::with_shards(4);
        for n in 1..=8u32 {
            let dep = Deployment::new(InstanceType::C5Xlarge, n);
            let k = CacheKey::new("job", &dep, SimDuration::from_mins(10.0));
            assert!(cache.get(&k).is_none());
            cache.put(
                k,
                Observation {
                    deployment: dep,
                    speed: f64::from(n),
                    profile_time: SimDuration::from_mins(10.0),
                    profile_cost: Money::from_dollars(0.03),
                },
            );
        }
        for n in 1..=8u32 {
            let dep = Deployment::new(InstanceType::C5Xlarge, n);
            let k = CacheKey::new("job", &dep, SimDuration::from_mins(10.0));
            assert_eq!(cache.get(&k).unwrap().speed, f64::from(n));
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.stats(), (8, 8));
        // A single-shard cache behaves identically.
        let one = ProbeCache::with_shards(1);
        let k = CacheKey::new("job", &d, SimDuration::from_mins(10.0));
        assert!(one.get(&k).is_none());
        assert_eq!(one.stats(), (0, 1));
    }

    #[test]
    fn grid_cache_shares_one_enumeration() {
        let grids = GridCache::with_shards(4);
        let job = TrainingJob::resnet_cifar10();
        let types = [InstanceType::C5Xlarge, InstanceType::P2Xlarge];
        let build = || SearchSpace::new(&types, 10, &job, &ThroughputModel::default());
        let key = || GridKey::new("resnet-cifar10", Some(&types), 10);

        let first = grids.get_or_build(key(), build);
        let second = grids.get_or_build(key(), build);
        assert!(std::sync::Arc::ptr_eq(&first, &second), "hit must reuse the stored grid");
        assert_eq!(grids.stats(), (1, 1));
        assert_eq!(grids.len(), 1);
        assert_eq!(first.candidates(), build().candidates());
    }

    #[test]
    fn grid_keys_are_order_sensitive_and_scope_all_fields() {
        let grids = GridCache::new();
        let job = TrainingJob::resnet_cifar10();
        let fwd = [InstanceType::C5Xlarge, InstanceType::P2Xlarge];
        let rev = [InstanceType::P2Xlarge, InstanceType::C5Xlarge];
        grids.get_or_build(GridKey::new("j", Some(&fwd), 10), || {
            SearchSpace::new(&fwd, 10, &job, &ThroughputModel::default())
        });
        grids.get_or_build(GridKey::new("j", Some(&rev), 10), || {
            SearchSpace::new(&rev, 10, &job, &ThroughputModel::default())
        });
        grids.get_or_build(GridKey::new("j", Some(&fwd), 9), || {
            SearchSpace::new(&fwd, 9, &job, &ThroughputModel::default())
        });
        grids.get_or_build(GridKey::new("k", Some(&fwd), 10), || {
            SearchSpace::new(&fwd, 10, &job, &ThroughputModel::default())
        });
        grids.get_or_build(GridKey::new("j", None, 10), || {
            SearchSpace::new(&fwd, 10, &job, &ThroughputModel::default())
        });
        assert_eq!(grids.len(), 5, "every field of the key must scope the entry");
        assert_eq!(grids.stats(), (0, 5));
    }

    #[test]
    fn first_write_wins_on_duplicate_put() {
        let cache = ProbeCache::new();
        let d = Deployment::new(InstanceType::C5Xlarge, 1);
        let key = || CacheKey::new("j", &d, SimDuration::from_mins(10.0));
        let obs = |speed| Observation {
            deployment: d,
            speed,
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.03),
        };
        cache.put(key(), obs(100.0));
        cache.put(key(), obs(999.0));
        assert_eq!(cache.get(&key()).unwrap().speed, 100.0);
    }
}
