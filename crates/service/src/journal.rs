//! Write-ahead session journals.
//!
//! Each session appends one JSON record per line to its own
//! `session-{id:08}.journal` file. Every append is flushed **and**
//! fsync'd before the probe result is acted on, so after a crash the
//! journal is a faithful prefix of the session's deterministic event
//! stream — possibly plus one torn trailing line, which the reader
//! detects and the writer truncates away before resuming.
//!
//! Grammar (one record per line, externally tagged):
//!
//! ```text
//! journal   := header record*
//! header    := {"Header": {format, session, spec, scenario}}
//! record    := {"Event": {seq, event}}         # journaled TraceEvent
//!            | {"CachedEvent": {seq, event}}    # probe served by the shared cache
//!            | {"Completed": {result}}          # terminal: SessionResult
//!            | "Cancelled"                      # terminal
//!            | {"Failed": {error}}              # terminal
//! ```
//!
//! Only the deterministic spine of the trace is journaled (`InitProbe`,
//! `Probe`, `IncumbentChanged`, `Stopped`); advisory events such as
//! candidate scoring are derived state and would only bloat the log.
//!
//! `CachedEvent` records probe provenance: its observation came from the
//! shared [`crate::cache::ProbeCache`], was charged nothing, and advanced
//! none of the session profiler's internal state. Replay cannot re-derive
//! such an observation (the cache dies with the process and the profiler's
//! RNG stream never saw the probe), so resume serves it straight from the
//! journal — the journal, not the cache, is the authority on what
//! happened. Format 2 added this variant; it is a strict superset of
//! format 1, so readers accept both.

use crate::proto::{SessionResult, SubmitSpec};
use mlcd::prelude::Scenario;
use mlcd::search::TraceEvent;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Version tag of the journal grammar above.
pub const JOURNAL_FORMAT: u32 = 2;

/// One line of a session journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// First line: identifies the session and everything needed to replay
    /// it deterministically.
    Header {
        /// Grammar version ([`JOURNAL_FORMAT`]).
        format: u32,
        /// Session id (also in the file name).
        session: u64,
        /// The submitted spec — job, searcher, seed, scenario parameters.
        spec: SubmitSpec,
        /// The resolved scenario (redundant with `spec`, kept so a journal
        /// is self-describing without re-deriving).
        scenario: Scenario,
    },
    /// One journaled trace event.
    Event {
        /// 0-based position in the journaled event stream.
        seq: u64,
        /// The event.
        event: TraceEvent,
    },
    /// One journaled probe event whose observation was served by the
    /// shared probe cache: free, and invisible to the session profiler's
    /// internal state. Resume must serve it from this record rather than
    /// re-probe.
    CachedEvent {
        /// 0-based position in the journaled event stream (shared
        /// numbering with [`JournalRecord::Event`]).
        seq: u64,
        /// The event.
        event: TraceEvent,
    },
    /// Terminal record of a session that finished normally.
    Completed {
        /// The full result, as served by the `result` request.
        result: SessionResult,
    },
    /// Terminal record of a cancelled session.
    Cancelled,
    /// Terminal record of a session that failed.
    Failed {
        /// Why.
        error: String,
    },
}

impl JournalRecord {
    /// Whether this record ends a session.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JournalRecord::Completed { .. }
                | JournalRecord::Cancelled
                | JournalRecord::Failed { .. }
        )
    }
}

/// Is this `TraceEvent` part of the journaled deterministic spine?
pub fn is_journaled(event: &TraceEvent) -> bool {
    matches!(
        event,
        TraceEvent::InitProbe { .. }
            | TraceEvent::Probe { .. }
            | TraceEvent::IncumbentChanged { .. }
            | TraceEvent::Stopped { .. }
    )
}

/// Journal file name for a session id.
pub fn journal_file(dir: &Path, session: u64) -> PathBuf {
    dir.join(format!("session-{session:08}.journal"))
}

/// Parse a session id back out of a journal file name.
pub fn session_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("session-")?.strip_suffix(".journal")?;
    rest.parse().ok()
}

/// Append-only, fsync-per-record journal writer.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Create a fresh journal (truncating any stale file of the same id).
    pub fn create(path: &Path) -> std::io::Result<JournalWriter> {
        Ok(JournalWriter { file: File::create(path)? })
    }

    /// Reopen an existing journal for appending, first truncating it to
    /// `valid_len` to drop a torn trailing line left by a crash.
    pub fn open_append(path: &Path, valid_len: u64) -> std::io::Result<JournalWriter> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut w = JournalWriter { file };
        w.file.seek(SeekFrom::End(0))?;
        Ok(w)
    }

    /// Append one record as a line and fsync it to disk. On return the
    /// record is durable — this is the write-ahead guarantee the resume
    /// path leans on.
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// A journal read back from disk.
#[derive(Debug)]
pub struct JournalContents {
    /// Every complete, well-formed record, in order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the well-formed prefix; anything past it is a torn
    /// tail to truncate before appending.
    pub valid_len: u64,
}

impl JournalContents {
    /// The header, if the journal has one.
    pub fn header(&self) -> Option<&JournalRecord> {
        match self.records.first() {
            Some(h @ JournalRecord::Header { .. }) => Some(h),
            _ => None,
        }
    }

    /// The journaled events (in order), without their envelopes.
    pub fn events(&self) -> Vec<&TraceEvent> {
        self.event_entries().into_iter().map(|(e, _)| e).collect()
    }

    /// The journaled events (in order) with their provenance: `true` when
    /// the record is a [`JournalRecord::CachedEvent`] — an observation the
    /// shared cache served for free, which replay must serve from the
    /// journal rather than re-probe.
    pub fn event_entries(&self) -> Vec<(&TraceEvent, bool)> {
        self.records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Event { event, .. } => Some((event, false)),
                JournalRecord::CachedEvent { event, .. } => Some((event, true)),
                _ => None,
            })
            .collect()
    }

    /// The terminal record, if the session reached one.
    pub fn terminal(&self) -> Option<&JournalRecord> {
        self.records.last().filter(|r| r.is_terminal())
    }
}

/// Read a journal, tolerating a torn trailing line.
///
/// A record that fails to parse is corruption and errors out — unless it
/// is the final line *and* lacks its terminating newline. Each append is
/// one `write_all` of `line + '\n'`, so a crash can only tear the tail to
/// a proper prefix that never includes the newline; a newline-terminated
/// line that still fails to parse was written whole and indicates real
/// corruption (bit rot, manual edit), which is surfaced exactly like
/// mid-file corruption instead of being silently discarded.
///
/// # Errors
/// I/O failure, or a malformed newline-terminated record anywhere in the
/// file.
pub fn read_journal(path: &Path) -> std::io::Result<JournalContents> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;

    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn tail: no terminating newline
        };
        let line = &bytes[offset..offset + nl];
        let parsed = std::str::from_utf8(line)
            .ok()
            .and_then(|s| serde_json::from_str::<JournalRecord>(s).ok());
        match parsed {
            Some(rec) => {
                records.push(rec);
                offset += nl + 1;
                valid_len = offset as u64;
            }
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "corrupt journal record at byte {offset} of {} \
                         (newline-terminated, so not a torn tail)",
                        path.display()
                    ),
                ));
            }
        }
    }
    Ok(JournalContents { records, valid_len })
}

/// All journal files in a directory, sorted by session id.
///
/// # Errors
/// I/O failure listing the directory.
pub fn list_journals(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(id) = session_of(&path) {
            found.push((id, path));
        }
    }
    found.sort();
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd::prelude::{Deployment, InstanceType, Money, Observation, SimDuration};

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mlcd-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn probe(seq: u64) -> JournalRecord {
        JournalRecord::Event {
            seq,
            event: TraceEvent::Probe {
                observation: Observation {
                    deployment: Deployment::new(InstanceType::C5Xlarge, 2),
                    speed: 123.5,
                    profile_time: SimDuration::from_secs(60.0),
                    profile_cost: Money::from_dollars(0.25),
                },
                cum_profile_time: SimDuration::from_secs(60.0),
                cum_profile_cost: Money::from_dollars(0.25),
            },
        }
    }

    fn header() -> JournalRecord {
        JournalRecord::Header {
            format: JOURNAL_FORMAT,
            session: 3,
            spec: SubmitSpec::new("resnet-cifar10", "heterbo", 1),
            scenario: Scenario::FastestUnlimited,
        }
    }

    #[test]
    fn round_trips_records_and_reads_them_back() {
        let d = dir("roundtrip");
        let path = journal_file(&d, 3);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&header()).unwrap();
        w.append(&probe(0)).unwrap();
        w.append(&JournalRecord::Cancelled).unwrap();
        drop(w);

        let back = read_journal(&path).unwrap();
        assert_eq!(back.records.len(), 3);
        assert!(back.header().is_some());
        assert_eq!(back.events().len(), 1);
        assert!(matches!(back.terminal(), Some(JournalRecord::Cancelled)));
        assert_eq!(back.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let d = dir("torn");
        let path = journal_file(&d, 9);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&header()).unwrap();
        w.append(&probe(0)).unwrap();
        drop(w);
        let full = std::fs::metadata(&path).unwrap().len();

        // Simulate a crash mid-append: write half of a record, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"Event\":{\"seq\":1,\"ev").unwrap();
        }
        let back = read_journal(&path).unwrap();
        assert_eq!(back.records.len(), 2, "torn tail must not parse");
        assert_eq!(back.valid_len, full);

        // Reopening truncates the tail; the next append lands cleanly.
        let mut w = JournalWriter::open_append(&path, back.valid_len).unwrap();
        w.append(&probe(1)).unwrap();
        drop(w);
        let back = read_journal(&path).unwrap();
        assert_eq!(back.records.len(), 3);
        assert_eq!(back.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_complete_line_midfile_is_corruption() {
        let d = dir("corrupt");
        let path = journal_file(&d, 1);
        std::fs::write(&path, "not json\n\"Cancelled\"\n").unwrap();
        assert!(read_journal(&path).is_err());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn newline_terminated_corrupt_final_line_is_corruption_not_torn() {
        // A crash tears an append to a prefix WITHOUT the newline; a
        // complete-but-unparsable last line was written whole and must be
        // surfaced, not silently truncated away.
        let d = dir("corrupt-tail");
        let path = journal_file(&d, 2);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&header()).unwrap();
        drop(w);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"Event\":{\"seq\":0,\"ev\n").unwrap();
        }
        let err = read_journal(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn cached_events_round_trip_with_provenance() {
        let d = dir("cached");
        let path = journal_file(&d, 4);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&header()).unwrap();
        w.append(&probe(0)).unwrap();
        let JournalRecord::Event { event, .. } = probe(1) else { unreachable!() };
        w.append(&JournalRecord::CachedEvent { seq: 1, event }).unwrap();
        w.append(&probe(2)).unwrap();
        drop(w);

        let back = read_journal(&path).unwrap();
        assert_eq!(back.events().len(), 3, "cached events are part of the spine");
        let flags: Vec<bool> = back.event_entries().iter().map(|(_, c)| *c).collect();
        assert_eq!(flags, vec![false, true, false]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn file_names_round_trip_session_ids() {
        let d = PathBuf::from("/tmp/j");
        let p = journal_file(&d, 42);
        assert_eq!(p.file_name().unwrap().to_str().unwrap(), "session-00000042.journal");
        assert_eq!(session_of(&p), Some(42));
        assert_eq!(session_of(Path::new("/tmp/j/other.txt")), None);
    }
}
