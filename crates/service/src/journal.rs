//! Write-ahead session journals, with group commit.
//!
//! Each session appends one JSON record per line to its own
//! `session-{id:08}.journal` file. Every record the service *acts on*
//! is durable before the action happens, so after a crash the journal
//! is a faithful prefix of the session's deterministic event stream —
//! possibly plus one torn trailing line, which the reader detects and
//! the writer truncates away before resuming.
//!
//! # Durability paths
//!
//! Two write paths provide that guarantee:
//!
//! * **Direct** ([`SessionJournal`] without a committer): one
//!   `write_all` + `fsync` per record on the session's own file. Simple,
//!   and the baseline the saturation benchmark measures against.
//! * **Group commit** ([`GroupCommitter`]): sessions enqueue pending
//!   appends; a single commit thread drains whatever is pending into one
//!   `write_all` + one `fsync` of a shared `commit.log`, then
//!   materialises the records into the per-session files *without*
//!   fsync (the page cache survives a process kill; the fsync'd log is
//!   the durability authority), and only then acks the waiting sessions.
//!   The batch window is natural: while one fsync is in flight, every
//!   arriving append queues behind it and ships in the next group. No
//!   wall clock is involved anywhere on this path.
//!
//!   Only acted-on records wait for their group: the header (its ack
//!   backs the `Submitted` reply) and the terminal record (its ack backs
//!   the reported result). Interior trace events are *pipelined* — the
//!   session handle buffers them and ships the batch with its next
//!   blocking append, so they ride the same ordered queue and group
//!   fsyncs without the searcher blocking on them (or paying the queue
//!   per event). Losing a suffix of them in a crash is indistinguishable
//!   from crashing moments earlier: replay regenerates the identical
//!   events from the header. See [`SessionJournal::append`] for the
//!   failure contract.
//!
//! On startup [`reconcile_commit_log`] replays any commit-log suffix the
//! per-session files never received (a kill can land between the log
//! fsync and the file writes), fsyncs the touched files and truncates
//! the log — after which the per-session files are exactly the durable
//! prefix and the existing per-file recovery logic applies unchanged.
//! The log is also truncated online whenever it grows past a byte
//! threshold, after fsyncing every file dirtied since the last
//! checkpoint.
//!
//! Grammar (one record per line, externally tagged):
//!
//! ```text
//! journal   := header record*
//! header    := {"Header": {format, session, spec, scenario}}
//! record    := {"Event": {seq, event}}         # journaled TraceEvent
//!            | {"CachedEvent": {seq, event}}    # probe served by the shared cache
//!            | {"Completed": {result}}          # terminal: SessionResult
//!            | "Cancelled"                      # terminal
//!            | {"Failed": {error}}              # terminal
//! ```
//!
//! Only the deterministic spine of the trace is journaled (`InitProbe`,
//! `Probe`, `IncumbentChanged`, `Stopped`); advisory events such as
//! candidate scoring are derived state and would only bloat the log.
//!
//! `CachedEvent` records probe provenance: its observation came from the
//! shared [`crate::cache::ProbeCache`], was charged nothing, and advanced
//! none of the session profiler's internal state. Replay cannot re-derive
//! such an observation (the cache dies with the process and the profiler's
//! RNG stream never saw the probe), so resume serves it straight from the
//! journal — the journal, not the cache, is the authority on what
//! happened. Format 2 added this variant; it is a strict superset of
//! format 1, so readers accept both.

use crate::proto::{SessionResult, SubmitSpec};
use crate::sync::{lock_or_die, wait_or_die};
use mlcd::prelude::Scenario;
use mlcd::search::TraceEvent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Version tag of the journal grammar above.
pub const JOURNAL_FORMAT: u32 = 2;

/// One line of a session journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// First line: identifies the session and everything needed to replay
    /// it deterministically.
    Header {
        /// Grammar version ([`JOURNAL_FORMAT`]).
        format: u32,
        /// Session id (also in the file name).
        session: u64,
        /// The submitted spec — job, searcher, seed, scenario parameters.
        spec: SubmitSpec,
        /// The resolved scenario (redundant with `spec`, kept so a journal
        /// is self-describing without re-deriving).
        scenario: Scenario,
    },
    /// One journaled trace event.
    Event {
        /// 0-based position in the journaled event stream.
        seq: u64,
        /// The event.
        event: TraceEvent,
    },
    /// One journaled probe event whose observation was served by the
    /// shared probe cache: free, and invisible to the session profiler's
    /// internal state. Resume must serve it from this record rather than
    /// re-probe.
    CachedEvent {
        /// 0-based position in the journaled event stream (shared
        /// numbering with [`JournalRecord::Event`]).
        seq: u64,
        /// The event.
        event: TraceEvent,
    },
    /// Terminal record of a session that finished normally.
    Completed {
        /// The full result, as served by the `result` request.
        result: SessionResult,
    },
    /// Terminal record of a cancelled session.
    Cancelled,
    /// Terminal record of a session that failed.
    Failed {
        /// Why.
        error: String,
    },
}

impl JournalRecord {
    /// Whether this record ends a session.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JournalRecord::Completed { .. }
                | JournalRecord::Cancelled
                | JournalRecord::Failed { .. }
        )
    }
}

/// Is this `TraceEvent` part of the journaled deterministic spine?
pub fn is_journaled(event: &TraceEvent) -> bool {
    matches!(
        event,
        TraceEvent::InitProbe { .. }
            | TraceEvent::Probe { .. }
            | TraceEvent::IncumbentChanged { .. }
            | TraceEvent::Stopped { .. }
    )
}

/// Journal file name for a session id.
pub fn journal_file(dir: &Path, session: u64) -> PathBuf {
    dir.join(format!("session-{session:08}.journal"))
}

/// Parse a session id back out of a journal file name.
pub fn session_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("session-")?.strip_suffix(".journal")?;
    rest.parse().ok()
}

/// Append-only, fsync-per-record journal writer.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Create a fresh journal (truncating any stale file of the same id).
    pub fn create(path: &Path) -> std::io::Result<JournalWriter> {
        Ok(JournalWriter { file: File::create(path)? })
    }

    /// Reopen an existing journal for appending, first truncating it to
    /// `valid_len` to drop a torn trailing line left by a crash.
    pub fn open_append(path: &Path, valid_len: u64) -> std::io::Result<JournalWriter> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut w = JournalWriter { file };
        w.file.seek(SeekFrom::End(0))?;
        Ok(w)
    }

    /// Append one record as a line and fsync it to disk. On return the
    /// record is durable — this is the write-ahead guarantee the resume
    /// path leans on.
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

// ---- group commit ----------------------------------------------------

/// File name of the shared group-commit log inside a journal directory.
pub const COMMIT_LOG_FILE: &str = "commit.log";

/// Path of the shared group-commit log for a journal directory.
pub fn commit_log_file(dir: &Path) -> PathBuf {
    dir.join(COMMIT_LOG_FILE)
}

/// One line of the shared commit log. `Append` carries the session
/// journal record it stands for plus the record's 0-based position in
/// that session's file, so recovery can detect (and refuse) gaps.
/// `Drop` is a tombstone: the session's journal file was deliberately
/// deleted after its header became durable (a late-rejected submit) and
/// must not be resurrected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommitLogEntry {
    /// A record appended to one session's journal.
    Append {
        /// Session id.
        session: u64,
        /// 0-based record index in the session file (the header is 0).
        index: u64,
        /// The record itself.
        record: JournalRecord,
    },
    /// The session's journal file was intentionally deleted.
    Drop {
        /// Session id.
        session: u64,
    },
}

/// Where the commit thread simulates a kill, for crash-injection tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitCrashPoint {
    /// After writing the group to the commit log but before its fsync:
    /// power loss would leave nothing of the group durable, so the log
    /// is rolled back to its pre-group length and every waiter fails.
    BeforeFsync,
    /// After the log fsync but before the per-session file writes and
    /// acks: the group is durable but no session acted on it — exactly
    /// the state [`reconcile_commit_log`] exists to repair.
    AfterFsync,
}

/// Why an append through the group committer did not become durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendError {
    /// I/O failure; the session should fail loudly.
    Io(String),
    /// The committer simulated a kill (crash-injection); the session
    /// must end as crashed, with no terminal record.
    Crashed,
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::Io(e) => write!(f, "{e}"),
            AppendError::Crashed => write!(f, "journal committer crashed"),
        }
    }
}

/// An open per-session journal file, shared between the session (which
/// owns the [`SessionJournal`] handle) and the commit thread (which
/// materialises durable records into it).
#[derive(Debug)]
pub struct SessionFile {
    inner: Mutex<FileInner>,
}

/// Handle plus sticky failure behind *one* mutex, so checking `broken`
/// and writing are a single critical section — no second lock can be
/// caught live across the file write (lint rule R6 flags exactly that
/// shape; the mutex-guarded `File` serializing its own I/O is the
/// sanctioned one).
#[derive(Debug)]
struct FileInner {
    file: File,
    /// First write failure, sticky: once a record could not be
    /// materialised the file has a gap, so every later write (and the
    /// session's next blocking append) must fail rather than leave a
    /// hole in the record stream.
    broken: Option<String>,
}

impl SessionFile {
    fn new(file: File) -> SessionFile {
        SessionFile { inner: Mutex::new(FileInner { file, broken: None }) }
    }

    /// The sticky failure, if any write to this file ever failed.
    fn broken(&self) -> Option<String> {
        lock_or_die(&self.inner, "session file").broken.clone()
    }

    fn write_line(&self, line: &str) -> Result<(), String> {
        let mut st = lock_or_die(&self.inner, "session file");
        if let Some(e) = &st.broken {
            return Err(e.clone());
        }
        match st.file.write_all(line.as_bytes()) {
            Ok(()) => Ok(()),
            Err(e) => {
                st.broken = Some(e.to_string());
                Err(e.to_string())
            }
        }
    }

    fn write_line_synced(&self, line: &str) -> std::io::Result<()> {
        let mut st = lock_or_die(&self.inner, "session file");
        st.file.write_all(line.as_bytes())?;
        st.file.sync_data()
    }

    fn sync(&self) -> std::io::Result<()> {
        lock_or_die(&self.inner, "session file").file.sync_data()
    }
}

/// One append handed to the commit thread. `ticket` is `None` for
/// pipelined appends nobody blocks on (interior trace events). A single
/// `PendingAppend` may carry several records of one session: the session
/// handle buffers its pipelined records and ships them with the next
/// blocking append, so the queue is paid per *batch*, not per record —
/// `entry_line`/`record_line` are then concatenations of whole lines, in
/// order, and `nrecords` counts them.
struct PendingAppend {
    /// Target session file; `None` for tombstone-only entries.
    file: Option<Arc<SessionFile>>,
    /// Serialized [`CommitLogEntry`] line(s) (newline-terminated).
    entry_line: String,
    /// Serialized [`JournalRecord`] line(s) for the session file.
    record_line: String,
    /// How many records `entry_line` holds.
    nrecords: u64,
    waiter: Option<Waiter>,
}

/// Who learns that a pending append became durable (or failed): a
/// [`Ticket`] a blocked thread is waiting on, or a completion callback
/// the commit thread runs itself — the mechanism behind fully
/// asynchronous terminal records, where the *action* taken on
/// durability (publishing the session's terminal phase) rides the ack
/// path instead of parking a worker thread for the fsync.
enum Waiter {
    Ticket(Arc<Ticket>),
    Callback(Box<dyn FnOnce(Result<(), AppendError>) + Send>),
}

impl Waiter {
    fn complete(self, outcome: Result<(), AppendError>) {
        match self {
            Waiter::Ticket(t) => t.complete(outcome),
            Waiter::Callback(f) => f(outcome),
        }
    }
}

/// Completion slot a submitting session blocks on.
struct Ticket {
    done: Mutex<Option<Result<(), AppendError>>>,
    cv: Condvar,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket { done: Mutex::new(None), cv: Condvar::new() }
    }

    fn complete(&self, outcome: Result<(), AppendError>) {
        *lock_or_die(&self.done, "ticket") = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<(), AppendError> {
        let mut slot = lock_or_die(&self.done, "ticket");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = wait_or_die(&self.cv, slot, "ticket");
        }
    }
}

/// Why the commit thread is gone for good.
enum DeadReason {
    /// Simulated kill (crash-injection hook).
    Crashed,
    /// Real I/O failure on the shared log.
    Broken(String),
}

struct CommitQueue {
    pending: Vec<PendingAppend>,
    shutdown: bool,
    dead: Option<DeadReason>,
}

struct CommitShared {
    queue: Mutex<CommitQueue>,
    work_cv: Condvar,
    groups: AtomicU64,
    records: AtomicU64,
    checkpoints: AtomicU64,
}

impl std::fmt::Debug for CommitShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitShared")
            .field("groups", &self.groups.load(Ordering::Relaxed))
            .field("records", &self.records.load(Ordering::Relaxed))
            .field("checkpoints", &self.checkpoints.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl CommitShared {
    /// Queue one pre-serialized append with an optional [`Waiter`] to
    /// notify at its covering fsync, returning as soon as it is queued.
    /// Unwaited appends still keep their order, and a later waited
    /// append of the same session cannot succeed past a failure of an
    /// earlier one (the session file's sticky error sees to that). On
    /// the fail-fast path (committer dead or shut down) the waiter is
    /// completed with the same error this returns — whoever holds a
    /// waiter hears its outcome exactly once, queued or not.
    fn enqueue(
        &self,
        file: Option<Arc<SessionFile>>,
        entry_line: String,
        record_line: String,
        nrecords: u64,
        mut waiter: Option<Waiter>,
    ) -> Result<(), AppendError> {
        let (refused, was_idle) = {
            let mut q = lock_or_die(&self.queue, "commit queue");
            let refused = match &q.dead {
                Some(DeadReason::Crashed) => Some(AppendError::Crashed),
                Some(DeadReason::Broken(e)) => {
                    Some(AppendError::Io(format!("commit log broken: {e}")))
                }
                None if q.shutdown => {
                    Some(AppendError::Io("journal committer is shut down".into()))
                }
                None => {
                    q.pending.push(PendingAppend {
                        file,
                        entry_line,
                        record_line,
                        nrecords,
                        waiter: waiter.take(),
                    });
                    None
                }
            };
            (refused, q.pending.len() == 1)
        };
        match refused {
            None => {
                // The committer rechecks the queue before sleeping, so
                // only the append that makes it non-empty can find it
                // asleep.
                if was_idle {
                    self.work_cv.notify_one();
                }
                Ok(())
            }
            Some(e) => {
                if let Some(w) = waiter {
                    w.complete(Err(e.clone()));
                }
                Err(e)
            }
        }
    }

    /// [`CommitShared::enqueue`], then block until the commit thread has
    /// made the append durable (and written it to the session file).
    fn enqueue_wait(
        &self,
        file: Option<Arc<SessionFile>>,
        entry_line: String,
        record_line: String,
        nrecords: u64,
    ) -> Result<(), AppendError> {
        let ticket = Arc::new(Ticket::new());
        self.enqueue(
            file,
            entry_line,
            record_line,
            nrecords,
            Some(Waiter::Ticket(ticket.clone())),
        )?;
        ticket.wait()
    }
}

/// Cloneable handle sessions append through; see [`GroupCommitter`].
#[derive(Clone)]
pub struct CommitHandle(Arc<CommitShared>);

impl std::fmt::Debug for CommitHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitHandle").finish_non_exhaustive()
    }
}

impl CommitHandle {
    /// Durably record that `session`'s journal file was deliberately
    /// deleted, so recovery never resurrects it from the commit log.
    ///
    /// # Errors
    /// [`AppendError`] if the committer is dead or shut down.
    pub fn append_drop(&self, session: u64) -> Result<(), AppendError> {
        let mut entry_line = serde_json::to_string(&CommitLogEntry::Drop { session })
            .map_err(|e| AppendError::Io(format!("unserializable commit entry: {e}")))?;
        entry_line.push('\n');
        self.0.enqueue_wait(None, entry_line, String::new(), 1)
    }
}

/// Counters describing the committer's work so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Groups committed (fsyncs of the shared log).
    pub groups: u64,
    /// Records made durable across all groups.
    pub records: u64,
    /// Times the shared log was checkpoint-truncated.
    pub checkpoints: u64,
}

/// The group-commit thread: batches pending appends from many sessions
/// into one write + one fsync of the shared `commit.log` per group.
///
/// Durability ordering: (1) one `write_all` of every entry line per
/// group to the log, (2) at the next flush boundary one `fsync` — every
/// group staged since the last flush becomes durable at once, and a
/// kill can only tear the *final line* of the log (each group is a
/// single `write_all`, which tears to a prefix), (3) unfsync'd writes
/// to the per-session files, (4) ack every waiter. A flush happens as
/// soon as a group carries a waiter, when the log crosses the
/// checkpoint threshold, when the queue goes idle, and at shutdown — so
/// a waiter never sits behind more than one fsync, while saturated
/// pipelined traffic amortises each fsync over many groups. A record is
/// therefore acted on only once durable, exactly as in the
/// per-append-fsync path — and pipelined (unwaited) records ride the
/// same ordered groups without stalling their session.
#[derive(Debug)]
pub struct GroupCommitter {
    shared: Arc<CommitShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl GroupCommitter {
    /// Open (or create) `dir/commit.log` and spawn the commit thread.
    /// `checkpoint_bytes` bounds the log: past it, every dirtied session
    /// file is fsync'd and the log truncated. `crash_at` is the
    /// crash-injection hook: simulate a kill at the given point while
    /// committing the given (0-based) group.
    ///
    /// # Errors
    /// I/O failure opening the log.
    pub fn start(
        dir: &Path,
        checkpoint_bytes: u64,
        crash_at: Option<(u64, CommitCrashPoint)>,
    ) -> std::io::Result<GroupCommitter> {
        let path = commit_log_file(dir);
        let log = OpenOptions::new().create(true).append(true).open(&path)?;
        let log_len = log.metadata()?.len();
        let shared = Arc::new(CommitShared {
            queue: Mutex::new(CommitQueue { pending: Vec::new(), shutdown: false, dead: None }),
            work_cv: Condvar::new(),
            groups: AtomicU64::new(0),
            records: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        });
        let thread = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                commit_loop(&shared, log, log_len, checkpoint_bytes, crash_at)
            })
        };
        Ok(GroupCommitter { shared, thread: Mutex::new(Some(thread)) })
    }

    /// A cloneable append handle for session journals.
    pub fn handle(&self) -> CommitHandle {
        CommitHandle(self.shared.clone())
    }

    /// Commit-thread counters.
    pub fn stats(&self) -> CommitStats {
        CommitStats {
            groups: self.shared.groups.load(Ordering::SeqCst),
            records: self.shared.records.load(Ordering::SeqCst),
            checkpoints: self.shared.checkpoints.load(Ordering::SeqCst),
        }
    }

    /// Flush whatever is pending, stop the commit thread and join it.
    /// Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = lock_or_die(&self.shared.queue, "commit queue");
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let handle = lock_or_die(&self.thread, "commit thread").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Fail `batch` and everything still queued, and mark the committer
/// dead so later appends fail fast instead of blocking forever.
fn commit_die(shared: &CommitShared, batch: Vec<PendingAppend>, reason: DeadReason) {
    let err = match &reason {
        DeadReason::Crashed => AppendError::Crashed,
        DeadReason::Broken(e) => AppendError::Io(format!("commit log broken: {e}")),
    };
    let drained = {
        let mut q = lock_or_die(&shared.queue, "commit queue");
        q.dead = Some(reason);
        std::mem::take(&mut q.pending)
    };
    for p in batch.into_iter().chain(drained) {
        if let Some(w) = p.waiter {
            w.complete(Err(err.clone()));
        }
    }
}

fn commit_loop(
    shared: &Arc<CommitShared>,
    mut log: File,
    mut log_len: u64,
    checkpoint_bytes: u64,
    crash_at: Option<(u64, CommitCrashPoint)>,
) {
    // Session files written since the last checkpoint; they must be
    // fsync'd before the log (their durability authority) is truncated.
    let mut dirty: Vec<Arc<SessionFile>> = Vec::new();
    let mut group_no = 0u64;
    // Groups written to the log but not yet covered by an fsync. Their
    // session-file writes, counters and acks are deferred to the flush,
    // keeping the invariant that a file never holds a record the durable
    // log lacks. A flush happens as soon as a group carries a waiter,
    // when the log crosses the checkpoint threshold, when the queue goes
    // idle, and at shutdown — so under load one fsync covers many
    // groups, and a waiter never waits behind more than one fsync.
    let mut staged: Vec<PendingAppend> = Vec::new();
    let mut staged_groups = 0u64;
    let mut synced_len = log_len;
    let mut crash_after_fsync = false;
    loop {
        let (batch, shutdown): (Vec<PendingAppend>, bool) = {
            let mut q = lock_or_die(&shared.queue, "commit queue");
            loop {
                if !q.pending.is_empty() {
                    break (std::mem::take(&mut q.pending), false);
                }
                if q.shutdown || !staged.is_empty() {
                    // Nothing queued: flush the staged tail rather than
                    // sleep on it (and drain before a shutdown).
                    break (Vec::new(), q.shutdown);
                }
                q = wait_or_die(&shared.work_cv, q, "commit queue");
            }
        };
        if batch.is_empty() && staged.is_empty() {
            return; // shutdown with nothing left to flush
        }

        let mut flush = batch.is_empty() || shutdown;
        if !batch.is_empty() {
            let crash_here = crash_at.filter(|(g, _)| *g == group_no).map(|(_, point)| point);

            // (1) one write of the whole group to the shared log.
            let mut buf = String::new();
            for p in &batch {
                buf.push_str(&p.entry_line);
            }
            let wrote = log.write_all(buf.as_bytes());
            if crash_here == Some(CommitCrashPoint::BeforeFsync) {
                // Simulated power loss before the covering fsync:
                // nothing written since the last fsync survives. Roll
                // the log back so disk state matches.
                let _ = log.set_len(synced_len);
                commit_die(shared, staged.into_iter().chain(batch).collect(), DeadReason::Crashed);
                return;
            }
            if let Err(e) = wrote {
                commit_die(
                    shared,
                    staged.into_iter().chain(batch).collect(),
                    DeadReason::Broken(e.to_string()),
                );
                return;
            }
            log_len += buf.len() as u64;
            group_no += 1;
            staged_groups += 1;
            if crash_here == Some(CommitCrashPoint::AfterFsync) {
                crash_after_fsync = true;
            }
            flush = flush
                || batch.iter().any(|p| p.waiter.is_some())
                || log_len >= checkpoint_bytes
                || crash_after_fsync;
            staged.extend(batch);
        }
        if !flush {
            continue;
        }

        // (2) one fsync — every group staged since the last flush
        // becomes durable at once.
        if let Err(e) = log.sync_data() {
            commit_die(shared, staged, DeadReason::Broken(e.to_string()));
            return;
        }
        synced_len = log_len;
        if crash_after_fsync {
            // Durable but unacked, session files unwritten: the state
            // `reconcile_commit_log` repairs on the next start.
            commit_die(shared, staged, DeadReason::Crashed);
            return;
        }

        // (3) materialise into the per-session files — no fsync; the
        // page cache survives a process kill and the fsync'd log covers
        // a machine one. Records are coalesced per file first, so each
        // file gets one write per flush however many of its records the
        // flush covers; a failed write is sticky on the file, failing
        // every covered record of that file below.
        let mut buffers: Vec<(Arc<SessionFile>, String)> = Vec::new();
        for p in &staged {
            if let Some(f) = &p.file {
                match buffers.iter_mut().find(|(bf, _)| Arc::ptr_eq(bf, f)) {
                    Some((_, buf)) => buf.push_str(&p.record_line),
                    None => buffers.push((f.clone(), p.record_line.clone())),
                }
            }
        }
        for (f, buf) in &buffers {
            if f.write_line(buf).is_ok() && !dirty.iter().any(|d| Arc::ptr_eq(d, f)) {
                dirty.push(f.clone());
            }
        }

        // (4) ack — every waiter's record is durable (and readable from
        // its session file) before the session acts on it. Counters are
        // bumped first so an observer who waited for the acks never sees
        // a stale count. Pipelined appends have no waiter; a write
        // failure on one is sticky on its session file and surfaces at
        // the session's next waited append.
        shared.groups.fetch_add(staged_groups, Ordering::SeqCst);
        shared.records.fetch_add(staged.iter().map(|p| p.nrecords).sum(), Ordering::SeqCst);
        staged_groups = 0;
        for p in staged.drain(..) {
            if let Some(w) = p.waiter {
                let res = match p.file.as_ref().and_then(|f| f.broken()) {
                    None => Ok(()),
                    Some(e) => Err(AppendError::Io(e)),
                };
                w.complete(res);
            }
        }
        if shutdown {
            return;
        }

        // Checkpoint: once every dirtied file is fsync'd the log holds
        // no information the files lack, so it can be truncated. Any
        // failure just leaves the (still correct) log in place.
        if log_len >= checkpoint_bytes {
            let all_synced = dirty.iter().all(|f| f.sync().is_ok());
            if all_synced && log.set_len(0).and_then(|()| log.sync_data()).is_ok() {
                log_len = 0;
                synced_len = 0;
                dirty.clear();
                shared.checkpoints.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

// ---- session journal handles -----------------------------------------

enum JournalMode {
    /// fsync per append on the session's own file.
    Direct,
    /// Appends go through the shared group committer.
    Group(CommitHandle),
}

impl std::fmt::Debug for JournalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalMode::Direct => write!(f, "Direct"),
            JournalMode::Group(_) => write!(f, "Group"),
        }
    }
}

/// A session's write handle on its own journal, in either durability
/// mode. Replaces the bare [`JournalWriter`] on the service's write
/// path; the contract is identical — when [`SessionJournal::append`]
/// returns `Ok`, the record is durable.
#[derive(Debug)]
pub struct SessionJournal {
    session: u64,
    /// 0-based index of the next record (== records already in the file).
    index: u64,
    file: Arc<SessionFile>,
    mode: JournalMode,
    /// Pipelined records serialized but not yet handed to the committer
    /// (group mode only): concatenated commit-log entry lines, session
    /// file record lines, and their count. They ship as one queue push
    /// with the next blocking append — or sooner past [`BUFFER_BYTES`] —
    /// so the commit queue is paid per batch, not per trace event.
    buf_entries: String,
    buf_records: String,
    buf_count: u64,
}

/// Size bound on a session's buffered pipelined records; past it the
/// buffer ships ticketless rather than waiting for a blocking append.
const BUFFER_BYTES: usize = 32 * 1024;

impl SessionJournal {
    /// Create a fresh journal file (truncating any stale one) writing
    /// through `committer` when given, per-append fsync otherwise.
    ///
    /// # Errors
    /// I/O failure creating the file.
    pub fn create(
        path: &Path,
        session: u64,
        committer: Option<CommitHandle>,
    ) -> std::io::Result<SessionJournal> {
        let file = File::create(path)?;
        Ok(SessionJournal {
            session,
            index: 0,
            file: Arc::new(SessionFile::new(file)),
            mode: match committer {
                Some(h) => JournalMode::Group(h),
                None => JournalMode::Direct,
            },
            buf_entries: String::new(),
            buf_records: String::new(),
            buf_count: 0,
        })
    }

    /// Reopen an existing journal for appending: truncate the torn tail
    /// past `valid_len`, position at the end, and continue the record
    /// numbering at `records`.
    ///
    /// # Errors
    /// I/O failure opening or truncating the file.
    pub fn open_append(
        path: &Path,
        valid_len: u64,
        records: u64,
        session: u64,
        committer: Option<CommitHandle>,
    ) -> std::io::Result<SessionJournal> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(SessionJournal {
            session,
            index: records,
            file: Arc::new(SessionFile::new(file)),
            mode: match committer {
                Some(h) => JournalMode::Group(h),
                None => JournalMode::Direct,
            },
            buf_entries: String::new(),
            buf_records: String::new(),
            buf_count: 0,
        })
    }

    /// Append one record.
    ///
    /// In direct mode every append fsyncs and `Ok` means durable. In
    /// group mode the call blocks on the group fsync only for records
    /// the service *acts on* — the header (a `Submitted` reply promises
    /// the session survives a crash) and the terminal record (a reported
    /// result must be servable after restart). Interior trace events are
    /// pipelined: buffered in this handle and handed to the commit
    /// thread in order (with the next blocking append, or sooner past a
    /// size bound), but never awaited — they are never externally acted
    /// on before becoming durable, and a crash that loses a suffix of
    /// them (buffered or queue-truncated) loses nothing, because
    /// deterministic replay regenerates the identical events. A
    /// pipelined write failure is sticky on the session file and fails
    /// the session's next blocking append, so a terminal record can
    /// never commit past a gap.
    ///
    /// # Errors
    /// [`AppendError::Io`] on write failure, [`AppendError::Crashed`]
    /// when the committer simulated a kill.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), AppendError> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| AppendError::Io(format!("unserializable record: {e}")))?;
        line.push('\n');
        match &self.mode {
            JournalMode::Direct => {
                self.file.write_line_synced(&line).map_err(|e| AppendError::Io(e.to_string()))?;
            }
            JournalMode::Group(h) => {
                let h = h.clone();
                let wait = matches!(record, JournalRecord::Header { .. }) || record.is_terminal();
                self.buffer_record(&line);
                if !wait && self.buf_records.len() < BUFFER_BYTES {
                    self.index += 1;
                    return Ok(());
                }
                if let Some(e) = self.file.broken() {
                    return Err(AppendError::Io(format!("session journal broken: {e}")));
                }
                let (entries, records, count) = self.take_buffer();
                if wait {
                    h.0.enqueue_wait(Some(self.file.clone()), entries, records, count)?;
                } else {
                    h.0.enqueue(Some(self.file.clone()), entries, records, count, None)?;
                }
            }
        }
        self.index += 1;
        Ok(())
    }

    /// Append a terminal record without blocking: `finish` runs with the
    /// append's outcome once the record's covering group fsync lands (or
    /// immediately, in direct mode / on a fail-fast error). Group mode
    /// runs `finish` on the commit thread's ack path — the whole point:
    /// the action taken on durability no longer parks the calling worker
    /// for an fsync, so a fixed pool completes sessions as fast as the
    /// committer can batch them. The ordering contract is unchanged:
    /// `finish(Ok)` fires only after the record (and every buffered
    /// record before it) is durable in the commit log and written to the
    /// session file.
    pub fn append_async(
        mut self,
        record: &JournalRecord,
        finish: impl FnOnce(Result<(), AppendError>) + Send + 'static,
    ) {
        let mut line = match serde_json::to_string(record) {
            Ok(l) => l,
            Err(e) => return finish(Err(AppendError::Io(format!("unserializable record: {e}")))),
        };
        line.push('\n');
        match &self.mode {
            JournalMode::Direct => {
                finish(
                    self.file.write_line_synced(&line).map_err(|e| AppendError::Io(e.to_string())),
                );
            }
            JournalMode::Group(h) => {
                let h = h.clone();
                if let Some(e) = self.file.broken() {
                    return finish(Err(AppendError::Io(format!("session journal broken: {e}"))));
                }
                self.buffer_record(&line);
                let (entries, records, count) = self.take_buffer();
                // On the fail-fast path (committer dead or shut down)
                // `enqueue` completes the callback itself with the
                // error; once queued, the commit thread owns it. Either
                // way `finish` runs exactly once.
                let _ = h.0.enqueue(
                    Some(self.file.clone()),
                    entries,
                    records,
                    count,
                    Some(Waiter::Callback(Box::new(finish))),
                );
            }
        }
    }

    /// Serialize-splice `line` into the commit-log envelope and stash
    /// both forms in the pipelining buffer.
    fn buffer_record(&mut self, line: &str) {
        // Splice the already-serialized record into the
        // [`CommitLogEntry::Append`] envelope rather than cloning the
        // record and serializing it a second time — terminal records
        // carry the whole search result, and this runs once per
        // journaled probe.
        use std::fmt::Write as _;
        let _ = writeln!(
            self.buf_entries,
            "{{\"Append\":{{\"session\":{},\"index\":{},\"record\":{}}}}}",
            self.session,
            self.index,
            &line[..line.len() - 1],
        );
        self.buf_records.push_str(line);
        self.buf_count += 1;
    }

    fn take_buffer(&mut self) -> (String, String, u64) {
        let entries = std::mem::take(&mut self.buf_entries);
        let records = std::mem::take(&mut self.buf_records);
        let count = self.buf_count;
        self.buf_count = 0;
        (entries, records, count)
    }
}

impl Drop for SessionJournal {
    /// Best-effort: ship any still-buffered pipelined records so a
    /// cleanly shut down session leaves the longest possible durable
    /// prefix. Losing them would still be correct — they are exactly the
    /// records a crash is allowed to truncate — so errors are ignored.
    fn drop(&mut self) {
        if self.buf_count > 0 {
            if let JournalMode::Group(h) = &self.mode {
                let entries = std::mem::take(&mut self.buf_entries);
                let records = std::mem::take(&mut self.buf_records);
                let _ =
                    h.0.enqueue(Some(self.file.clone()), entries, records, self.buf_count, None);
            }
        }
    }
}

// ---- commit-log recovery ---------------------------------------------

/// Replay the durable commit log into the per-session journal files,
/// then truncate it.
///
/// A kill between the log fsync and the session-file writes (or the
/// page cache never reaching disk on power loss) leaves records that
/// are durable in the log but missing from the files. This walks the
/// log in order, applies every `Append` a session file does not already
/// hold (verifying record indices are contiguous — a gap means data
/// loss and errors out loudly), honours `Drop` tombstones by deleting
/// the named session's file, fsyncs every touched file and finally
/// truncates the log. The log's own torn tail follows the same rule as
/// session journals: a final line without its newline is dropped; a
/// newline-terminated unparsable line is corruption.
///
/// # Errors
/// I/O failure, commit-log corruption, or a non-contiguous record gap.
pub fn reconcile_commit_log(dir: &Path) -> std::io::Result<()> {
    let log_path = commit_log_file(dir);
    if !log_path.exists() {
        return Ok(());
    }
    let mut bytes = Vec::new();
    File::open(&log_path)?.read_to_end(&mut bytes)?;

    // Per-session records accumulated from the log, in log order, plus
    // tombstones. A later `Append` for a dropped id revives it (id
    // reuse across a restart).
    let mut pending: BTreeMap<u64, Vec<(u64, JournalRecord)>> = BTreeMap::new();
    let mut dropped: Vec<u64> = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn tail: the final group's write was cut short
        };
        let line = &bytes[offset..offset + nl];
        let parsed = std::str::from_utf8(line)
            .ok()
            .and_then(|s| serde_json::from_str::<CommitLogEntry>(s).ok());
        match parsed {
            Some(CommitLogEntry::Append { session, index, record }) => {
                dropped.retain(|&s| s != session);
                pending.entry(session).or_default().push((index, record));
            }
            Some(CommitLogEntry::Drop { session }) => {
                pending.remove(&session);
                if !dropped.contains(&session) {
                    dropped.push(session);
                }
            }
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "corrupt commit-log entry at byte {offset} of {} \
                         (newline-terminated, so not a torn tail)",
                        log_path.display()
                    ),
                ));
            }
        }
        offset += nl + 1;
    }

    for (session, entries) in &pending {
        let path = journal_file(dir, *session);
        let (have, valid_len) = if path.exists() {
            let contents = read_journal(&path)?;
            (contents.records.len() as u64, contents.valid_len)
        } else {
            (0, 0)
        };
        let missing: Vec<&(u64, JournalRecord)> =
            entries.iter().filter(|(index, _)| *index >= have).collect();
        if missing.is_empty() {
            continue;
        }
        // The log is ordered, so missing indices must run have, have+1…
        // — anything else means a durable record vanished.
        for (offset_in_missing, (index, _)) in missing.iter().enumerate() {
            let expect = have + offset_in_missing as u64;
            if *index != expect {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "commit log holds record {index} of session {session} but its \
                         journal file has only {have} records (expected {expect}): \
                         a durable record is missing"
                    ),
                ));
            }
        }
        let mut file =
            OpenOptions::new().create(true).truncate(false).read(true).write(true).open(&path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        for (_, record) in missing {
            let mut line = serde_json::to_string(record)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            line.push('\n');
            file.write_all(line.as_bytes())?;
        }
        file.sync_data()?;
    }
    for session in dropped {
        let _ = std::fs::remove_file(journal_file(dir, session));
    }

    // Everything the log held is now in fsync'd files; truncate it.
    let log = OpenOptions::new().write(true).open(&log_path)?;
    log.set_len(0)?;
    log.sync_data()?;
    Ok(())
}

/// A journal read back from disk.
#[derive(Debug)]
pub struct JournalContents {
    /// Every complete, well-formed record, in order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the well-formed prefix; anything past it is a torn
    /// tail to truncate before appending.
    pub valid_len: u64,
}

impl JournalContents {
    /// The header, if the journal has one.
    pub fn header(&self) -> Option<&JournalRecord> {
        match self.records.first() {
            Some(h @ JournalRecord::Header { .. }) => Some(h),
            _ => None,
        }
    }

    /// The journaled events (in order), without their envelopes.
    pub fn events(&self) -> Vec<&TraceEvent> {
        self.event_entries().into_iter().map(|(e, _)| e).collect()
    }

    /// The journaled events (in order) with their provenance: `true` when
    /// the record is a [`JournalRecord::CachedEvent`] — an observation the
    /// shared cache served for free, which replay must serve from the
    /// journal rather than re-probe.
    pub fn event_entries(&self) -> Vec<(&TraceEvent, bool)> {
        self.records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Event { event, .. } => Some((event, false)),
                JournalRecord::CachedEvent { event, .. } => Some((event, true)),
                _ => None,
            })
            .collect()
    }

    /// The terminal record, if the session reached one.
    pub fn terminal(&self) -> Option<&JournalRecord> {
        self.records.last().filter(|r| r.is_terminal())
    }
}

/// Read a journal, tolerating a torn trailing line.
///
/// A record that fails to parse is corruption and errors out — unless it
/// is the final line *and* lacks its terminating newline. Each append is
/// one `write_all` of `line + '\n'`, so a crash can only tear the tail to
/// a proper prefix that never includes the newline; a newline-terminated
/// line that still fails to parse was written whole and indicates real
/// corruption (bit rot, manual edit), which is surfaced exactly like
/// mid-file corruption instead of being silently discarded.
///
/// # Errors
/// I/O failure, or a malformed newline-terminated record anywhere in the
/// file.
pub fn read_journal(path: &Path) -> std::io::Result<JournalContents> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;

    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn tail: no terminating newline
        };
        let line = &bytes[offset..offset + nl];
        let parsed = std::str::from_utf8(line)
            .ok()
            .and_then(|s| serde_json::from_str::<JournalRecord>(s).ok());
        match parsed {
            Some(rec) => {
                records.push(rec);
                offset += nl + 1;
                valid_len = offset as u64;
            }
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "corrupt journal record at byte {offset} of {} \
                         (newline-terminated, so not a torn tail)",
                        path.display()
                    ),
                ));
            }
        }
    }
    Ok(JournalContents { records, valid_len })
}

/// All journal files in a directory, sorted by session id.
///
/// # Errors
/// I/O failure listing the directory.
pub fn list_journals(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(id) = session_of(&path) {
            found.push((id, path));
        }
    }
    found.sort();
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd::prelude::{Deployment, InstanceType, Money, Observation, SimDuration};

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mlcd-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn probe(seq: u64) -> JournalRecord {
        JournalRecord::Event {
            seq,
            event: TraceEvent::Probe {
                observation: Observation {
                    deployment: Deployment::new(InstanceType::C5Xlarge, 2),
                    speed: 123.5,
                    profile_time: SimDuration::from_secs(60.0),
                    profile_cost: Money::from_dollars(0.25),
                },
                cum_profile_time: SimDuration::from_secs(60.0),
                cum_profile_cost: Money::from_dollars(0.25),
            },
        }
    }

    fn header() -> JournalRecord {
        JournalRecord::Header {
            format: JOURNAL_FORMAT,
            session: 3,
            spec: SubmitSpec::new("resnet-cifar10", "heterbo", 1),
            scenario: Scenario::FastestUnlimited,
        }
    }

    #[test]
    fn round_trips_records_and_reads_them_back() {
        let d = dir("roundtrip");
        let path = journal_file(&d, 3);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&header()).unwrap();
        w.append(&probe(0)).unwrap();
        w.append(&JournalRecord::Cancelled).unwrap();
        drop(w);

        let back = read_journal(&path).unwrap();
        assert_eq!(back.records.len(), 3);
        assert!(back.header().is_some());
        assert_eq!(back.events().len(), 1);
        assert!(matches!(back.terminal(), Some(JournalRecord::Cancelled)));
        assert_eq!(back.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let d = dir("torn");
        let path = journal_file(&d, 9);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&header()).unwrap();
        w.append(&probe(0)).unwrap();
        drop(w);
        let full = std::fs::metadata(&path).unwrap().len();

        // Simulate a crash mid-append: write half of a record, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"Event\":{\"seq\":1,\"ev").unwrap();
        }
        let back = read_journal(&path).unwrap();
        assert_eq!(back.records.len(), 2, "torn tail must not parse");
        assert_eq!(back.valid_len, full);

        // Reopening truncates the tail; the next append lands cleanly.
        let mut w = JournalWriter::open_append(&path, back.valid_len).unwrap();
        w.append(&probe(1)).unwrap();
        drop(w);
        let back = read_journal(&path).unwrap();
        assert_eq!(back.records.len(), 3);
        assert_eq!(back.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_complete_line_midfile_is_corruption() {
        let d = dir("corrupt");
        let path = journal_file(&d, 1);
        std::fs::write(&path, "not json\n\"Cancelled\"\n").unwrap();
        assert!(read_journal(&path).is_err());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn newline_terminated_corrupt_final_line_is_corruption_not_torn() {
        // A crash tears an append to a prefix WITHOUT the newline; a
        // complete-but-unparsable last line was written whole and must be
        // surfaced, not silently truncated away.
        let d = dir("corrupt-tail");
        let path = journal_file(&d, 2);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&header()).unwrap();
        drop(w);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"Event\":{\"seq\":0,\"ev\n").unwrap();
        }
        let err = read_journal(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn cached_events_round_trip_with_provenance() {
        let d = dir("cached");
        let path = journal_file(&d, 4);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&header()).unwrap();
        w.append(&probe(0)).unwrap();
        let JournalRecord::Event { event, .. } = probe(1) else { unreachable!() };
        w.append(&JournalRecord::CachedEvent { seq: 1, event }).unwrap();
        w.append(&probe(2)).unwrap();
        drop(w);

        let back = read_journal(&path).unwrap();
        assert_eq!(back.events().len(), 3, "cached events are part of the spine");
        let flags: Vec<bool> = back.event_entries().iter().map(|(_, c)| *c).collect();
        assert_eq!(flags, vec![false, true, false]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn file_names_round_trip_session_ids() {
        let d = PathBuf::from("/tmp/j");
        let p = journal_file(&d, 42);
        assert_eq!(p.file_name().unwrap().to_str().unwrap(), "session-00000042.journal");
        assert_eq!(session_of(&p), Some(42));
        assert_eq!(session_of(Path::new("/tmp/j/other.txt")), None);
    }

    #[test]
    fn group_commit_appends_from_many_sessions_and_checkpoints() {
        let d = dir("group");
        // A 1-byte checkpoint threshold forces a checkpoint after every
        // group, exercising the truncate path continuously.
        let committer = GroupCommitter::start(&d, 1, None).unwrap();
        let handles: Vec<std::thread::JoinHandle<()>> = (1u64..=4)
            .map(|id| {
                let mut j =
                    SessionJournal::create(&journal_file(&d, id), id, Some(committer.handle()))
                        .unwrap();
                std::thread::spawn(move || {
                    j.append(&header()).unwrap();
                    for seq in 0..5 {
                        j.append(&probe(seq)).unwrap();
                    }
                    j.append(&JournalRecord::Cancelled).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = committer.stats();
        assert_eq!(stats.records, 4 * 7, "every append must be committed exactly once");
        assert!(stats.groups >= 1 && stats.groups <= stats.records);
        assert!(stats.checkpoints >= 1, "1-byte threshold must checkpoint");
        committer.shutdown();
        for id in 1u64..=4 {
            let back = read_journal(&journal_file(&d, id)).unwrap();
            assert_eq!(back.records.len(), 7, "session {id}");
            assert!(matches!(back.terminal(), Some(JournalRecord::Cancelled)));
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_before_fsync_leaves_nothing_of_the_group() {
        let d = dir("crash-before");
        let committer =
            GroupCommitter::start(&d, u64::MAX, Some((0, CommitCrashPoint::BeforeFsync))).unwrap();
        let mut j =
            SessionJournal::create(&journal_file(&d, 1), 1, Some(committer.handle())).unwrap();
        assert_eq!(j.append(&header()), Err(AppendError::Crashed));
        // A pipelined append only buffers locally (no dead thread to
        // block on); the next blocking append fails fast.
        assert_eq!(j.append(&probe(0)), Ok(()));
        assert_eq!(j.append(&JournalRecord::Cancelled), Err(AppendError::Crashed));
        committer.shutdown();
        assert_eq!(std::fs::metadata(commit_log_file(&d)).unwrap().len(), 0);
        assert_eq!(std::fs::metadata(journal_file(&d, 1)).unwrap().len(), 0);
        reconcile_commit_log(&d).unwrap();
        let back = read_journal(&journal_file(&d, 1)).unwrap();
        assert!(back.records.is_empty(), "nothing was durable, nothing to repair");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_after_fsync_is_repaired_by_reconcile() {
        let d = dir("crash-after");
        let committer =
            GroupCommitter::start(&d, u64::MAX, Some((0, CommitCrashPoint::AfterFsync))).unwrap();
        let mut j =
            SessionJournal::create(&journal_file(&d, 1), 1, Some(committer.handle())).unwrap();
        assert_eq!(j.append(&header()), Err(AppendError::Crashed));
        committer.shutdown();
        // Durable in the log, missing from the file…
        assert!(std::fs::metadata(commit_log_file(&d)).unwrap().len() > 0);
        assert_eq!(std::fs::metadata(journal_file(&d, 1)).unwrap().len(), 0);
        // …until recovery replays the log into the file and truncates it.
        reconcile_commit_log(&d).unwrap();
        let back = read_journal(&journal_file(&d, 1)).unwrap();
        assert_eq!(back.records.len(), 1);
        assert!(back.header().is_some());
        assert_eq!(std::fs::metadata(commit_log_file(&d)).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn reconcile_honours_drop_tombstones_and_detects_gaps() {
        let d = dir("reconcile");
        // Hand-build a log: session 1 header + drop (late-rejected
        // submit whose file deletion already happened), session 2 header.
        let mut log = File::create(commit_log_file(&d)).unwrap();
        for entry in [
            CommitLogEntry::Append { session: 1, index: 0, record: header() },
            CommitLogEntry::Drop { session: 1 },
            CommitLogEntry::Append { session: 2, index: 0, record: header() },
        ] {
            let mut line = serde_json::to_string(&entry).unwrap();
            line.push('\n');
            log.write_all(line.as_bytes()).unwrap();
        }
        drop(log);
        std::fs::write(journal_file(&d, 1), "").unwrap();
        reconcile_commit_log(&d).unwrap();
        assert!(!journal_file(&d, 1).exists(), "tombstoned journal must not be resurrected");
        assert_eq!(read_journal(&journal_file(&d, 2)).unwrap().records.len(), 1);

        // A gap — record 5 of a session whose file has 0 records — is
        // data loss and must fail loudly, not silently skip.
        let mut log = File::create(commit_log_file(&d)).unwrap();
        let entry = CommitLogEntry::Append { session: 3, index: 5, record: probe(5) };
        let mut line = serde_json::to_string(&entry).unwrap();
        line.push('\n');
        log.write_all(line.as_bytes()).unwrap();
        drop(log);
        let err = reconcile_commit_log(&d).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn direct_mode_session_journal_matches_journal_writer() {
        let d = dir("direct");
        let path = journal_file(&d, 8);
        let mut j = SessionJournal::create(&path, 8, None).unwrap();
        j.append(&header()).unwrap();
        j.append(&probe(0)).unwrap();
        drop(j);
        let back = read_journal(&path).unwrap();
        assert_eq!(back.records.len(), 2);
        // Reopen-with-truncate continues the numbering.
        let mut j = SessionJournal::open_append(&path, back.valid_len, 2, 8, None).unwrap();
        j.append(&probe(1)).unwrap();
        drop(j);
        assert_eq!(read_journal(&path).unwrap().records.len(), 3);
        let _ = std::fs::remove_dir_all(&d);
    }
}
