//! # mlcd-service — the deployment-planning service
//!
//! A long-running server around the MLCD search stack: clients submit
//! *(job, scenario, searcher, seed)* specs; each runs as an independent,
//! fully deterministic search session on a bounded worker pool. Three
//! properties the whole crate is organised around:
//!
//! 1. **Determinism survives concurrency.** A session's
//!    [`SearchOutcome`](mlcd::observation::SearchOutcome) is a pure
//!    function of its spec — the pool only changes *when* a session runs,
//!    never *what* it computes. Two concurrent sessions are bit-identical
//!    to the same two searches run sequentially in-process.
//! 2. **Determinism survives crashes.** Every session write-ahead
//!    journals its deterministic event spine ([`journal`]), including the
//!    provenance of probes the shared cache served for free; a killed
//!    server restarted over the same journal directory resumes every
//!    in-flight search by verified replay — cache-served observations are
//!    re-served from the journal itself — and completes it
//!    deterministically, bit-identical to an uninterrupted run whenever
//!    no post-crash probe would have been a cache hit (always, with the
//!    cache disabled).
//! 3. **Exploration cost is shared.** The paper's central observation is
//!    that profiling probes are expensive and heterogeneous; the service
//!    memoises completed probes across sessions ([`cache`]) so identical
//!    probes of the same job are paid for once.
//!
//! The wire protocol ([`proto`], [`net`]) is newline-delimited JSON over
//! TCP, served by the `mlcd-serve` binary and spoken by the `mlcd`
//! CLI's `submit`/`status`/`result`/`watch` subcommands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fleet;
pub mod journal;
pub mod net;
pub mod proto;
pub mod session;
pub mod sync;

pub use cache::{CacheKey, CachedEnv, GridCache, GridKey, ProbeCache, ProvenanceLog};
pub use fleet::{FleetCloud, FleetConfig, FleetCounters, FleetGateEnv, FleetPool};
pub use journal::{
    commit_log_file, reconcile_commit_log, AppendError, CommitCrashPoint, CommitHandle,
    CommitLogEntry, CommitStats, GroupCommitter, JournalRecord, JournalWriter, SessionJournal,
    COMMIT_LOG_FILE, JOURNAL_FORMAT,
};
pub use net::Server;
pub use proto::{
    FleetStatsWire, Request, Response, ServiceStats, SessionResult, StatusLine, SubmitSpec,
};
pub use session::{Phase, Reject, ServiceConfig, Session, SessionManager};
