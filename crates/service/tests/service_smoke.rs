//! End-to-end smoke test: the real `mlcd-serve` binary on an ephemeral
//! port, spoken to over TCP in the NDJSON protocol.
//!
//! The acceptance property: two jobs submitted *concurrently* to the
//! server produce outcomes bit-identical to two *sequential* in-process
//! searches — with the shared probe cache on AND off. The two jobs are
//! different presets, so no cache key collides and the cache cannot
//! (and must not) change either outcome.

use mlcd_service::{Phase, Request, Response, ServiceConfig, SessionManager, SubmitSpec};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mlcd-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Two different presets: distinct jobs ⇒ no shared cache keys.
fn specs() -> [SubmitSpec; 2] {
    let mut a = SubmitSpec::new("resnet-cifar10", "random", 7);
    a.types = Some(vec!["c5.xlarge".into(), "p2.xlarge".into()]);
    a.max_nodes = 8;
    let mut b = SubmitSpec::new("char-rnn", "heterbo", 7);
    b.types = Some(vec!["c5.xlarge".into(), "p2.xlarge".into()]);
    b.max_nodes = 8;
    [a, b]
}

/// Spawn `mlcd-serve` on an ephemeral port; return the child and the
/// address it reports on its first stdout line.
fn spawn_server(tag: &str, cache: bool) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mlcd-serve"));
    cmd.args(["--listen", "127.0.0.1:0", "--workers", "2"])
        .arg("--journal-dir")
        .arg(dir(tag))
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if !cache {
        cmd.arg("--no-probe-cache");
    }
    let mut child = cmd.spawn().expect("spawn mlcd-serve");
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut line)
        .expect("read banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// One request / one response on a fresh connection.
fn roundtrip(addr: &str, req: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let line = serde_json::to_string(req).expect("encode request");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    serde_json::from_str(&resp).unwrap_or_else(|e| panic!("decode {resp:?}: {e}"))
}

fn submit(addr: &str, spec: &SubmitSpec) -> u64 {
    match roundtrip(addr, &Request::Submit(spec.clone())) {
        Response::Submitted { id } => id,
        other => panic!("submit: {other:?}"),
    }
}

/// Block until the session is done and return its outcome digest.
fn result_digest(addr: &str, id: u64) -> String {
    match roundtrip(addr, &Request::Result { id, wait: true }) {
        Response::ResultReady { id: rid, result } => {
            assert_eq!(rid, id);
            result.search.digest()
        }
        other => panic!("result {id}: {other:?}"),
    }
}

/// The sequential ground truth: same two specs, one at a time, in
/// process, no journaling.
fn sequential_digests(cache: bool) -> [String; 2] {
    let mgr = SessionManager::new(ServiceConfig {
        workers: 1,
        probe_cache: cache,
        ..ServiceConfig::default()
    })
    .expect("manager");
    specs().map(|spec| {
        let id = mgr.submit(spec).expect("submit");
        match mgr.session(id).expect("session").wait_terminal() {
            Phase::Done(result) => result.search.digest(),
            other => panic!("sequential run ended {}", other.name()),
        }
    })
}

/// Submit both jobs to the server back-to-back (they run concurrently
/// on its two workers), collect both digests, then exercise status /
/// watch / shutdown on the way out.
fn concurrent_digests(tag: &str, cache: bool) -> [String; 2] {
    let (mut child, addr) = spawn_server(tag, cache);
    let [a, b] = specs();
    let ida = submit(&addr, &a);
    let idb = submit(&addr, &b);
    assert_ne!(ida, idb);

    match roundtrip(&addr, &Request::Status { id: None }) {
        Response::StatusReport { sessions } => assert_eq!(sessions.len(), 2),
        other => panic!("status: {other:?}"),
    }

    let da = result_digest(&addr, ida);
    let db = result_digest(&addr, idb);

    // Watch on a finished session: full event replay, then WatchEnd.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let line = serde_json::to_string(&Request::Watch { id: ida }).unwrap();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        // The connection stays open for further requests after the
        // stream ends, so read up to WatchEnd rather than to EOF.
        let reader = BufReader::new(stream);
        let mut lines = Vec::new();
        for l in reader.lines() {
            let l = l.expect("watch line");
            let done = matches!(serde_json::from_str(&l), Ok(Response::WatchEnd { .. }));
            lines.push(l);
            if done {
                break;
            }
        }
        assert!(lines.len() >= 3, "Watching + ≥1 event + WatchEnd, got {lines:?}");
        assert!(matches!(
            serde_json::from_str(&lines[0]),
            Ok(Response::Watching { id }) if id == ida
        ));
        let last: Response = serde_json::from_str(lines.last().unwrap()).expect("WatchEnd");
        match last {
            Response::WatchEnd { id, state } => {
                assert_eq!(id, ida);
                assert_eq!(state, "done");
            }
            other => panic!("watch tail: {other:?}"),
        }
    }

    assert!(matches!(roundtrip(&addr, &Request::Shutdown), Response::ShuttingDown));
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited {status}");
    [da, db]
}

#[test]
fn concurrent_server_matches_sequential_in_process_with_cache_on() {
    assert_eq!(concurrent_digests("cache-on", true), sequential_digests(true));
}

#[test]
fn concurrent_server_matches_sequential_in_process_with_cache_off() {
    assert_eq!(concurrent_digests("cache-off", false), sequential_digests(false));
}

/// Cache on vs off must also agree with *each other* when no key
/// collides — the config switch is behaviour-neutral here by design.
#[test]
fn cache_switch_is_outcome_neutral_without_collisions() {
    assert_eq!(sequential_digests(true), sequential_digests(false));
}

/// The shared grid cache hands the second same-spec session the first
/// one's enumeration (one miss, then hits) and never changes outcomes:
/// the grid is a pure function of `(job, types, max_nodes)`, so digests
/// with the cache on and off are identical.
#[test]
fn grid_cache_shares_enumeration_and_is_outcome_neutral() {
    let run = |grid_cache: bool| {
        let mgr = SessionManager::new(ServiceConfig {
            workers: 1,
            grid_cache,
            ..ServiceConfig::default()
        })
        .expect("manager");
        let [spec, _] = specs();
        let digests: [String; 2] = [(), ()].map(|()| {
            let id = mgr.submit(spec.clone()).expect("submit");
            match mgr.session(id).expect("session").wait_terminal() {
                Phase::Done(result) => result.search.digest(),
                other => panic!("run ended {}", other.name()),
            }
        });
        (digests, mgr.grid_stats())
    };
    let (with_cache, stats_on) = run(true);
    assert_eq!(stats_on, (1, 1), "second session must reuse the first grid");
    let (without_cache, stats_off) = run(false);
    assert_eq!(stats_off, (0, 0), "disabled grid cache is never consulted");
    // Grid reuse is invisible in the outcomes (the probe cache, on in
    // both runs, is what makes the second session's probes free).
    assert_eq!(with_cache, without_cache);
}
