//! Shutdown vs. live watchers: a `Watch` stream open when the server
//! shuts down must receive a terminal `WatchEnd` frame — not hang in
//! `next_events` forever and not see the connection reset mid-stream.
//!
//! The manager is started paused so the watched session can never make
//! progress: the only way the watcher unblocks is the shutdown path
//! detaching it.

use mlcd_service::{Request, Response, Server, ServiceConfig, SessionManager, SubmitSpec};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn send_line(stream: &mut TcpStream, req: &Request) {
    let line = serde_json::to_string(req).expect("encode request");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

#[test]
fn watcher_open_during_shutdown_gets_a_terminal_frame() {
    let manager = Arc::new(
        SessionManager::new(ServiceConfig {
            workers: 1,
            queue_cap: 4,
            start_paused: true,
            ..ServiceConfig::default()
        })
        .expect("manager"),
    );
    let server = Server::bind("127.0.0.1:0", manager).expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || server.run());

    // Submit a session that will never run (the pool is paused).
    let mut spec = SubmitSpec::new("resnet-cifar10", "random", 1);
    spec.types = Some(vec!["c5.xlarge".into(), "p2.xlarge".into()]);
    spec.max_nodes = 8;
    let mut submit_conn = TcpStream::connect(addr).expect("connect submit");
    send_line(&mut submit_conn, &Request::Submit(spec));
    let mut reader = BufReader::new(submit_conn.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("submit response");
    let id = match serde_json::from_str(&line) {
        Ok(Response::Submitted { id }) => id,
        other => panic!("submit: {other:?} ({line:?})"),
    };

    // Open a watch on it; the stream acks and then blocks (no events
    // will ever arrive — the session is stuck in the paused queue).
    let watch_conn = TcpStream::connect(addr).expect("connect watch");
    watch_conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut watch_out = watch_conn.try_clone().unwrap();
    send_line(&mut watch_out, &Request::Watch { id });
    let mut watch_reader = BufReader::new(watch_conn);
    let mut line = String::new();
    watch_reader.read_line(&mut line).expect("watching ack");
    assert!(
        matches!(serde_json::from_str(&line), Ok(Response::Watching { id: wid }) if wid == id),
        "watch ack: {line:?}"
    );

    // Shut the server down from another connection. The blocked watcher
    // must be woken and closed out with a WatchEnd carrying the
    // session's current (non-terminal) state.
    let mut shutdown_conn = TcpStream::connect(addr).expect("connect shutdown");
    send_line(&mut shutdown_conn, &Request::Shutdown);
    let mut ack = String::new();
    BufReader::new(shutdown_conn).read_line(&mut ack).expect("shutdown ack");
    assert!(matches!(serde_json::from_str(&ack), Ok(Response::ShuttingDown)), "ack: {ack:?}");

    let mut end = String::new();
    watch_reader.read_line(&mut end).expect("watcher must get a frame, not a hang or reset");
    match serde_json::from_str(&end) {
        Ok(Response::WatchEnd { id: wid, state }) => {
            assert_eq!(wid, id);
            assert_eq!(state, "queued", "the paused session never left the queue");
        }
        other => panic!("watch tail: {other:?} ({end:?})"),
    }

    // Close our ends so the server's bounded connection drain returns
    // immediately instead of timing out on idle clients.
    drop(submit_conn);
    drop(reader);
    drop(watch_out);
    drop(watch_reader);
    server_thread.join().expect("server thread").expect("server run");
}
