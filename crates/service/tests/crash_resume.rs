//! Crash-resume determinism: a server killed mid-search and restarted
//! over the same journal directory must finish every in-flight session
//! with a `SearchOutcome` *bit-identical* to an uninterrupted run —
//! verified via [`SearchOutcome::digest`], which renders every f64 as
//! its raw bit pattern.
//!
//! The "kill" is the `crash_after_records` test hook: it panics the
//! worker after N fsync'd journal records without writing a terminal
//! record, leaving exactly what `kill -9` leaves on disk. Resume then
//! replays the search from seed 0, verifying each re-emitted journaled
//! event against the journal prefix string-for-string before emitting
//! anything new.

use mlcd::prelude::SearchOutcome;
use mlcd_service::{
    commit_log_file, CommitCrashPoint, CommitLogEntry, Phase, ServiceConfig, SessionManager,
    SubmitSpec,
};
use std::path::PathBuf;

/// The paper-scale combo the golden snapshots pin: resnet on the
/// four-type heterogeneous space. `max_nodes` is trimmed so the debug
/// -profile test stays quick; determinism is scale-independent.
fn spec(searcher: &str, seed: u64) -> SubmitSpec {
    let mut s = SubmitSpec::new("resnet-cifar10", searcher, seed);
    s.types = Some(
        ["c5.xlarge", "c5.4xlarge", "c5n.4xlarge", "p2.xlarge"]
            .iter()
            .map(|t| t.to_string())
            .collect(),
    );
    s.max_nodes = 12;
    s
}

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mlcd-crash-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run one session to `Done` on a fresh manager and return its outcome.
fn uninterrupted(spec: &SubmitSpec) -> SearchOutcome {
    let mgr = SessionManager::new(ServiceConfig {
        workers: 1,
        probe_cache: false,
        ..ServiceConfig::default()
    })
    .expect("manager");
    let id = mgr.submit(spec.clone()).expect("submit");
    let session = mgr.session(id).expect("session exists");
    match session.wait_terminal() {
        Phase::Done(result) => result.search,
        other => panic!("uninterrupted run ended {}", other.name()),
    }
}

/// Submit `spec` on a manager wired to crash after `n` journal records,
/// confirm it crashed (journal left unterminated), then restart a clean
/// manager over the same directory and return the resumed outcome.
fn crash_then_resume(spec: &SubmitSpec, n: u64, tag: &str, tamper_tail: bool) -> SearchOutcome {
    let jdir = dir(tag);
    let doomed = SessionManager::new(ServiceConfig {
        workers: 1,
        journal_dir: Some(jdir.clone()),
        probe_cache: false,
        crash_after_records: Some(n),
        ..ServiceConfig::default()
    })
    .expect("doomed manager");
    let id = doomed.submit(spec.clone()).expect("submit");
    let session = doomed.session(id).expect("session exists");
    assert!(
        matches!(session.wait_terminal(), Phase::Crashed),
        "crash hook must fire before the search finishes (n = {n})"
    );
    drop(doomed);

    if tamper_tail {
        // A real kill can also tear the final line mid-write. Recovery
        // must truncate exactly the torn tail and replay the rest.
        use std::io::Write as _;
        let path = mlcd_service::journal::journal_file(&jdir, id);
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"Event\":{\"seq\":9999,\"event\":{\"Probe").unwrap();
        f.sync_data().unwrap();
    }

    let revived = SessionManager::new(ServiceConfig {
        workers: 1,
        journal_dir: Some(jdir),
        probe_cache: false,
        ..ServiceConfig::default()
    })
    .expect("revived manager");
    let session = revived.session(id).expect("in-flight session restored from journal");
    match session.wait_terminal() {
        Phase::Done(result) => result.search,
        other => panic!("resumed run ended {}: {:?}", other.name(), other),
    }
}

/// The headline acceptance test: 3 searchers × 2 seeds, each killed
/// after 3 journal records, all resuming to bit-identical outcomes.
#[test]
fn killed_and_restarted_server_resumes_bit_identical() {
    for searcher in ["heterbo", "convbo", "cherrypick"] {
        for seed in [1u64, 2] {
            let spec = spec(searcher, seed);
            let golden = uninterrupted(&spec).digest();
            let tag = format!("{searcher}-{seed}");
            let resumed = crash_then_resume(&spec, 3, &tag, false).digest();
            assert_eq!(
                resumed, golden,
                "{searcher} seed {seed}: resumed digest diverged from uninterrupted run"
            );
        }
    }
}

/// Crashing at a different point in the search must not matter: the
/// replay is a pure function of the journal prefix.
#[test]
fn resume_is_invariant_to_where_the_crash_landed() {
    let spec = spec("heterbo", 1);
    let golden = uninterrupted(&spec).digest();
    for n in [1u64, 5] {
        let resumed = crash_then_resume(&spec, n, &format!("cut-{n}"), false).digest();
        assert_eq!(resumed, golden, "crash after {n} records must still resume bit-identical");
    }
}

/// A torn final line — half a record fsync'd at the kill — is truncated
/// on recovery and the resume still lands on the golden digest.
#[test]
fn torn_journal_tail_is_recovered_then_resumed_bit_identical() {
    let spec = spec("cherrypick", 2);
    let golden = uninterrupted(&spec).digest();
    let resumed = crash_then_resume(&spec, 2, "torn", true).digest();
    assert_eq!(resumed, golden, "torn-tail recovery must not change the resumed outcome");
}

/// The cache-on crash: sessions whose journaled prefix contains probes
/// the shared cache served for free must still resume. The journal
/// records hit provenance (`CachedEvent`), and replay re-serves those
/// observations from the journal itself — re-probing could never
/// reproduce them (a hit charges nothing and may carry another seed's
/// observation).
#[test]
fn sessions_with_cache_hits_in_their_prefix_resume() {
    let spec = spec("heterbo", 1);
    let golden = uninterrupted(&spec).digest();

    let run_once = |tag: &str| {
        let jdir = dir(tag);
        let doomed = SessionManager::new(ServiceConfig {
            workers: 1,
            journal_dir: Some(jdir.clone()),
            probe_cache: true,
            crash_after_records: Some(3),
            ..ServiceConfig::default()
        })
        .expect("doomed manager");
        // A pays its probes into the shared cache (the whole init batch
        // executes before the third journal record fires the crash), so
        // B's journaled prefix is all cache hits.
        let a = doomed.submit(spec.clone()).expect("submit a");
        let b = doomed.submit(spec.clone()).expect("submit b");
        for id in [a, b] {
            let session = doomed.session(id).expect("session exists");
            assert!(matches!(session.wait_terminal(), Phase::Crashed));
        }
        drop(doomed);

        let b_journal =
            std::fs::read_to_string(mlcd_service::journal::journal_file(&jdir, b)).unwrap();
        assert!(
            b_journal.contains("CachedEvent"),
            "B's prefix must record cache-served probes as CachedEvent"
        );

        let revived = SessionManager::new(ServiceConfig {
            workers: 1,
            journal_dir: Some(jdir),
            probe_cache: true,
            ..ServiceConfig::default()
        })
        .expect("revived manager");
        let outcome = |id: u64| match revived.session(id).expect("restored").wait_terminal() {
            Phase::Done(result) => result.search,
            other => panic!("resumed run ended {}: {:?}", other.name(), other),
        };
        (outcome(a), outcome(b))
    };

    let (a1, b1) = run_once("cache-on-1");
    // A's prefix was all paid probes and its completion is cache-free,
    // so its resume is bit-identical to the uninterrupted run.
    assert_eq!(a1.digest(), golden, "all-miss prefix must resume bit-identical");
    // B's prefix probes were free hits, re-served from the journal; only
    // its post-crash suffix is paid.
    assert!(
        b1.profile_cost.dollars() < a1.profile_cost.dollars(),
        "B's journaled hits must stay free on resume ({} vs {})",
        b1.profile_cost.dollars(),
        a1.profile_cost.dollars()
    );
    // And the whole crash-resume scenario is deterministic end to end.
    let (a2, b2) = run_once("cache-on-2");
    assert_eq!(a2.digest(), a1.digest());
    assert_eq!(b2.digest(), b1.digest());
}

/// Kill the whole process while the *commit thread* is mid-group:
/// submit two sessions (landing on different shards), let their appends
/// batch through the group committer, and crash at the given point of
/// the given group. Returns the journal dir and the two session ids,
/// with both sessions observed `Crashed` (no terminal record).
fn crash_mid_group(point: CommitCrashPoint, tag: &str) -> (PathBuf, u64, u64) {
    let jdir = dir(tag);
    let doomed = SessionManager::new(ServiceConfig {
        workers: 2,
        shards: 4,
        journal_dir: Some(jdir.clone()),
        probe_cache: false,
        // Start paused so the two submit headers commit alone as groups
        // 0 and 1; group 2 is then the first batch of pipelined search
        // records — crashing there guarantees no terminal record was
        // ever acked (events pipeline, so a single later group could
        // already hold a whole session including its terminal).
        start_paused: true,
        crash_commit_at: Some((2, point)),
        ..ServiceConfig::default()
    })
    .expect("doomed manager");
    let a = doomed.submit(spec("heterbo", 1)).expect("submit a");
    let b = doomed.submit(spec("cherrypick", 2)).expect("submit b");
    assert_ne!(a % 4, b % 4, "the two sessions must land on different shards");
    doomed.resume_workers();
    for id in [a, b] {
        let session = doomed.session(id).expect("session exists");
        assert!(
            matches!(session.wait_terminal(), Phase::Crashed),
            "a mid-group kill must leave the session Crashed, not terminal"
        );
    }
    drop(doomed);
    (jdir, a, b)
}

/// Resume both sessions over the same directory and return their outcomes.
fn resume_pair(jdir: PathBuf, a: u64, b: u64) -> (SearchOutcome, SearchOutcome) {
    let revived = SessionManager::new(ServiceConfig {
        workers: 2,
        shards: 4,
        journal_dir: Some(jdir),
        probe_cache: false,
        ..ServiceConfig::default()
    })
    .expect("revived manager");
    let outcome = |id: u64| match revived.session(id).expect("restored").wait_terminal() {
        Phase::Done(result) => result.search,
        other => panic!("resumed run ended {}: {:?}", other.name(), other),
    };
    (outcome(a), outcome(b))
}

/// Parse the shared commit log into `(session, index)` pairs of durable
/// Append entries.
fn durable_appends(jdir: &std::path::Path) -> Vec<(u64, u64)> {
    let log = std::fs::read_to_string(commit_log_file(jdir)).expect("commit log readable");
    log.lines()
        .filter_map(|l| match serde_json::from_str(l) {
            Ok(CommitLogEntry::Append { session, index, .. }) => Some((session, index)),
            _ => None,
        })
        .collect()
}

/// Records actually present in a session's journal file (one per line).
fn file_records(jdir: &std::path::Path, id: u64) -> u64 {
    std::fs::read_to_string(mlcd_service::journal::journal_file(jdir, id))
        .map(|s| s.lines().count() as u64)
        .unwrap_or(0)
}

/// Kill between the group's log write and its fsync: simulated power
/// loss — nothing of the crashed group survives anywhere, every *acked*
/// record does, and both sessions resume bit-identical.
#[test]
fn kill_between_group_write_and_fsync_resumes_bit_identical() {
    let golden_a = uninterrupted(&spec("heterbo", 1)).digest();
    let golden_b = uninterrupted(&spec("cherrypick", 2)).digest();
    let (jdir, a, b) = crash_mid_group(CommitCrashPoint::BeforeFsync, "group-before");

    // Durable-prefix contract, rollback side: the crashed group was
    // rolled out of the log, so every surviving log entry was already
    // materialised into its session file before any ack.
    for (session, index) in durable_appends(&jdir) {
        assert!(
            file_records(&jdir, session) > index,
            "acked record {index} of session {session} must be in its file"
        );
    }

    let (ra, rb) = resume_pair(jdir, a, b);
    assert_eq!(ra.digest(), golden_a, "session a diverged after a before-fsync kill");
    assert_eq!(rb.digest(), golden_b, "session b diverged after a before-fsync kill");
}

/// Kill between the fsync and the record being acted on: the group is
/// durable in the shared log but missing from the session files. The
/// next start reconciles the log into the files, and both sessions
/// resume bit-identical.
#[test]
fn kill_between_fsync_and_acted_on_is_reconciled_and_resumes() {
    let golden_a = uninterrupted(&spec("heterbo", 1)).digest();
    let golden_b = uninterrupted(&spec("cherrypick", 2)).digest();
    let (jdir, a, b) = crash_mid_group(CommitCrashPoint::AfterFsync, "group-after");

    // Durable-prefix contract, repair side: the final fsync'd group
    // never reached the session files — the log must know records the
    // files lack.
    let appends = durable_appends(&jdir);
    let (last_session, last_index) = *appends.last().expect("the crashed group is in the log");
    assert!(
        file_records(&jdir, last_session) <= last_index,
        "the fsync'd-but-unacked record must be missing from its session file"
    );

    // Reconcile repairs the files from the log and then truncates the
    // log (the restart path runs this too; calling it here makes the
    // repair observable before any new appends land).
    mlcd_service::reconcile_commit_log(&jdir).expect("reconcile");
    assert!(
        file_records(&jdir, last_session) > last_index,
        "reconcile must replay the durable record into the session file"
    );
    assert_eq!(
        std::fs::metadata(commit_log_file(&jdir)).expect("log still exists").len(),
        0,
        "reconcile must truncate the commit log after repairing the files"
    );

    let (ra, rb) = resume_pair(jdir, a, b);
    assert_eq!(ra.digest(), golden_a, "session a diverged after an after-fsync kill");
    assert_eq!(rb.digest(), golden_b, "session b diverged after an after-fsync kill");
}

/// Every searcher the service accepts must feed the trace sink — the
/// journal, the crash hook, cooperative cancel and `watch` all hang off
/// it. (The baselines originally ignored their sink, which would leave
/// their journals empty and their sessions uncancellable.)
#[test]
fn every_searcher_streams_events_through_its_session() {
    for searcher in ["heterbo", "heterbo-parallel", "convbo", "cherrypick", "random", "exhaustive"]
    {
        let mgr = SessionManager::new(ServiceConfig {
            workers: 1,
            probe_cache: false,
            ..ServiceConfig::default()
        })
        .expect("manager");
        let mut s = SubmitSpec::new("resnet-cifar10", searcher, 7);
        s.types = Some(vec!["c5.xlarge".into(), "p2.xlarge".into()]);
        s.max_nodes = 8;
        let id = mgr.submit(s).expect("submit");
        let session = mgr.session(id).expect("session");
        let phase = session.wait_terminal();
        assert!(matches!(phase, Phase::Done(_)), "{searcher}: ended {}", phase.name());
        let (events, _) = session.next_events(0);
        assert!(!events.is_empty(), "{searcher}: session streamed no trace events");
    }
}
