//! Ground-truth performance-model benchmarks: one full-space sweep is
//! what `ExperimentRunner::optimum` and the exhaustive baseline pay per
//! call, and the simulator must keep it trivially cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd_cloudsim::InstanceType;
use mlcd_perfmodel::{PaleoEstimator, ThroughputModel, TrainingJob};
use std::hint::black_box;

fn bench_throughput_sweep(c: &mut Criterion) {
    let model = ThroughputModel::default();
    let jobs =
        [("resnet", TrainingJob::resnet_cifar10()), ("bert", TrainingJob::bert_tensorflow())];
    for (name, job) in jobs {
        c.bench_function(&format!("throughput_full_space_{name}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for t in InstanceType::all() {
                    for n in 1..=50u32 {
                        if let Ok(s) = model.throughput(black_box(&job), t, n) {
                            acc += s;
                        }
                    }
                }
                black_box(acc)
            })
        });
    }
}

fn bench_paleo_sweep(c: &mut Criterion) {
    let paleo = PaleoEstimator::default();
    let job = TrainingJob::resnet_cifar10();
    c.bench_function("paleo_full_space_resnet", |b| {
        b.iter(|| {
            let candidates: Vec<(InstanceType, u32)> =
                InstanceType::all().flat_map(|t| (1..=50u32).map(move |n| (t, n))).collect();
            black_box(paleo.pick_fastest(black_box(&job), &candidates))
        })
    });
}

criterion_group!(benches, bench_throughput_sweep, bench_paleo_sweep);
criterion_main!(benches);
