//! Cloudsim engine benchmarks.
//!
//! `cloudsim_step` prices the raw discrete-event core — scheduling,
//! tie-broken heap churn, lazy cancellation — in events per second.
//! `cloudsim_session` prices the full provider façade on a
//! revocation-heavy spot workload (launch → wait → long hold with
//! revocations delivered as queued events → settle), which is the shape
//! the profiler's batch waves and the service's concurrent sessions put
//! through the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd_cloudsim::catalog::InstanceType;
use mlcd_cloudsim::provider::SimCloud;
use mlcd_cloudsim::sim::{SimEngine, SimEvent};
use mlcd_cloudsim::time::{SimDuration, SimTime};
use std::hint::black_box;

/// Schedule `n` events across a small set of colliding timestamps, then
/// drain the engine dry. Returns the number dispatched.
fn schedule_and_drain(n: u64) -> u64 {
    let mut engine = SimEngine::new();
    for i in 0..n {
        // 97 buckets → heavy same-instant collisions, exercising the
        // (time, seq) tie-break rather than pure heap depth.
        let at = SimTime::from_secs((i % 97) as f64);
        engine.schedule(at, SimEvent::MetricTick { period: SimDuration::from_secs(60.0) });
    }
    let mut dispatched = 0;
    while engine.pop_next().is_some() {
        dispatched += 1;
    }
    dispatched
}

/// Like [`schedule_and_drain`] but cancelling every other event first, so
/// half the heap is dead weight the lazy purge has to skip over.
fn schedule_cancel_drain(n: u64) -> u64 {
    let mut engine = SimEngine::new();
    let mut ids = Vec::with_capacity(n as usize);
    for i in 0..n {
        let at = SimTime::from_secs((i % 97) as f64);
        ids.push(
            engine.schedule(at, SimEvent::MetricTick { period: SimDuration::from_secs(60.0) }),
        );
    }
    for id in ids.iter().step_by(2) {
        engine.cancel(*id);
    }
    let mut dispatched = 0;
    while engine.pop_next().is_some() {
        dispatched += 1;
    }
    dispatched
}

/// One revocation-heavy façade session: four big spot clusters held for a
/// 20-hour horizon each (most get revoked mid-hold), then settled.
fn spot_session(seed: u64) -> f64 {
    let cloud = SimCloud::new(seed);
    for _ in 0..4 {
        let c = cloud.launch_spot(InstanceType::C5Xlarge, 16).expect("within quota");
        cloud.wait_until_running(&c);
        // A revocation error is the expected common case here.
        let _ = cloud.run_for(&c, SimDuration::from_hours(20.0));
        cloud.terminate(&c);
    }
    cloud.billing().total_cost().dollars()
}

fn bench_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("cloudsim_step");
    g.bench_function("drain_10k", |b| b.iter(|| black_box(schedule_and_drain(black_box(10_000)))));
    g.bench_function("drain_10k_half_cancelled", |b| {
        b.iter(|| black_box(schedule_cancel_drain(black_box(10_000))))
    });
    g.finish();
}

fn bench_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("cloudsim_session");
    g.bench_function("spot_churn_8_seeds", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for seed in 0..8 {
                acc += spot_session(black_box(seed));
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_step, bench_session);
criterion_main!(benches);
