//! Ablation timings: the wall-clock cost of one HeterBO search with each
//! of the paper's mechanisms toggled off in turn (the *quality* side of
//! these ablations — probe spend, constraint compliance — is reported by
//! `figures`-style experiments and EXPERIMENTS.md; this bench answers
//! "does the mechanism itself cost anything to compute?").

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd::deployment::{Deployment, SearchSpace};
use mlcd::env::SyntheticEnv;
use mlcd::prelude::*;
use mlcd::search::{BoConfig, InitStrategy};
use std::hint::black_box;

fn speed(d: &Deployment) -> f64 {
    let base = match d.itype {
        InstanceType::C54xlarge => 1.0,
        InstanceType::C5Xlarge => 0.4,
        InstanceType::P2Xlarge => 0.5,
        _ => 0.3,
    };
    base * (500.0 - 0.9 * (d.n as f64 - 20.0).powi(2)).max(20.0)
}

fn make_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
    let job = TrainingJob::resnet_cifar10();
    let space = SearchSpace::new(
        &[InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
        50,
        &job,
        &ThroughputModel::default(),
    );
    SyntheticEnv::new(space, 5e6, speed as fn(&Deployment) -> f64)
}

fn heterbo_config() -> mlcd::search::BoConfigBuilder {
    BoConfig::builder()
        .init(InitStrategy::TypeSweep)
        .ei_rel_threshold(0.05)
        .ci_stop(true)
        .cost_penalty(true)
        .budget_guarded()
        .concave_prior(true)
        .max_steps(16)
        .min_obs_before_stop(6)
        .seed(1)
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("heterbo_ablations");
    g.sample_size(10);
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));

    let variants: Vec<(&str, BoConfig)> = vec![
        ("full", heterbo_config().build()),
        ("no_concave_prior", heterbo_config().concave_prior(false).build()),
        ("no_cost_penalty", heterbo_config().cost_penalty(false).build()),
        ("random_init", heterbo_config().init(InitStrategy::RandomPoints(3)).build()),
        ("no_reserve", heterbo_config().reserve_protection(false).build()),
    ];
    for (name, cfg) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let core = mlcd::search::bo::BoCore::new("ablation", cfg.clone());
                let mut env = make_env();
                black_box(mlcd::search::Searcher::search(&core, &mut env, &scenario))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
