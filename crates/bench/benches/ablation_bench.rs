//! Ablation timings: the wall-clock cost of one HeterBO search with each
//! of the paper's mechanisms toggled off in turn (the *quality* side of
//! these ablations — probe spend, constraint compliance — is reported by
//! `figures`-style experiments and EXPERIMENTS.md; this bench answers
//! "does the mechanism itself cost anything to compute?").

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd::deployment::{Deployment, SearchSpace};
use mlcd::env::SyntheticEnv;
use mlcd::prelude::*;
use mlcd::search::{BoConfig, InitStrategy};
use std::hint::black_box;

fn speed(d: &Deployment) -> f64 {
    let base = match d.itype {
        InstanceType::C54xlarge => 1.0,
        InstanceType::C5Xlarge => 0.4,
        InstanceType::P2Xlarge => 0.5,
        _ => 0.3,
    };
    base * (500.0 - 0.9 * (d.n as f64 - 20.0).powi(2)).max(20.0)
}

fn make_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
    let job = TrainingJob::resnet_cifar10();
    let space = SearchSpace::new(
        &[InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
        50,
        &job,
        &ThroughputModel::default(),
    );
    SyntheticEnv::new(space, 5e6, speed as fn(&Deployment) -> f64)
}

fn heterbo_config() -> BoConfig {
    BoConfig {
        init: InitStrategy::TypeSweep,
        ei_rel_threshold: 0.05,
        ci_stop: true,
        cost_penalty: true,
        constraint_aware: true,
        reserve_protection: true,
        concave_prior: true,
        max_steps: 16,
        min_obs_before_stop: 6,
        account_sunk: true,
        parallel_init: false,
        acquisition: mlcd::acquisition::AcquisitionKind::ExpectedImprovement,
        gp_refit_every: 1,
        gp_warm_start: false,
        gp_warm_burnin: 8,
        gp_warm_restarts: 3,
        seed: 1,
    }
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("heterbo_ablations");
    g.sample_size(10);
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));

    let variants: Vec<(&str, BoConfig)> = vec![
        ("full", heterbo_config()),
        ("no_concave_prior", BoConfig { concave_prior: false, ..heterbo_config() }),
        ("no_cost_penalty", BoConfig { cost_penalty: false, ..heterbo_config() }),
        ("random_init", BoConfig { init: InitStrategy::RandomPoints(3), ..heterbo_config() }),
        ("no_reserve", BoConfig { reserve_protection: false, ..heterbo_config() }),
    ];
    for (name, cfg) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let core = mlcd::search::bo::BoCore::new("ablation", cfg.clone());
                let mut env = make_env();
                black_box(mlcd::search::Searcher::search(&core, &mut env, &scenario))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
