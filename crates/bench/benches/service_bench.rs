//! Service-layer benchmarks: what the session manager adds on top of a
//! bare search. `service_submit_throughput` drains a batch of sessions
//! through the bounded worker pool end-to-end — submit, queue, search,
//! complete — so it prices the whole pipeline, not just the searcher.
//! The cache-on variant reuses one job across the batch, so every
//! session after the first is served from the shared probe cache; the
//! gap between the two is the paper's heterogeneous-profiling-cost
//! point restated as a service property: exploration paid once is free
//! for every later tenant. The journal variant adds per-record fsync —
//! the durability tax.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd_service::{Phase, ServiceConfig, SessionManager, SubmitSpec};
use std::hint::black_box;

fn spec(job: &str, seed: u64) -> SubmitSpec {
    let mut s = SubmitSpec::new(job, "random", seed);
    s.types = Some(vec!["c5.xlarge".into(), "p2.xlarge".into()]);
    s.max_nodes = 8;
    s
}

/// Submit `n` sessions, wait for all of them, panic on any non-Done.
fn drain(cfg: ServiceConfig, specs: &[SubmitSpec]) -> usize {
    let mgr = SessionManager::new(cfg).expect("manager");
    let ids: Vec<u64> = specs.iter().map(|s| mgr.submit(s.clone()).expect("submit")).collect();
    let mut probes = 0usize;
    for id in ids {
        match mgr.session(id).expect("session").wait_terminal() {
            Phase::Done(result) => probes += result.search.n_probes(),
            other => panic!("session {id} ended {}", other.name()),
        }
    }
    probes
}

fn bench_submit_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_submit_throughput");
    g.sample_size(10);

    // Same job eight times: after the first session every probe is a
    // cache hit, so this is the steady-state multi-tenant case.
    let shared: Vec<SubmitSpec> = (0..8).map(|i| spec("resnet-cifar10", 100 + i)).collect();
    g.bench_function("8_sessions_shared_cache", |b| {
        b.iter(|| {
            black_box(drain(
                ServiceConfig { workers: 2, queue_cap: 16, ..ServiceConfig::default() },
                &shared,
            ))
        })
    });
    g.bench_function("8_sessions_cache_off", |b| {
        b.iter(|| {
            black_box(drain(
                ServiceConfig {
                    workers: 2,
                    queue_cap: 16,
                    probe_cache: false,
                    ..ServiceConfig::default()
                },
                &shared,
            ))
        })
    });

    // Journaling tax: same batch, every journaled event fsync'd.
    g.bench_function("8_sessions_journaled", |b| {
        let dir = std::env::temp_dir().join(format!("mlcd-bench-journal-{}", std::process::id()));
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            black_box(drain(
                ServiceConfig {
                    workers: 2,
                    queue_cap: 16,
                    journal_dir: Some(dir.clone()),
                    ..ServiceConfig::default()
                },
                &shared,
            ))
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.finish();
}

criterion_group!(benches, bench_submit_throughput);
criterion_main!(benches);
