//! Service-layer benchmarks: what the session manager adds on top of a
//! bare search. `service_submit_throughput` drains a batch of sessions
//! through the bounded worker pool end-to-end — submit, queue, search,
//! complete — so it prices the whole pipeline, not just the searcher.
//! The cache-on variant reuses one job across the batch, so every
//! session after the first is served from the shared probe cache; the
//! gap between the two is the paper's heterogeneous-profiling-cost
//! point restated as a service property: exploration paid once is free
//! for every later tenant. The journal variant adds per-record fsync —
//! the durability tax.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd_service::{Phase, ServiceConfig, SessionManager, SubmitSpec};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn spec(job: &str, seed: u64) -> SubmitSpec {
    let mut s = SubmitSpec::new(job, "random", seed);
    s.types = Some(vec!["c5.xlarge".into(), "p2.xlarge".into()]);
    s.max_nodes = 8;
    s
}

/// Submit `n` sessions, wait for all of them, panic on any non-Done.
fn drain(cfg: ServiceConfig, specs: &[SubmitSpec]) -> usize {
    let mgr = SessionManager::new(cfg).expect("manager");
    let ids: Vec<u64> = specs.iter().map(|s| mgr.submit(s.clone()).expect("submit")).collect();
    let mut probes = 0usize;
    for id in ids {
        match mgr.session(id).expect("session").wait_terminal() {
            Phase::Done(result) => probes += result.search.n_probes(),
            other => panic!("session {id} ended {}", other.name()),
        }
    }
    probes
}

fn bench_submit_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_submit_throughput");
    g.sample_size(10);

    // Same job eight times: after the first session every probe is a
    // cache hit, so this is the steady-state multi-tenant case.
    let shared: Vec<SubmitSpec> = (0..8).map(|i| spec("resnet-cifar10", 100 + i)).collect();
    g.bench_function("8_sessions_shared_cache", |b| {
        b.iter(|| {
            black_box(drain(
                ServiceConfig { workers: 2, queue_cap: 16, ..ServiceConfig::default() },
                &shared,
            ))
        })
    });
    g.bench_function("8_sessions_cache_off", |b| {
        b.iter(|| {
            black_box(drain(
                ServiceConfig {
                    workers: 2,
                    queue_cap: 16,
                    probe_cache: false,
                    ..ServiceConfig::default()
                },
                &shared,
            ))
        })
    });

    // Journaling tax: same batch, every journaled event fsync'd.
    g.bench_function("8_sessions_journaled", |b| {
        let dir = std::env::temp_dir().join(format!("mlcd-bench-journal-{}", std::process::id()));
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            black_box(drain(
                ServiceConfig {
                    workers: 2,
                    queue_cap: 16,
                    journal_dir: Some(dir.clone()),
                    ..ServiceConfig::default()
                },
                &shared,
            ))
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.finish();
}

// ---- saturation: sessions/s and submit latency vs. concurrency -------
//
// `service_saturation` drives C concurrent submitter threads, each
// pushing a stream of journaled sessions through the pool, with the
// journal in group-commit mode vs. the per-append-fsync baseline. It
// does its own timing (whole-fleet wall clock and per-submit latency
// percentiles don't fit criterion's per-iteration model) and appends
// records to the `CRITERION_JSON` stream in the shim's own JSONL shape,
// so `bench_report` folds them like any other bench:
//
//   service_saturation/{group|fsync_each}/c{C}/ns_per_session
//   service_saturation/{group|fsync_each}/c{C}/p99_submit_ns
//
// Knobs: `MLCD_SAT_QUICK=1` shrinks it to one small concurrency level
// (the CI smoke job); `MLCD_SAT_WORKERS=N` overrides the fixed worker
// pool; without `--bench` (i.e. under `cargo test`) it runs a minimal
// single-shot smoke pass.

/// One saturation run: C submitter threads × `per` sessions each, all
/// journaled, drained to Done. Returns (total wall ns, per-submit
/// latencies in ns).
fn run_saturation(group_commit: bool, conc: usize, per: usize, jdir: &Path) -> (f64, Vec<u64>) {
    let _ = std::fs::remove_dir_all(jdir);
    std::fs::create_dir_all(jdir).expect("bench journal dir");
    // A fixed worker pool, deliberately decoupled from submitter
    // concurrency: the server's pool is sized to the host, and the
    // question the curve answers is how throughput and submit latency
    // respond as ever more *clients* pile onto that fixed pool.
    // `MLCD_SAT_WORKERS` overrides for experiments.
    let workers: usize =
        std::env::var("MLCD_SAT_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let mgr = Arc::new(
        SessionManager::new(ServiceConfig {
            workers,
            queue_cap: conc * per + 16,
            journal_dir: Some(jdir.to_path_buf()),
            probe_cache: false,
            group_commit,
            shards: 16,
            ..ServiceConfig::default()
        })
        .expect("manager"),
    );
    let start = Instant::now();
    let handles: Vec<std::thread::JoinHandle<(Vec<u64>, Vec<u64>)>> = (0..conc)
        .map(|t| {
            let mgr = mgr.clone();
            std::thread::spawn(move || {
                let mut ids = Vec::with_capacity(per);
                let mut lats = Vec::with_capacity(per);
                for k in 0..per {
                    let s = spec("resnet-cifar10", (t * per + k) as u64);
                    let t0 = Instant::now();
                    let id = mgr.submit(s).expect("submit");
                    lats.push(t0.elapsed().as_nanos() as u64);
                    ids.push(id);
                }
                (ids, lats)
            })
        })
        .collect();
    let mut ids = Vec::new();
    let mut lats = Vec::new();
    for h in handles {
        let (i, l) = h.join().expect("submitter");
        ids.extend(i);
        lats.extend(l);
    }
    for id in ids {
        match mgr.session(id).expect("session").wait_terminal() {
            Phase::Done(_) => {}
            other => panic!("session {id} ended {}", other.name()),
        }
    }
    let wall_ns = start.elapsed().as_nanos() as f64;
    drop(mgr);
    let _ = std::fs::remove_dir_all(jdir);
    (wall_ns, lats)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Append one record to the `CRITERION_JSON` stream in the shim's JSONL
/// shape, so `bench_report` folds it like a criterion-timed bench.
fn emit_record(name: &str, min: f64, median: f64, max: f64, samples: usize, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else { return };
    if path.is_empty() {
        return;
    }
    use std::io::Write as _;
    let line = format!(
        "{{\"name\":\"{name}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"max_ns\":{max:.1},\"samples\":{samples},\"iters\":{iters}}}\n"
    );
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("service_bench: failed to append to {path}: {e}");
    }
}

fn bench_saturation(_c: &mut Criterion) {
    // Mirror the shim's CLI handling: first non-flag arg is a substring
    // filter, `--bench` switches from smoke to full measurement.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    if let Some(pat) = &filter {
        if !"service_saturation".contains(pat.as_str()) {
            return;
        }
    }
    let full = std::env::args().any(|a| a == "--bench");
    let quick = std::env::var("MLCD_SAT_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");

    let (concs, per, repeats): (&[usize], usize, usize) = if !full {
        (&[2], 1, 1) // `cargo test` smoke: prove the path runs.
    } else if quick {
        (&[8], 2, 1) // CI smoke: small but real, still emits records.
    } else {
        (&[8, 64], 8, 5)
    };

    let base: PathBuf =
        std::env::temp_dir().join(format!("mlcd-bench-saturation-{}", std::process::id()));
    for &conc in concs {
        // Interleave the two modes repeat-by-repeat: back-to-back pairs
        // see the same I/O weather, so drift in disk latency across the
        // measurement shifts both modes rather than biasing their ratio.
        let modes = [("group", true), ("fsync_each", false)];
        let mut samples: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); modes.len()];
        let total = (conc * per) as f64;
        for _ in 0..repeats {
            for (m, (_, group_commit)) in modes.iter().enumerate() {
                let (wall_ns, mut lats) = run_saturation(*group_commit, conc, per, &base);
                lats.sort_unstable();
                samples[m].0.push(wall_ns / total);
                samples[m].1.push(percentile(&lats, 0.99) as f64);
            }
        }
        for (m, (mode, _)) in modes.iter().enumerate() {
            let (ref mut per_session, ref mut p99s) = samples[m];
            per_session.sort_by(|a, b| a.total_cmp(b));
            p99s.sort_by(|a, b| a.total_cmp(b));
            let med = per_session[per_session.len() / 2];
            let name = format!("service_saturation/{mode}/c{conc}");
            println!(
                "{name:<40} {:>9.0} sessions/s   p99 submit {:.2} ms   ({} sessions × {} runs)",
                1e9 / med,
                p99s[p99s.len() / 2] / 1e6,
                conc * per,
                repeats,
            );
            emit_record(
                &format!("{name}/ns_per_session"),
                per_session[0],
                med,
                per_session[per_session.len() - 1],
                repeats,
                (conc * per) as u64,
            );
            emit_record(
                &format!("{name}/p99_submit_ns"),
                p99s[0],
                p99s[p99s.len() / 2],
                p99s[p99s.len() - 1],
                repeats,
                (conc * per) as u64,
            );
        }
    }
}

criterion_group!(benches, bench_submit_throughput, bench_saturation);
criterion_main!(benches);
