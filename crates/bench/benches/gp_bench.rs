//! GP machinery micro-benchmarks: hyperparameter fitting and posterior
//! prediction as the observation count grows (a BO run refits after every
//! probe, so fit cost × probes is the searcher's own compute bill).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcd_gp::{FitOptions, GpModel, KernelFamily};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn dataset(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect()).collect();
    let ys: Vec<f64> =
        xs.iter().map(|x| (x[0] * 6.0).sin() + x.iter().sum::<f64>() * 0.3).collect();
    (xs, ys)
}

fn bench_fit(c: &mut Criterion) {
    // The fast path: cached distance workspace + allocation-free Cholesky
    // (the `FitOptions` default). `gp_fit_naive` below is the same search
    // through the entry-by-entry reference likelihood — the pre-fast-path
    // behaviour — kept benchable for before/after comparisons.
    let mut g = c.benchmark_group("gp_fit");
    g.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let (xs, ys) = dataset(n, 5, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                GpModel::fit(
                    black_box(&xs),
                    black_box(&ys),
                    KernelFamily::Matern52,
                    &FitOptions::default(),
                )
                .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("gp_fit_naive");
    g.sample_size(10);
    let naive = FitOptions { use_cached_nlml: false, ..FitOptions::default() };
    for n in [8usize, 16, 32, 64] {
        let (xs, ys) = dataset(n, 5, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                GpModel::fit(black_box(&xs), black_box(&ys), KernelFamily::Matern52, &naive)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_warm_refit(c: &mut Criterion) {
    // A BO-loop refit: the previous step's optimum seeds the optimiser and
    // (past the burn-in) the Latin-hypercube restart budget shrinks from 8
    // to 3 — compare against the cold fit of the same data in `gp_fit`.
    let mut g = c.benchmark_group("gp_refit_warm");
    g.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let (xs, ys) = dataset(n, 5, 42);
        let cold =
            mlcd_gp::fit::fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &FitOptions::default())
                .unwrap();
        let warm = FitOptions { warm_start: Some(cold.theta), ..FitOptions::default() };
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                GpModel::fit(black_box(&xs), black_box(&ys), KernelFamily::Matern52, &warm).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp_predict_950_candidates");
    for n in [10usize, 40] {
        let (xs, ys) = dataset(n, 5, 7);
        let gp = GpModel::fit(&xs, &ys, KernelFamily::Matern52, &FitOptions::default()).unwrap();
        let (grid, _) = dataset(950, 5, 9);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let preds = gp.predict_batch(black_box(&grid));
                black_box(preds.len())
            })
        });
    }
    g.finish();
}

fn bench_incremental_vs_refit(c: &mut Criterion) {
    // The BO loop adds one observation per step: compare extending the
    // posterior (O(n²), fixed hyperparameters) against a full
    // marginal-likelihood refit (multi-start O(n³)).
    let mut g = c.benchmark_group("gp_add_one_observation");
    g.sample_size(10);
    for n in [10usize, 30] {
        let (xs, ys) = dataset(n, 5, 11);
        let gp = GpModel::fit(&xs, &ys, KernelFamily::Matern52, &FitOptions::default()).unwrap();
        let (new_x, new_y) = {
            let (mut nx, ny) = dataset(1, 5, 99);
            (nx.pop().unwrap(), ny[0])
        };
        g.bench_with_input(BenchmarkId::new("extend", n), &n, |b, _| {
            b.iter(|| black_box(gp.extend(new_x.clone(), new_y).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("full_refit", n), &n, |b, _| {
            b.iter(|| {
                let mut xs2 = xs.clone();
                xs2.push(new_x.clone());
                let mut ys2 = ys.clone();
                ys2.push(new_y);
                black_box(
                    GpModel::fit(&xs2, &ys2, KernelFamily::Matern52, &FitOptions::default())
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fit, bench_warm_refit, bench_predict, bench_incremental_vs_refit);
criterion_main!(benches);
