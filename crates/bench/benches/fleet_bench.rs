//! Fleet-planning benchmarks: speed and quality of multi-job scheduling
//! on a shared capacity pool.
//!
//! `fleet_run` prices a whole contended fleet simulation end-to-end
//! (arrivals, strict-handoff tenant threads, policy arbitration, search,
//! training) per policy, so it is the wall-clock cost of one
//! `mlcd-fleet run`. The quality pass is not a timing bench at all: it
//! runs every policy once on the contended presets, compares aggregate
//! cost against the isolated per-job greedy baseline, and appends
//! `fleet_quality/...` records (a `metrics` object instead of timing
//! fields) to the `CRITERION_JSON` stream for `bench_report` to fold
//! into `BENCH_fleet.json`. Those metrics are bit-deterministic: the
//! fleet digest contract makes two runs of the same scenario identical.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd_fleet::{per_job_greedy_cost, policy_by_name, FleetScenario, FleetSim, POLICY_NAMES};
use std::hint::black_box;

fn run_fleet(level: u8, seed: u64, policy: &str) -> mlcd_fleet::FleetOutcome {
    let scenario = FleetScenario::contended(level, seed);
    let policy = policy_by_name(policy).expect("known policy");
    FleetSim::new(scenario, policy).run()
}

fn bench_fleet_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_run");
    g.sample_size(10);
    for policy in POLICY_NAMES {
        g.bench_function(format!("c1/{policy}"), |b| {
            b.iter(|| black_box(run_fleet(black_box(1), 2020, policy).agg.total_cost.dollars()))
        });
    }
    g.finish();
}

/// Append one quality record to the `CRITERION_JSON` stream. Unlike the
/// timing records these carry a `metrics` object; `bench_report`
/// surfaces them verbatim under its `fleet_quality` section.
fn emit_quality(name: &str, metrics: &serde_json::Value) {
    let Ok(path) = std::env::var("CRITERION_JSON") else { return };
    if path.is_empty() {
        return;
    }
    use std::io::Write as _;
    let record = serde_json::json!({ "name": name, "metrics": metrics });
    let line = format!("{}\n", serde_json::to_string(&record).expect("record serialises"));
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("fleet_bench: failed to append to {path}: {e}");
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Quality pass: every policy on the contended presets vs. the isolated
/// per-job greedy baseline. Deterministic, so one run per point is the
/// whole measurement.
fn bench_fleet_quality(_c: &mut Criterion) {
    // Mirror the shim's CLI handling (see service_bench): a substring
    // filter skips us, and without `--bench` run the cheapest level only
    // as a smoke pass.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    if let Some(pat) = &filter {
        if !"fleet_quality".contains(pat.as_str()) {
            return;
        }
    }
    let full = std::env::args().any(|a| a == "--bench");
    let levels: &[u8] = if full { &[1, 2, 3] } else { &[1] };
    let seed = 2020u64;

    for &level in levels {
        let scenario = FleetScenario::contended(level, seed);
        let greedy = per_job_greedy_cost(&scenario).dollars();
        emit_quality(
            &format!("fleet_baseline/c{level}/per_job_greedy"),
            &serde_json::json!({ "total_cost_usd": round2(greedy) }),
        );
        for policy in POLICY_NAMES {
            let out = run_fleet(level, seed, policy);
            let cost = out.agg.total_cost.dollars();
            let saving_pct = round2(100.0 * (greedy - cost) / greedy);
            println!(
                "fleet_quality/c{level}/{policy:<9} cost ${cost:>8.2}  saving {saving_pct:>5.1}%  \
                 missed {}/{}  util {:.2}",
                out.agg.missed, out.agg.deadline_jobs, out.agg.utilization,
            );
            emit_quality(
                &format!("fleet_quality/c{level}/{policy}"),
                &serde_json::json!({
                    "total_cost_usd": round2(cost),
                    "saving_vs_greedy_pct": saving_pct,
                    "deadline_jobs": out.agg.deadline_jobs,
                    "missed": out.agg.missed,
                    "miss_rate": round2(out.agg.miss_rate()),
                    "granted": out.agg.granted,
                    "denied": out.agg.denied,
                    "mean_queue_hours": round2(out.agg.mean_queue_hours),
                    "utilization": round2(out.agg.utilization),
                    "makespan_hours": round2(out.agg.makespan_hours),
                    "sim_jobs_per_hour":
                        round2(f64::from(out.agg.completed) / out.agg.makespan_hours),
                }),
            );
        }
    }
}

criterion_group!(benches, bench_fleet_run, bench_fleet_quality);
criterion_main!(benches);
