//! Acquisition-sweep benchmarks: scoring every candidate in the grid is
//! the per-step inner loop of every BO searcher. Includes the serial vs
//! rayon comparison the hpc-parallel guides motivate — the grid is small
//! enough that the parallel win is modest, which is worth knowing before
//! reaching for threads in the search loop itself.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd::acquisition::expected_improvement;
use mlcd_gp::{FitOptions, GpModel, KernelFamily, Prediction};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::hint::black_box;

fn setup(n_obs: usize, grid: usize) -> (GpModel, Vec<Vec<f64>>) {
    let mut rng = SmallRng::seed_from_u64(5);
    let xs: Vec<Vec<f64>> =
        (0..n_obs).map(|_| (0..5).map(|_| rng.gen::<f64>()).collect()).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 4.0).sin() + x[4]).collect();
    let gp = GpModel::fit(&xs, &ys, KernelFamily::Matern52, &FitOptions::default()).unwrap();
    let pts: Vec<Vec<f64>> =
        (0..grid).map(|_| (0..5).map(|_| rng.gen::<f64>()).collect()).collect();
    (gp, pts)
}

fn bench_ei_grid(c: &mut Criterion) {
    let (gp, grid) = setup(20, 950);
    let best = 1.2;

    c.bench_function("ei_grid_950_serial", |b| {
        b.iter(|| {
            let best_candidate = grid
                .iter()
                .map(|x| expected_improvement(&gp.predict(x), best, 0.0))
                .fold(0.0_f64, f64::max);
            black_box(best_candidate)
        })
    });

    c.bench_function("ei_grid_950_rayon", |b| {
        b.iter(|| {
            let best_candidate = grid
                .par_iter()
                .map(|x| expected_improvement(&gp.predict(x), best, 0.0))
                .reduce(|| 0.0_f64, f64::max);
            black_box(best_candidate)
        })
    });
}

fn bench_ei_scalar(c: &mut Criterion) {
    let pred = Prediction { mean: 1.0, var: 0.25, var_with_noise: 0.3 };
    c.bench_function("ei_single_eval", |b| {
        b.iter(|| black_box(expected_improvement(black_box(&pred), 1.1, 0.0)))
    });
}

criterion_group!(benches, bench_ei_grid, bench_ei_scalar);
criterion_main!(benches);
