//! End-to-end searcher benchmarks on a synthetic response surface: the
//! wall-clock cost of the search *algorithms* themselves (GP refits +
//! acquisition sweeps), with the profiling environment free.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd::deployment::{Deployment, SearchSpace};
use mlcd::env::SyntheticEnv;
use mlcd::prelude::*;
use mlcd::search::bo::BoCore;
use mlcd::search::surrogate::Surrogate;
use mlcd::search::{BoConfig, CherryPick, ConvBo, InitStrategy, RandomSearch};
use std::hint::black_box;

fn speed(d: &Deployment) -> f64 {
    let base = match d.itype {
        InstanceType::C54xlarge => 1.0,
        InstanceType::C5Xlarge => 0.4,
        InstanceType::P2Xlarge => 0.5,
        _ => 0.3,
    };
    base * (500.0 - 0.9 * (d.n as f64 - 20.0).powi(2)).max(20.0)
}

fn make_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
    let job = TrainingJob::resnet_cifar10();
    let space = SearchSpace::new(
        &[InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
        50,
        &job,
        &ThroughputModel::default(),
    );
    SyntheticEnv::new(space, 5e6, speed as fn(&Deployment) -> f64)
}

fn bench_searchers(c: &mut Criterion) {
    let mut g = c.benchmark_group("search_end_to_end");
    g.sample_size(10);
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));

    g.bench_function("heterbo", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(HeterBo::seeded(1).search(&mut env, &scenario))
        })
    });
    g.bench_function("convbo", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(ConvBo::seeded(1).search(&mut env, &scenario))
        })
    });
    g.bench_function("cherrypick", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(CherryPick::seeded(1).search(&mut env, &scenario))
        })
    });
    g.bench_function("random_k12", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(RandomSearch::new(12, 1).search(&mut env, &scenario))
        })
    });
    g.finish();
}

/// The Fig 9 scale-out workload as one `EvalGrid`: HeterBO on
/// ResNet/CIFAR-10 over the C5.4xlarge scale-out space, FastestUnlimited,
/// four seeds — the same simulated end-to-end path `figures fig9` runs.
fn fig9_grid(seed: u64) -> mlcd::prelude::EvalReport {
    EvalGrid::new(TrainingJob::resnet_cifar10())
        .searcher("heterbo", |s| Box::new(HeterBo::seeded(s)))
        .scenario(Scenario::FastestUnlimited)
        .seeds((0..4).map(|i| seed + i * 97))
        .with_runner(|s| ExperimentRunner::new(s).with_types(vec![InstanceType::C54xlarge]))
        .run()
}

fn bench_fig9_scenario(c: &mut Criterion) {
    // The paper-figure workload, at grid width 1 (every cell on the bench
    // thread) and width 4 (one thread per seed). Cells self-seed, so both
    // widths produce bit-identical reports; the n=4 point shows how much
    // of the single-cell win survives memory-bandwidth sharing.
    let mut g = c.benchmark_group("search_end_to_end");
    g.sample_size(10);
    let pool1 = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("pool n=1");
    let pool4 = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool n=4");
    g.bench_function("fig9_heterbo_n1", |b| b.iter(|| pool1.install(|| black_box(fig9_grid(11)))));
    g.bench_function("fig9_heterbo_n4", |b| b.iter(|| pool4.install(|| black_box(fig9_grid(11)))));
    g.finish();
}

fn bench_warm_vs_cold_refits(c: &mut Criterion) {
    // Whole-search effect of the warm-started refit policy: the same
    // ConvBO-style long search (28 steps, refit every observation) with
    // warm starts on (previous optimum seeds the optimiser, restart
    // budget shrinks past the burn-in) versus off (every refit pays the
    // full 8-restart multi-start from scratch).
    let mut g = c.benchmark_group("search_gp_refits");
    g.sample_size(10);
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));
    let warm_base = || {
        BoConfig::builder()
            .init(InitStrategy::RandomPoints(2))
            .ei_rel_threshold(0.001)
            .max_steps(28)
            .min_obs_before_stop(12)
            .gp_warm_start(true)
            .seed(1)
    };
    let base = warm_base().build();
    let cold = warm_base().gp_warm_start(false).build();
    g.bench_function("warm_refits", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(BoCore::new("warm", base.clone()).search(&mut env, &scenario))
        })
    });
    g.bench_function("cold_refits", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(BoCore::new("cold", cold.clone()).search(&mut env, &scenario))
        })
    });
    g.finish();
}

fn bench_candidate_scoring(c: &mut Criterion) {
    // The BO step used to predict every unprobed candidate once in the
    // scoring loop and a second time in the CI-stop scan; the batched
    // path computes all posteriors in one blocked solve against the
    // cached Cholesky factor and reuses them for both. This group
    // measures exactly that before/after on a mid-search state (12
    // observations, ~140 remaining candidates).
    let env = make_env();
    let space = env.space();
    let observations: Vec<Observation> = [
        (InstanceType::C5Xlarge, 1u32),
        (InstanceType::C5Xlarge, 25),
        (InstanceType::C5Xlarge, 50),
        (InstanceType::C54xlarge, 5),
        (InstanceType::C54xlarge, 15),
        (InstanceType::C54xlarge, 22),
        (InstanceType::C54xlarge, 30),
        (InstanceType::C54xlarge, 42),
        (InstanceType::P2Xlarge, 3),
        (InstanceType::P2Xlarge, 18),
        (InstanceType::P2Xlarge, 33),
        (InstanceType::P2Xlarge, 48),
    ]
    .iter()
    .map(|&(itype, n)| {
        let d = Deployment::new(itype, n);
        Observation {
            deployment: d,
            speed: speed(&d),
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.5),
        }
    })
    .collect();
    let surrogate = Surrogate::fit(space, &observations, 7).expect("fits");
    let candidates: Vec<Deployment> = space
        .candidates()
        .iter()
        .filter(|d| !observations.iter().any(|o| o.deployment == **d))
        .copied()
        .collect();

    let mut g = c.benchmark_group("candidate_scoring");
    g.bench_function("per_point_two_passes", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in &candidates {
                acc += surrogate.predict(space, d).mean; // scoring pass
            }
            for d in &candidates {
                acc += surrogate.predict(space, d).var; // CI-stop pass
            }
            black_box(acc)
        })
    });
    g.bench_function("batched_single_pass", |b| {
        b.iter(|| {
            let preds = surrogate.predict_batch(space, &candidates);
            black_box(preds.iter().map(|p| p.mean + p.var).sum::<f64>())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_searchers,
    bench_fig9_scenario,
    bench_warm_vs_cold_refits,
    bench_candidate_scoring
);
criterion_main!(benches);
