//! End-to-end searcher benchmarks on a synthetic response surface: the
//! wall-clock cost of the search *algorithms* themselves (GP refits +
//! acquisition sweeps), with the profiling environment free.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcd::deployment::{Deployment, SearchSpace};
use mlcd::env::SyntheticEnv;
use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo, RandomSearch};
use std::hint::black_box;

fn speed(d: &Deployment) -> f64 {
    let base = match d.itype {
        InstanceType::C54xlarge => 1.0,
        InstanceType::C5Xlarge => 0.4,
        InstanceType::P2Xlarge => 0.5,
        _ => 0.3,
    };
    base * (500.0 - 0.9 * (d.n as f64 - 20.0).powi(2)).max(20.0)
}

fn make_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
    let job = TrainingJob::resnet_cifar10();
    let space = SearchSpace::new(
        &[InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
        50,
        &job,
        &ThroughputModel::default(),
    );
    SyntheticEnv::new(space, 5e6, speed as fn(&Deployment) -> f64)
}

fn bench_searchers(c: &mut Criterion) {
    let mut g = c.benchmark_group("search_end_to_end");
    g.sample_size(10);
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));

    g.bench_function("heterbo", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(HeterBo::seeded(1).search(&mut env, &scenario))
        })
    });
    g.bench_function("convbo", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(ConvBo::seeded(1).search(&mut env, &scenario))
        })
    });
    g.bench_function("cherrypick", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(CherryPick::seeded(1).search(&mut env, &scenario))
        })
    });
    g.bench_function("random_k12", |b| {
        b.iter(|| {
            let mut env = make_env();
            black_box(RandomSearch::new(12, 1).search(&mut env, &scenario))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_searchers);
criterion_main!(benches);
