#![warn(missing_docs)]

//! Benchmark harness regenerating every figure of the paper's evaluation.
//!
//! The paper's evaluation (§V) consists of Figures 1–3, 5 and 9–19 (it has
//! no numbered tables). `cargo run -p mlcd-bench --bin figures --release --
//! <id>|all` regenerates the rows/series each figure plots; the Criterion
//! benches under `benches/` measure the computational cost of the machinery
//! itself (GP fits, acquisition sweeps, search loops) plus the ablation
//! timings.
//!
//! Each figure module returns a [`report::FigReport`] — a printable text
//! block plus a machine-readable JSON value that EXPERIMENTS.md is built
//! from.

pub mod figures;
pub mod report;

pub use report::FigReport;

/// Default seed used by the figure harness (override with `--seed`).
pub const DEFAULT_SEED: u64 = 2020;
