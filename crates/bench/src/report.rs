//! Figure-report plumbing: text tables + JSON series.

use serde::Serialize;
use serde_json::Value;

/// One regenerated figure.
#[derive(Debug, Clone, Serialize)]
pub struct FigReport {
    /// Figure id, e.g. `"fig9"`.
    pub id: &'static str,
    /// One-line description of what the paper's figure shows.
    pub title: &'static str,
    /// Pre-formatted text lines (the "rows/series the paper reports").
    pub lines: Vec<String>,
    /// Machine-readable data behind the lines.
    pub data: Value,
    /// Shape checks: the qualitative claims the paper makes about this
    /// figure, evaluated against our regenerated data.
    pub claims: Vec<Claim>,
}

/// One qualitative claim and whether the regenerated data exhibits it.
#[derive(Debug, Clone, Serialize)]
pub struct Claim {
    /// Statement of the claim.
    pub statement: String,
    /// Did the regenerated data show it?
    pub holds: bool,
}

impl FigReport {
    /// New empty report.
    pub fn new(id: &'static str, title: &'static str) -> Self {
        FigReport { id, title, lines: Vec::new(), data: Value::Null, claims: Vec::new() }
    }

    /// Append a text line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Record a claim check.
    pub fn claim(&mut self, statement: impl Into<String>, holds: bool) {
        self.claims.push(Claim { statement: statement.into(), holds });
    }

    /// Whether every claim held.
    pub fn all_claims_hold(&self) -> bool {
        self.claims.iter().all(|c| c.holds)
    }

    /// Render the whole report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        if !self.claims.is_empty() {
            out.push_str("-- shape checks --\n");
            for c in &self.claims {
                out.push_str(&format!(
                    "[{}] {}\n",
                    if c.holds { "PASS" } else { "FAIL" },
                    c.statement
                ));
            }
        }
        out
    }
}

/// Format an `f64` with thousands separators for sample counts.
pub fn fmt_speed(v: f64) -> String {
    format!("{v:.0}")
}

/// Format hours.
pub fn fmt_h(h: f64) -> String {
    format!("{h:.2} h")
}

/// Format dollars.
pub fn fmt_usd(d: f64) -> String {
    format!("${d:.2}")
}

/// A compact breakdown row used by several figures: searcher, profiling
/// time/cost, training time/cost, totals, constraint satisfaction.
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Searcher name.
    pub name: String,
    /// Profiling hours.
    pub profile_h: f64,
    /// Profiling dollars.
    pub profile_usd: f64,
    /// Training hours.
    pub train_h: f64,
    /// Training dollars.
    pub train_usd: f64,
    /// Total hours.
    pub total_h: f64,
    /// Total dollars.
    pub total_usd: f64,
    /// Constraint satisfied?
    pub satisfied: bool,
    /// Chosen deployment, rendered.
    pub pick: String,
}

impl BreakdownRow {
    /// Build from an experiment outcome.
    pub fn from_outcome(o: &mlcd::experiment::ExperimentOutcome) -> Self {
        BreakdownRow {
            name: o.searcher.to_string(),
            profile_h: o.search.profile_time.as_hours(),
            profile_usd: o.search.profile_cost.dollars(),
            train_h: o.train_time.as_hours(),
            train_usd: o.train_cost.dollars(),
            total_h: o.total_time.as_hours(),
            total_usd: o.total_cost.dollars(),
            satisfied: o.satisfied,
            pick: o.plan.map(|p| p.deployment.to_string()).unwrap_or_else(|| "-".into()),
        }
    }

    /// Header matching [`Self::render`].
    pub fn header() -> String {
        format!(
            "{:<11} {:>16} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {}",
            "searcher",
            "pick",
            "prof(h)",
            "prof($)",
            "train(h)",
            "train($)",
            "total(h)",
            "total($)",
            "ok"
        )
    }

    /// One aligned text row.
    pub fn render(&self) -> String {
        format!(
            "{:<11} {:>16} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {}",
            self.name,
            self.pick,
            self.profile_h,
            self.profile_usd,
            self.train_h,
            self.train_usd,
            self.total_h,
            self.total_usd,
            if self.satisfied { "yes" } else { "NO" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_lines_and_claims() {
        let mut r = FigReport::new("figX", "test");
        r.line("hello");
        r.claim("the sky is blue", true);
        r.claim("water is dry", false);
        let s = r.render();
        assert!(s.contains("figX"));
        assert!(s.contains("hello"));
        assert!(s.contains("[PASS] the sky is blue"));
        assert!(s.contains("[FAIL] water is dry"));
        assert!(!r.all_claims_hold());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_h(1.234), "1.23 h");
        assert_eq!(fmt_usd(12.5), "$12.50");
        assert_eq!(fmt_speed(1234.56), "1235");
    }

    #[test]
    fn row_alignment_matches_header() {
        let row = BreakdownRow {
            name: "HeterBO".into(),
            profile_h: 1.0,
            profile_usd: 2.0,
            train_h: 3.0,
            train_usd: 4.0,
            total_h: 4.0,
            total_usd: 6.0,
            satisfied: true,
            pick: "10×c5.xlarge".into(),
        };
        // Header and row should produce the same number of '|' separators.
        assert_eq!(BreakdownRow::header().matches('|').count(), row.render().matches('|').count());
    }
}
