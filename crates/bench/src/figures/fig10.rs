//! Fig 10 — Scenario-2: cheapest deployment finishing within a deadline,
//! ResNet/CIFAR-10 over c5.4xlarge scale-out.
//!
//! The paper uses a 6 h deadline against its EC2 landscape, ~1.4× its
//! optimum's training time; our landscape's cheapest-feasible optimum
//! trains in ~6 h, so the equivalent-tightness deadline here is 8 h.
//!
//! Paper result: HeterBO complies with the deadline using ~20 % of
//! ConvBO's profiling spend, while ConvBO overruns by 3.4 hours.

use crate::figures::fig09::scale_out_runner;
use crate::report::{BreakdownRow, FigReport};
use mlcd::prelude::*;
use mlcd::search::ConvBo;
use serde_json::json;

/// Run the Scenario-2 comparison.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig10",
        "Scenario-2 (≤8 h total) on ResNet/CIFAR-10: total-cost breakdown, HeterBO vs ConvBO",
    );
    let job = TrainingJob::resnet_cifar10();
    let deadline = SimDuration::from_hours(8.0);
    let scenario = Scenario::CheapestWithDeadline(deadline);
    let runner = scale_out_runner(seed);

    let h = runner.run(&HeterBo::seeded(seed), &job, &scenario);
    let c = runner.run(&ConvBo::seeded(seed), &job, &scenario);

    r.line("(a) HeterBO search process:");
    for step in &h.search.steps {
        r.line(format!(
            "  step {:>2}: probe {:>16} → {:>7.0} samples/s",
            step.index,
            step.observation.deployment.to_string(),
            step.observation.speed
        ));
    }
    r.line("(b) total cost breakdown:");
    r.line(BreakdownRow::header());
    let rows: Vec<BreakdownRow> = [&h, &c].iter().map(|o| BreakdownRow::from_outcome(o)).collect();
    for row in &rows {
        r.line(row.render());
    }

    r.claim(
        format!("HeterBO finishes within the 8 h deadline (total {:.2} h)", rows[0].total_h),
        h.satisfied,
    );
    r.claim(
        format!("ConvBO overruns the deadline (total {:.2} h)", rows[1].total_h),
        rows[1].total_h > 8.0,
    );
    let frac = rows[0].profile_usd / rows[1].profile_usd.max(1e-9);
    r.claim(
        format!("HeterBO's profiling spend is a fraction of ConvBO's ({:.0} %)", frac * 100.0),
        frac < 0.8,
    );
    let opt = runner.optimum(&job, &scenario);
    if let Some(opt) = opt {
        r.line(format!(
            "  Opt: {} train {:.2} h at {}",
            opt.deployment,
            opt.train_time.as_hours(),
            crate::report::fmt_usd(opt.train_cost.dollars())
        ));
    }
    r.data = json!({"rows": rows, "deadline_h": 8.0});
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig10_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
