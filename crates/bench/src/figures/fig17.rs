//! Fig 17 — same trajectory experiment as Fig 16 but on MXNet, budget
//! $120: platform independence. The trajectory shape persists; absolute
//! speeds sit below the TensorFlow run (MXNet's lower kernel efficiency
//! and costlier collectives).

use crate::report::FigReport;
use mlcd::prelude::*;

/// Run Fig 17.
pub fn run(seed: u64) -> FigReport {
    let mut r = super::fig15::trajectory_report(
        "fig17",
        "HeterBO trajectory: BERT/MXNet (ring all-reduce) over {c5n.xlarge, c5n.4xlarge, p2.xlarge} × ≤20, budget $120",
        &TrainingJob::bert_mxnet(),
        vec![InstanceType::C5nXlarge, InstanceType::C5n4xlarge, InstanceType::P2Xlarge],
        20,
        120.0,
        seed,
    );
    // Platform check: the MXNet run peaks below the TensorFlow run (the
    // paper's Fig 17 y-axis tops out at less than half of Fig 16's).
    let truth = ThroughputModel::default();
    let peak = |job: &TrainingJob| {
        (1..=20)
            .filter_map(|n| truth.throughput(job, InstanceType::P2Xlarge, n).ok())
            .fold(0.0_f64, f64::max)
    };
    let tf = peak(&TrainingJob::bert_tensorflow());
    let mx = peak(&TrainingJob::bert_mxnet());
    r.claim(format!("MXNet peaks below TensorFlow ({mx:.0} vs {tf:.0} samples/s)"), mx < tf);
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig17_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
