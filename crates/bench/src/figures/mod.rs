//! One module per paper figure. See DESIGN.md §4 for the experiment index.

pub mod ablations;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig05;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod refit_cadence;

use crate::report::FigReport;
use rayon::prelude::*;

/// All figure ids, in paper order, plus the ablation studies.
pub const ALL_IDS: [&str; 18] = [
    "fig1a",
    "fig1b",
    "fig2",
    "fig3",
    "fig5",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "ablations",
    "refit_cadence",
];

/// Run one figure by id. `None` for an unknown id.
pub fn run(id: &str, seed: u64) -> Option<FigReport> {
    Some(match id {
        "fig1a" => fig01::run_a(),
        "fig1b" => fig01::run_b(),
        "fig2" => fig02::run(seed),
        "fig3" => fig03::run(),
        "fig5" => fig05::run(seed),
        "fig9" => fig09::run(seed),
        "fig10" => fig10::run(seed),
        "fig11" => fig11::run(seed),
        "fig12" => fig12::run(seed),
        "fig13" => fig13::run(seed),
        "fig14" => fig14::run(seed),
        "fig15" => fig15::run(seed),
        "fig16" => fig16::run(seed),
        "fig17" => fig17::run(seed),
        "fig18" => fig18::run(seed),
        "fig19" => fig19::run(seed),
        "ablations" => ablations::run(seed),
        "refit_cadence" => refit_cadence::run(seed),
        _ => return None,
    })
}

/// Run several figures, fanned out across threads, results in input
/// order. Every figure derives all randomness from the seed it is handed,
/// so the reports are bit-identical to running [`run`] sequentially
/// (`RAYON_NUM_THREADS=1` forces exactly that when bisecting).
pub fn run_many<S: AsRef<str> + Sync>(ids: &[S], seed: u64) -> Vec<Option<FigReport>> {
    ids.par_iter().map(|id| run(id.as_ref(), seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_ids() {
        for id in ALL_IDS {
            assert!(run(id, 1).is_some(), "missing figure {id}");
        }
        assert!(run("fig99", 1).is_none());
    }

    #[test]
    fn run_many_preserves_order_and_matches_sequential() {
        let ids = ["fig1a", "fig3", "fig99", "fig1b"];
        let many = run_many(&ids, 5);
        assert_eq!(many.len(), ids.len());
        assert!(many[2].is_none());
        for (id, report) in ids.iter().zip(&many) {
            match report {
                None => assert_eq!(*id, "fig99"),
                Some(r) => {
                    let seq = run(id, 5).unwrap();
                    assert_eq!(r.id, seq.id);
                    assert_eq!(r.data, seq.data);
                }
            }
        }
    }
}
