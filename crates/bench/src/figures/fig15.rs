//! Fig 15 — HeterBO's search trajectory for Char-RNN over both scaling
//! dimensions: {c5.xlarge, c5.4xlarge, p2.xlarge} × n ≤ 50, budget $120.
//!
//! The paper narrates: first a single-node probe of each type (steps 1–3),
//! then interval-finding exploration (4–6), then exploitation inside the
//! best interval (7–9). We print the true per-type speed curves (what the
//! figure's dots sit on) and the numbered probe sequence.

use crate::report::FigReport;
use mlcd::prelude::*;
use serde_json::json;

/// Shared trajectory harness for Figs 15–17.
pub fn trajectory_report(
    id: &'static str,
    title: &'static str,
    job: &TrainingJob,
    types: Vec<InstanceType>,
    max_nodes: u32,
    budget_usd: f64,
    seed: u64,
) -> FigReport {
    let mut r = FigReport::new(id, title);
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(budget_usd));
    let runner = ExperimentRunner::new(seed).with_types(types.clone()).with_max_nodes(max_nodes);
    let truth = ThroughputModel::default();

    // Ground-truth curves the trajectory walks on.
    let grid: Vec<u32> =
        (1..=max_nodes).filter(|n| n % (max_nodes / 10).max(1) == 0 || *n == 1).collect();
    let mut curves = Vec::new();
    for t in &types {
        let pts: Vec<(u32, f64)> = grid
            .iter()
            .filter_map(|&n| truth.throughput(job, *t, n).ok().map(|s| (n, s)))
            .collect();
        let rendered: Vec<String> = pts.iter().map(|(n, s)| format!("({n},{s:.0})")).collect();
        r.line(format!("curve {:<13} {}", t.name(), rendered.join(" ")));
        curves.push(json!({"type": t.name(), "points": pts}));
    }

    let out = runner.run(&HeterBo::seeded(seed), job, &scenario);
    r.line("HeterBO trajectory:");
    let mut steps = Vec::new();
    for step in &out.search.steps {
        let o = step.observation;
        r.line(format!(
            "  step {:>2}: {:>16} → {:>7.0} samples/s  (cum ${:.2})",
            step.index,
            o.deployment.to_string(),
            o.speed,
            step.cum_profile_cost.dollars()
        ));
        steps.push(json!({
            "step": step.index, "type": o.deployment.itype.name(), "n": o.deployment.n,
            "speed": o.speed,
        }));
    }
    let pick = out.plan.map(|p| p.deployment.to_string()).unwrap_or_default();
    r.line(format!(
        "pick: {}  | total {:.2} h ${:.2} (budget ${budget_usd})",
        pick,
        out.total_hours(),
        out.total_cost.dollars()
    ));

    // Shape checks shared by every trajectory figure.
    let n_types = types.len();
    let first_are_singles = out.search.steps.iter().take(n_types).all(|s| {
        // "Single node of each type": the smallest feasible n for the
        // type (1 for everything in these figures).
        s.observation.deployment.n
            == runner
                .space(job)
                .candidates()
                .iter()
                .filter(|d| d.itype == s.observation.deployment.itype)
                .map(|d| d.n)
                .min()
                .unwrap()
    });
    r.claim("first probes are one minimal node of each type", first_are_singles);
    let distinct_types: std::collections::HashSet<_> =
        out.search.steps.iter().take(n_types).map(|s| s.observation.deployment.itype).collect();
    r.claim("the init sweep covers every instance type", distinct_types.len() == n_types);
    r.claim(
        format!("stays within the ${budget_usd} budget (${:.2})", out.total_cost.dollars()),
        out.satisfied,
    );
    r.claim(
        format!("finishes in few probes ({} ≤ 16)", out.search.n_probes()),
        out.search.n_probes() <= 16,
    );
    r.data = json!({"curves": curves, "steps": steps, "budget": budget_usd,
        "total_usd": out.total_cost.dollars(), "pick": pick});
    r
}

/// Run Fig 15.
pub fn run(seed: u64) -> FigReport {
    trajectory_report(
        "fig15",
        "HeterBO trajectory: Char-RNN/TensorFlow over {c5.xlarge, c5.4xlarge, p2.xlarge} × ≤50, budget $120",
        &TrainingJob::char_rnn(),
        vec![InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
        50,
        120.0,
        seed,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig15_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
