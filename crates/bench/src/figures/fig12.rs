//! Fig 12 — random search vs HeterBO, statistically.
//!
//! For each probe count k, run random search across many seeds and report
//! the distribution (whisker-plot quartiles) of the *total* time
//! (profiling + training). HeterBO's mean total is the reference line.
//! The paper's points: small k → huge variance; large k → profiling cost
//! inflates the total; HeterBO beats random at every k.

use crate::report::FigReport;
use mlcd::prelude::*;
use mlcd::search::RandomSearch;
use mlcd_linalg::stats::quartiles;
use serde_json::json;

/// Probe counts to sweep (the paper's x-axis, abbreviated).
pub const KS: [usize; 8] = [1, 6, 9, 12, 15, 18, 27, 36];
/// Seeds per probe count.
const REPS: u64 = 12;

/// Fig 12's space: both scaling dimensions (random search over a
/// single-type scale-out line would be too easy — the paper's point needs
/// the full heterogeneous space where random probes land on expensive GPU
/// clusters).
fn runner(seed: u64) -> ExperimentRunner {
    ExperimentRunner::new(seed).with_types(vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ])
}

/// Run the sweep.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig12",
        "total time of random search (distribution over seeds) vs HeterBO mean, ResNet/CIFAR-10",
    );
    let job = TrainingJob::resnet_cifar10();
    let scenario = Scenario::FastestUnlimited;

    // HeterBO reference mean over a few seeds (threaded grid; per-cell
    // seeding keeps the numbers identical to the old sequential loop).
    let h_mean = EvalGrid::new(job.clone())
        .searcher("HeterBO", |s| Box::new(HeterBo::seeded(s)))
        .scenario(scenario)
        .seeds(seed..seed + 4)
        .with_runner(runner)
        .run()
        .summary_for("HeterBO", &scenario)
        .expect("grid ran")
        .mean_total_h;
    r.line(format!("HeterBO mean total: {:.2} h", h_mean));
    r.line(format!("{:>4} {:>9} {:>9} {:>9} {:>9} {:>9}", "k", "min", "q1", "median", "q3", "max"));

    let mut rows = Vec::new();
    let mut medians = Vec::new();
    for k in KS {
        let grid = EvalGrid::new(job.clone())
            .searcher("Random", move |s| Box::new(RandomSearch::new(k, s)))
            .scenario(scenario)
            .seeds((0..REPS).map(|i| seed.wrapping_mul(31).wrapping_add(i * 977 + k as u64)))
            .with_runner(runner)
            .run();
        let totals: Vec<f64> = grid.cells.iter().map(|c| c.outcome.total_hours()).collect();
        let q = quartiles(&totals);
        r.line(format!(
            "{:>4} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            k, q.min, q.q1, q.median, q.q3, q.max
        ));
        rows.push(
            json!({"k": k, "min": q.min, "q1": q.q1, "median": q.median, "q3": q.q3, "max": q.max}),
        );
        medians.push((k, q.median, q.max - q.min));
    }

    let small_spread = medians.first().unwrap().2;
    let large_spread = medians.last().unwrap().2;
    r.claim(
        format!(
            "variance shrinks with more probes (spread {:.2} h at k={} vs {:.2} h at k={})",
            small_spread,
            KS[0],
            large_spread,
            KS[KS.len() - 1]
        ),
        small_spread > large_spread,
    );
    // The paper's practical point: no single k works — tiny k gambles,
    // large k drowns in profiling — and the sweet spot is unknowable in
    // advance, while HeterBO needs no such tuning. We check HeterBO wins
    // clearly at both extremes and stays competitive with the (oracle)
    // sweet spot. (Our trimmed 4-type space is kinder to random search
    // than the paper's 3,100-point space; see EXPERIMENTS.md.)
    let first_median = medians.first().unwrap().1;
    let last_median = medians.last().unwrap().1;
    r.claim(
        format!(
            "HeterBO ({h_mean:.2} h) beats random at the extremes (k={}: {first_median:.2} h, k={}: {last_median:.2} h)",
            KS[0],
            KS[KS.len() - 1]
        ),
        h_mean < first_median && h_mean < last_median,
    );
    let best_median = medians.iter().map(|m| m.1).fold(f64::INFINITY, f64::min);
    r.claim(
        format!(
            "HeterBO stays within 50 % of random's oracle-tuned best median ({h_mean:.2} h vs {best_median:.2} h) without needing k tuned"
        ),
        h_mean <= best_median * 1.5,
    );
    // Large k gets dragged up by profiling cost relative to the sweet spot.
    let mid_median = medians[3].1;
    r.claim(
        format!(
            "large probe counts pay for themselves in profiling time (median {last_median:.2} h at k=36 vs {mid_median:.2} h at k=12)"
        ),
        last_median > mid_median,
    );
    r.data = json!({"heterbo_mean_h": h_mean, "rows": rows});
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig12_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
