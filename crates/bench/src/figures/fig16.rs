//! Fig 16 — HeterBO trajectory for BERT on TensorFlow with ring
//! all-reduce: {c5n.xlarge, c5n.4xlarge, p2.xlarge} × n ≤ 20, budget $100.
//!
//! Demonstrates robustness on a 340 M-parameter model and a different
//! communication topology: the same explore-then-exploit trajectory shape
//! appears, with the GPU type dominating (large matmuls) and the
//! network-enhanced c5n types ordered by bandwidth.

use crate::report::FigReport;
use mlcd::prelude::*;

/// Run Fig 16.
pub fn run(seed: u64) -> FigReport {
    let mut r = super::fig15::trajectory_report(
        "fig16",
        "HeterBO trajectory: BERT/TensorFlow (ring all-reduce) over {c5n.xlarge, c5n.4xlarge, p2.xlarge} × ≤20, budget $100",
        &TrainingJob::bert_tensorflow(),
        vec![InstanceType::C5nXlarge, InstanceType::C5n4xlarge, InstanceType::P2Xlarge],
        20,
        100.0,
        seed,
    );
    // BERT-specific shape check: the accelerator wins for transformers.
    let truth = ThroughputModel::default();
    let job = TrainingJob::bert_tensorflow();
    let best = |t: InstanceType| {
        (1..=20).filter_map(|n| truth.throughput(&job, t, n).ok()).fold(0.0_f64, f64::max)
    };
    let p2 = best(InstanceType::P2Xlarge);
    let c5n4 = best(InstanceType::C5n4xlarge);
    let c5n1 = best(InstanceType::C5nXlarge);
    r.claim(
        format!("p2.xlarge dominates for BERT ({p2:.0} vs c5n.4xlarge {c5n4:.0} samples/s)"),
        p2 > c5n4,
    );
    r.claim(
        format!("within c5n, more bandwidth+compute wins ({c5n4:.1} vs {c5n1:.1})"),
        c5n4 > c5n1,
    );
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig16_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
