//! Fig 9 — Scenario-1 (fastest, unlimited budget).
//!
//! As in the paper, the scale-up dimension is fixed to c5.4xlarge ("we
//! already found the optimal scale-up is c5.4xlarge") and the search runs
//! over scale-out only. Panel (a): HeterBO's probe-by-probe trace. Panel
//! (b): total time, broken into profiling + training, vs ConvBO — the
//! paper reports HeterBO needing only ~16 % of ConvBO's profiling.

use crate::report::{BreakdownRow, FigReport};
use mlcd::prelude::*;
use mlcd::search::ConvBo;
use serde_json::json;

/// Shared setup for Figs 9–12: ResNet/CIFAR-10 over c5.4xlarge scale-out.
pub fn scale_out_runner(seed: u64) -> ExperimentRunner {
    ExperimentRunner::new(seed).with_types(vec![InstanceType::C54xlarge])
}

/// Run the Scenario-1 comparison.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig9",
        "Scenario-1 on ResNet/CIFAR-10 (c5.4xlarge scale-out): HeterBO trace + total-time breakdown vs ConvBO",
    );
    let job = TrainingJob::resnet_cifar10();
    let scenario = Scenario::FastestUnlimited;
    let runner = scale_out_runner(seed);

    let (h, trace) = runner.run_traced(&HeterBo::seeded(seed), &job, &scenario);
    let c = runner.run(&ConvBo::seeded(seed), &job, &scenario);

    r.line("(a) HeterBO search process:");
    for step in &h.search.steps {
        r.line(format!(
            "  step {:>2}: probe {:>16} → {:>7.0} samples/s",
            step.index,
            step.observation.deployment.to_string(),
            step.observation.speed
        ));
    }
    r.line(format!("  stop: {:?}", h.search.stop_reason));
    let (mut scored, mut pruned, mut blocked) = (0usize, 0usize, 0usize);
    for e in &trace.events {
        match e {
            TraceEvent::CandidateScored { .. } => scored += 1,
            TraceEvent::CandidatePruned { .. } => pruned += 1,
            TraceEvent::ReserveBlocked { .. } => blocked += 1,
            _ => {}
        }
    }
    r.line(format!(
        "  kernel trace: {} candidates scored, {} pruned without probing, {} reserve-blocked",
        scored, pruned, blocked
    ));

    r.line("(b) total time breakdown:");
    r.line(BreakdownRow::header());
    let rows: Vec<BreakdownRow> = [&h, &c].iter().map(|o| BreakdownRow::from_outcome(o)).collect();
    for row in &rows {
        r.line(row.render());
    }

    let frac = rows[0].profile_h / rows[1].profile_h.max(1e-9);
    r.claim(
        format!("HeterBO profiles for a fraction of ConvBO's time ({:.0} %)", frac * 100.0),
        frac < 0.8,
    );
    r.claim(
        "HeterBO's pick trains at least as fast as ConvBO's (within 15 %)",
        rows[0].train_h <= rows[1].train_h * 1.15,
    );
    let opt = runner.optimum(&job, &scenario).expect("optimum exists");
    r.line(format!(
        "  Opt: {} at {:.0} samples/s, train {:.2} h",
        opt.deployment,
        opt.speed,
        opt.train_time.as_hours()
    ));
    r.claim(
        "HeterBO lands within 20 % of the true optimal training time",
        rows[0].train_h <= opt.train_time.as_hours() * 1.20,
    );
    r.data = json!({
        "trace": h.search.steps.iter().map(|s| json!({
            "step": s.index,
            "deployment": s.observation.deployment.to_string(),
            "speed": s.observation.speed,
        })).collect::<Vec<_>>(),
        "rows": rows,
        "opt_train_h": opt.train_time.as_hours(),
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig9_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
