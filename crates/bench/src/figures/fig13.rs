//! Fig 13 — HeterBO vs Paleo (analytical modeling) vs ConvBO under an $80
//! budget, Inception-v3 on ImageNet, TensorFlow.
//!
//! Paleo pays no profiling at all but, because its analytical model
//! idealises communication, it picks an over-scaled deployment and misses
//! the optimum; HeterBO finds a near-optimal configuration while keeping
//! the total under budget.

use crate::report::{BreakdownRow, FigReport};
use mlcd::prelude::*;
use mlcd::search::ConvBo;
use serde_json::json;

/// Types the Inception experiment searches over (CPU + both GPU families).
fn types() -> Vec<InstanceType> {
    vec![
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
        InstanceType::P32xlarge,
    ]
}

/// Run the three-way comparison plus the oracle.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig13",
        "ConvBO vs Paleo vs HeterBO vs Opt under $80 budget, Inception-v3/ImageNet",
    );
    let job = TrainingJob::inception_imagenet();
    let budget = Money::from_dollars(80.0);
    let scenario = Scenario::FastestWithBudget(budget);
    let runner = ExperimentRunner::new(seed).with_types(types());

    let c = runner.run(&ConvBo::seeded(seed), &job, &scenario);
    let p = runner.run_paleo(&job, &scenario);
    let h = runner.run(&HeterBo::seeded(seed), &job, &scenario);
    let opt = runner.optimum(&job, &scenario).expect("a feasible optimum exists");

    r.line(BreakdownRow::header());
    let rows: Vec<BreakdownRow> =
        [&c, &p, &h].iter().map(|o| BreakdownRow::from_outcome(o)).collect();
    for row in &rows {
        r.line(row.render());
    }
    r.line(format!(
        "{:<11} {:>16} | {:>9} {:>9} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | yes",
        "Opt",
        opt.deployment.to_string(),
        "-",
        "-",
        opt.train_time.as_hours(),
        opt.train_cost.dollars(),
        opt.train_time.as_hours(),
        opt.train_cost.dollars()
    ));

    r.claim("Paleo pays zero profiling", rows[1].profile_usd == 0.0);
    r.claim(
        format!(
            "Paleo fails the scenario: its idealised comm model picks an over-scaled cluster \
             that busts the budget (${:.2} vs $80) and still trains slower than Opt",
            rows[1].total_usd
        ),
        rows[1].total_usd > budget.dollars() && rows[1].train_h >= opt.train_time.as_hours(),
    );
    r.claim(
        format!("HeterBO keeps the total under budget (${:.2})", rows[2].total_usd),
        h.satisfied,
    );
    r.claim(
        format!(
            "HeterBO's pick is near-optimal (train {:.2} h vs opt {:.2} h)",
            rows[2].train_h,
            opt.train_time.as_hours()
        ),
        rows[2].train_h <= opt.train_time.as_hours() * 1.35,
    );
    r.claim(
        format!("ConvBO busts the budget (${:.2})", rows[0].total_usd),
        rows[0].total_usd > budget.dollars(),
    );
    r.data = json!({"rows": rows, "opt": {
        "deployment": opt.deployment.to_string(),
        "train_h": opt.train_time.as_hours(),
        "train_usd": opt.train_cost.dollars(),
    }});
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig13_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
