//! Refit cadence — the cost/quality trade-off of `gp_refit_every`.
//!
//! `BoConfig::gp_refit_every = k` pays the full `O(n³)` marginal-
//! likelihood refit only every k-th observation and extends the posterior
//! incrementally (`O(n²)`, fixed hyperparameters) in between. This
//! experiment runs HeterBO at k ∈ {1, 2, 4} on the Fig 18 setup
//! (ResNet/CIFAR-10, budget $200, 4-type space) and reports, per
//! cadence, the outcome-quality columns next to a deterministic model-
//! fit work proxy: Σ over BO-loop surrogate updates of `m³` for a refit
//! step and `m²` for an extend step (`m` = observation count at the
//! update). The proxy counts the same arithmetic the GP layer performs,
//! so it moves with wall-clock without importing timers into a
//! deterministic figure.

use crate::report::FigReport;
use mlcd::prelude::*;
use mlcd::search::bo::BoCore;
use mlcd::search::{BoConfig, InitStrategy};
use serde_json::json;

const SEEDS: u64 = 4;
const CADENCES: [usize; 3] = [1, 2, 4];

fn heterbo_at(seed: u64, refit_every: usize) -> BoConfig {
    BoConfig::builder()
        .init(InitStrategy::TypeSweep)
        .ei_rel_threshold(0.10)
        .ci_stop(true)
        .cost_penalty(true)
        .budget_guarded()
        .concave_prior(true)
        .max_steps(8)
        .min_obs_before_stop(6)
        .gp_refit_every(refit_every)
        .seed(seed)
        .build()
}

/// Deterministic model-fit work proxy for one search: the BO loop calls
/// `Surrogate::update` once per post-init step with the full observation
/// list, refitting when the count hits the cadence and extending
/// otherwise — `m³` vs `m²` arithmetic at m observations.
fn fit_work(init_probes: usize, total_probes: usize, refit_every: usize) -> f64 {
    let mut work = 0.0;
    let mut fitted = false;
    for m in init_probes..=total_probes {
        if m < 2 {
            continue;
        }
        let mf = m as f64;
        if !fitted || m % refit_every == 0 {
            work += mf * mf * mf;
            fitted = true;
        } else {
            work += mf * mf;
        }
    }
    work
}

/// Run the cadence sweep and assemble the report.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "refit_cadence",
        "gp_refit_every cost/quality trade-off on ResNet/CIFAR-10 (HeterBO, budget $200, means over seeds)",
    );
    let job = TrainingJob::resnet_cifar10();
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(200.0));
    let types = vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ];

    let mut grid = EvalGrid::new(job);
    for k in CADENCES {
        let name: &'static str = match k {
            1 => "refit_1",
            2 => "refit_2",
            _ => "refit_4",
        };
        grid = grid.searcher(name, move |s| Box::new(BoCore::new("refit", heterbo_at(s, k))));
    }
    let runner_types = types.clone();
    let report = grid
        .scenario(scenario)
        .seeds((0..SEEDS).map(|i| seed + i * 311))
        .with_runner(move |s| ExperimentRunner::new(s).with_types(runner_types.clone()))
        .run();

    r.line(format!(
        "{:<10} {:>8} {:>12} {:>10} {:>10} {:>9} {:>8}",
        "cadence", "probes", "fit_work", "prof($)", "total($)", "total(h)", "ok"
    ));
    let mut rows = Vec::new();
    let summaries = report.summaries();
    for (k, name) in CADENCES.iter().zip(["refit_1", "refit_2", "refit_4"]) {
        let cells = report.cells_for(name, &scenario);
        let s = summaries.iter().find(|s| s.searcher == name).expect("summary for every cadence");
        // The type-sweep init probes one point per type (4 types);
        // everything past that went through the BO loop's surrogate
        // updates.
        let work = cells
            .iter()
            .map(|c| fit_work(types.len(), c.outcome.search.steps.len(), *k))
            .sum::<f64>()
            / s.runs as f64;
        r.line(format!(
            "  k={:<6} {:>8.1} {:>12.0} {:>10.2} {:>10.2} {:>9.2} {:>5}/{}",
            k,
            s.mean_probes,
            work,
            s.mean_profile_usd,
            s.mean_total_usd,
            s.mean_total_h,
            s.satisfied,
            SEEDS
        ));
        rows.push(json!({"refit_every": k, "probes": s.mean_probes, "fit_work": work,
            "prof_usd": s.mean_profile_usd, "total_usd": s.mean_total_usd,
            "total_h": s.mean_total_h, "ok": s.satisfied}));
    }

    let row_of =
        |k: usize| rows.iter().find(|r| r["refit_every"].as_u64() == Some(k as u64)).unwrap();
    let get = |k: usize, key: &str| -> f64 { row_of(k)[key].as_f64().unwrap() };
    let get_ok = |k: usize| -> u64 { row_of(k)["ok"].as_u64().unwrap() };
    r.claim(
        format!(
            "sparser refits cut model-fit work: {:.0} (k=1) → {:.0} (k=2) → {:.0} (k=4)",
            get(1, "fit_work"),
            get(2, "fit_work"),
            get(4, "fit_work"),
        ),
        get(2, "fit_work") < get(1, "fit_work") && get(4, "fit_work") < get(2, "fit_work"),
    );
    r.claim(
        format!(
            "every cadence stays budget-compliant on every seed ({}/{SEEDS}, {}/{SEEDS}, {}/{SEEDS})",
            get_ok(1),
            get_ok(2),
            get_ok(4),
        ),
        CADENCES.iter().all(|&k| get_ok(k) == SEEDS),
    );
    r.claim(
        format!(
            "the quality cost of k=2 is bounded: total {:.2} h vs {:.2} h at k=1 (≤ 25% slower)",
            get(2, "total_h"),
            get(1, "total_h"),
        ),
        get(2, "total_h") <= get(1, "total_h") * 1.25,
    );
    r.data = json!(rows);
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn refit_cadence_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }

    #[test]
    fn fit_work_proxy_orders_cadences() {
        // More frequent refits never cost less work for the same search.
        for probes in [6usize, 9, 14] {
            let w1 = super::fit_work(4, probes, 1);
            let w2 = super::fit_work(4, probes, 2);
            let w4 = super::fit_work(4, probes, 4);
            assert!(w1 >= w2 && w2 >= w4, "{probes}: {w1} {w2} {w4}");
        }
    }
}
