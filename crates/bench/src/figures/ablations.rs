//! Ablations — quality impact of each HeterBO mechanism (DESIGN.md §4).
//!
//! The paper motivates four mechanisms; this experiment switches each off
//! in turn and measures what breaks, on the Fig 18 setup (ResNet/CIFAR-10,
//! budget $120, 4-type space), averaged over seeds:
//!
//! * `no_prior`    — concave scale-out prior off (both pruning and the
//!   rising-branch frontier walk): exploration wanders.
//! * `no_cost`     — cost-penalised acquisition off: probes get pricey.
//! * `random_init` — random initial points instead of the type sweep.
//! * `no_reserve`  — protective mechanism off: budget violations return.

use crate::report::FigReport;
use mlcd::prelude::*;
use mlcd::search::bo::BoCore;
use mlcd::search::{BoConfig, InitStrategy};
use serde_json::json;

const SEEDS: u64 = 4;

fn heterbo_config(seed: u64) -> mlcd::search::BoConfigBuilder {
    BoConfig::builder()
        .init(InitStrategy::TypeSweep)
        .ei_rel_threshold(0.10)
        .ci_stop(true)
        .cost_penalty(true)
        .budget_guarded()
        .concave_prior(true)
        .max_steps(8)
        .min_obs_before_stop(6)
        .seed(seed)
}

fn variants(seed: u64) -> Vec<(&'static str, BoConfig)> {
    vec![
        ("full", heterbo_config(seed).build()),
        ("no_prior", heterbo_config(seed).concave_prior(false).build()),
        ("no_cost", heterbo_config(seed).cost_penalty(false).build()),
        ("random_init", heterbo_config(seed).init(InitStrategy::RandomPoints(4)).build()),
        ("no_reserve", heterbo_config(seed).reserve_protection(false).build()),
    ]
}

/// Run the ablation table at one budget; returns per-variant mean rows.
fn run_at(seed: u64, budget_usd: f64, r: &mut FigReport) -> Vec<serde_json::Value> {
    let job = TrainingJob::resnet_cifar10();
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(budget_usd));
    let types = vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ];

    // Variant × seed grid, fanned out across threads. Each cell derives
    // its config and runner from its own seed, exactly as the old nested
    // loop did, so the means are unchanged.
    let mut grid = EvalGrid::new(job.clone());
    for (name, _) in variants(seed) {
        grid = grid.searcher(name, move |s| {
            let cfg = variants(s).into_iter().find(|(n, _)| *n == name).unwrap().1;
            Box::new(BoCore::new("ablation", cfg))
        });
    }
    let report = grid
        .scenario(scenario)
        .seeds((0..SEEDS).map(|i| seed + i * 311))
        .with_runner(move |s| ExperimentRunner::new(s).with_types(types.clone()))
        .run();

    r.line(format!("budget ${budget_usd:.0}:"));
    r.line(format!(
        "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "variant", "probes", "prof($)", "train(h)", "total($)", "total(h)", "ok"
    ));
    let mut rows = Vec::new();
    for s in report.summaries() {
        let cells = report.cells_for(&s.searcher, &scenario);
        let train_h =
            cells.iter().map(|c| c.outcome.train_time.as_hours()).sum::<f64>() / s.runs as f64;
        r.line(format!(
            "  {:<12} {:>8.1} {:>10.2} {:>10.2} {:>10.2} {:>9.2} {:>5}/{}",
            s.searcher,
            s.mean_probes,
            s.mean_profile_usd,
            train_h,
            s.mean_total_usd,
            s.mean_total_h,
            s.satisfied,
            SEEDS
        ));
        rows.push(json!({"budget": budget_usd, "variant": s.searcher, "probes": s.mean_probes,
            "prof_usd": s.mean_profile_usd, "train_h": train_h, "total_usd": s.mean_total_usd,
            "total_h": s.mean_total_h, "ok": s.satisfied}));
    }
    rows
}

/// Run the ablation study at a tight and a roomy budget.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "ablations",
        "HeterBO mechanism ablations on ResNet/CIFAR-10 (means over seeds, tight $90 and roomy $200 budgets)",
    );
    // Tight: the reserve is load-bearing. Roomy: acquisition economy is.
    let tight = run_at(seed, 90.0, &mut r);
    let roomy = run_at(seed, 200.0, &mut r);

    let get = |rows: &[serde_json::Value], name: &str, key: &str| -> f64 {
        rows.iter().find(|r| r["variant"] == name).unwrap()[key].as_f64().unwrap()
    };
    let get_ok = |rows: &[serde_json::Value], name: &str| -> u64 {
        rows.iter().find(|r| r["variant"] == name).unwrap()["ok"].as_u64().unwrap()
    };

    r.claim(
        format!(
            "full HeterBO satisfies both budgets on every seed ({}/{SEEDS} tight, {}/{SEEDS} roomy)",
            get_ok(&tight, "full"),
            get_ok(&roomy, "full")
        ),
        get_ok(&tight, "full") == SEEDS && get_ok(&roomy, "full") == SEEDS,
    );
    r.claim(
        format!(
            "removing the reserve wrecks the tight-budget outcome: over-spent profiling forces a \
             retreat to a far slower deployment or a violation ({}/{SEEDS} compliant, train {:.1} h vs {:.1} h)",
            get_ok(&tight, "no_reserve"),
            get(&tight, "no_reserve", "train_h"),
            get(&tight, "full", "train_h"),
        ),
        get_ok(&tight, "no_reserve") < SEEDS
            || get(&tight, "no_reserve", "train_h") > get(&tight, "full", "train_h") * 3.0,
    );
    r.claim(
        format!(
            "with budget to burn, the cost penalty is what keeps probing spend down (${:.2} → ${:.2} without it)",
            get(&roomy, "full", "prof_usd"),
            get(&roomy, "no_cost", "prof_usd")
        ),
        get(&roomy, "no_cost", "prof_usd") > get(&roomy, "full", "prof_usd"),
    );
    r.claim(
        format!(
            "the concave prior buys pick quality: without it training slows ({:.2} h → {:.2} h at roomy budget)",
            get(&roomy, "full", "train_h"),
            get(&roomy, "no_prior", "train_h"),
        ),
        get(&roomy, "no_prior", "train_h") > get(&roomy, "full", "train_h"),
    );
    // Random init can actually edge out the sweep when money is no object
    // (its 4 points buy free n-coverage); the sweep's value is its bounded
    // cost exactly when the budget is tight.
    r.claim(
        format!(
            "the type-sweep init beats random init where it matters — the tight budget ({:.2} h vs {:.2} h total)",
            get(&tight, "full", "total_h"),
            get(&tight, "random_init", "total_h"),
        ),
        get(&tight, "random_init", "total_h") > get(&tight, "full", "total_h"),
    );
    let mut all = tight;
    all.extend(roomy);
    r.data = json!(all);
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablation_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
