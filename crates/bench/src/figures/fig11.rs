//! Fig 11 — Scenario-3: fastest deployment within a $100 total budget,
//! ResNet/CIFAR-10 over c5.4xlarge scale-out.
//!
//! Paper result: HeterBO finishes at $96 — under budget — with ~21 % of
//! ConvBO's profiling time, while ConvBO spends $225 total.

use crate::figures::fig09::scale_out_runner;
use crate::report::{BreakdownRow, FigReport};
use mlcd::prelude::*;
use mlcd::search::ConvBo;
use serde_json::json;

/// Run the Scenario-3 comparison.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig11",
        "Scenario-3 (≤$100 total) on ResNet/CIFAR-10: total-time breakdown, HeterBO vs ConvBO",
    );
    let job = TrainingJob::resnet_cifar10();
    let budget = Money::from_dollars(100.0);
    let scenario = Scenario::FastestWithBudget(budget);
    let runner = scale_out_runner(seed);

    let h = runner.run(&HeterBo::seeded(seed), &job, &scenario);
    let c = runner.run(&ConvBo::seeded(seed), &job, &scenario);

    r.line("(a) HeterBO search process:");
    for step in &h.search.steps {
        r.line(format!(
            "  step {:>2}: probe {:>16} → {:>7.0} samples/s",
            step.index,
            step.observation.deployment.to_string(),
            step.observation.speed
        ));
    }
    r.line("(b) total time breakdown:");
    r.line(BreakdownRow::header());
    let rows: Vec<BreakdownRow> = [&h, &c].iter().map(|o| BreakdownRow::from_outcome(o)).collect();
    for row in &rows {
        r.line(row.render());
    }

    r.claim(
        format!("HeterBO stays under the $100 budget (total ${:.2})", rows[0].total_usd),
        h.satisfied,
    );
    r.claim(
        format!("ConvBO blows the budget (total ${:.2})", rows[1].total_usd),
        rows[1].total_usd > 100.0,
    );
    let frac = rows[0].profile_h / rows[1].profile_h.max(1e-9);
    r.claim(
        format!("HeterBO's profiling time is a fraction of ConvBO's ({:.0} %)", frac * 100.0),
        frac < 0.8,
    );
    r.data = json!({"rows": rows, "budget_usd": 100.0});
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
