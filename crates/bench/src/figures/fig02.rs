//! Fig 2 — why exhaustive profiling (and even ConvBO) is too expensive.
//!
//! ResNet/CIFAR-10: compare exhaustive search (the paper profiles 180 of
//! its 3,100 points; we stride our space down to ≈180 probes) against
//! ConvBO, breaking total time and money into profiling vs training. The
//! claims: ConvBO is far cheaper than exhaustive yet its profiling spend is
//! still on the order of the training spend itself.

use crate::report::{BreakdownRow, FigReport};
use mlcd::prelude::*;
use mlcd::search::{ConvBo, ExhaustiveSearch};
use serde_json::json;

/// Run the comparison.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig2",
        "exhaustive (~180 probes) vs ConvBO on ResNet/CIFAR-10: profiling vs training breakdown",
    );
    let job = TrainingJob::resnet_cifar10();
    let runner = ExperimentRunner::new(seed);
    let space_len = runner.space(&job).candidates().len();
    let stride = (space_len / 180).max(1);

    let exhaustive =
        runner.run(&ExhaustiveSearch::strided(stride), &job, &Scenario::FastestUnlimited);
    let convbo = runner.run(&ConvBo::seeded(seed), &job, &Scenario::FastestUnlimited);

    r.line(format!("search space: {space_len} deployments; exhaustive stride {stride}"));
    r.line(BreakdownRow::header());
    let rows: Vec<BreakdownRow> =
        [&exhaustive, &convbo].iter().map(|o| BreakdownRow::from_outcome(o)).collect();
    for row in &rows {
        r.line(row.render());
    }

    r.claim(
        format!(
            "exhaustive profiling cost dwarfs ConvBO's ({} vs {})",
            crate::report::fmt_usd(rows[0].profile_usd),
            crate::report::fmt_usd(rows[1].profile_usd)
        ),
        rows[0].profile_usd > rows[1].profile_usd * 2.5,
    );
    r.claim(
        "ConvBO finds a comparable deployment (within 25% of exhaustive's training time)",
        rows[1].train_h <= rows[0].train_h * 1.25,
    );
    r.claim(
        format!(
            "ConvBO profiling is still on the order of training itself (≥ 25%: {:.0}%)",
            100.0 * rows[1].profile_usd / rows[1].train_usd
        ),
        rows[1].profile_usd >= 0.25 * rows[1].train_usd,
    );
    r.data = json!(rows);
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig2_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
