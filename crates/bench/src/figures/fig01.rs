//! Fig 1 — the motivation figure.
//!
//! (a) Normalised hourly cost of EC2 instances (c5.xlarge = 1); the paper
//! highlights p2.8xlarge at 42.5×.
//! (b) Char-RNN training time at ~equal hourly cost on 40 × c5.xlarge,
//! 10 × c5.4xlarge and 9 × p2.xlarge; the mid-size CPU cluster wins ≈3×.

use crate::report::{fmt_h, FigReport};
use mlcd::prelude::*;
use serde_json::json;

/// Fig 1(a): the price catalog, normalised.
pub fn run_a() -> FigReport {
    let mut r = FigReport::new("fig1a", "normalised hourly cost of EC2 instance types");
    let mut rows: Vec<(String, f64)> =
        InstanceType::all().map(|t| (t.name().to_string(), t.normalized_cost())).collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, norm) in &rows {
        r.line(format!("{name:<14} {norm:>7.2}×"));
    }
    let p28 = InstanceType::P28xlarge.normalized_cost();
    r.claim(format!("p2.8xlarge is ≈42.5× c5.xlarge (got {p28:.1}×)"), (p28 - 42.5).abs() < 1.0);
    let spread = rows.last().unwrap().1 / rows.first().unwrap().1;
    r.claim(format!("price spread across catalog > 30× (got {spread:.0}×)"), spread > 30.0);
    r.data = json!(rows);
    r
}

/// Fig 1(b): equal-hourly-cost Char-RNN comparison.
pub fn run_b() -> FigReport {
    let mut r = FigReport::new(
        "fig1b",
        "Char-RNN training time at equal hourly cost: 40×c5.xlarge vs 10×c5.4xlarge vs 9×p2.xlarge",
    );
    let job = TrainingJob::char_rnn();
    let truth = ThroughputModel::default();
    let configs = [
        (InstanceType::C5Xlarge, 40u32),
        (InstanceType::C54xlarge, 10),
        (InstanceType::P2Xlarge, 9),
    ];
    let mut rows = Vec::new();
    for (t, n) in configs {
        let speed = truth.throughput(&job, t, n).expect("feasible");
        let hours = job.total_samples() / speed / 3600.0;
        let hourly = t.hourly_usd() * n as f64;
        r.line(format!(
            "{:>2} × {:<12} {:>8.0} samples/s   train {:>9}   cluster ${:.2}/h",
            n,
            t.name(),
            speed,
            fmt_h(hours),
            hourly
        ));
        rows.push(
            json!({"type": t.name(), "n": n, "speed": speed, "hours": hours, "hourly": hourly}),
        );
    }
    let t40 = job.total_samples() / truth.throughput(&job, InstanceType::C5Xlarge, 40).unwrap();
    let t10 = job.total_samples() / truth.throughput(&job, InstanceType::C54xlarge, 10).unwrap();
    let t9 = job.total_samples() / truth.throughput(&job, InstanceType::P2Xlarge, 9).unwrap();
    r.claim("10×c5.4xlarge is the fastest of the three", t10 < t40 && t10 < t9);
    let ratio = t40.max(t9) / t10;
    r.claim(format!("best ≈3× the worst (got {ratio:.2}×)"), (1.5..=6.0).contains(&ratio));
    r.data = json!(rows);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_claims_hold() {
        let r = run_a();
        assert!(r.all_claims_hold(), "{}", r.render());
        assert!(r.lines.len() >= 19);
    }

    #[test]
    fn fig1b_claims_hold() {
        let r = run_b();
        assert!(r.all_claims_hold(), "{}", r.render());
        assert_eq!(r.lines.len(), 3);
    }
}
