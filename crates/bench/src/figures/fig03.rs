//! Fig 3 — Char-RNN training speed under scale-up and scale-out.
//!
//! (a) Scale-up: single-node speed across instance sizes within the c5
//! family plus the GPU types — non-linear growth.
//! (b) Scale-out: speed vs node count on c5.xlarge — the concave curve
//! whose shape HeterBO's prior exploits.

use crate::report::FigReport;
use mlcd::prelude::*;
use serde_json::json;

/// Run both panels.
pub fn run() -> FigReport {
    let mut r = FigReport::new("fig3", "Char-RNN speed under scale-up (a) and scale-out (b)");
    let job = TrainingJob::char_rnn();
    let truth = ThroughputModel::default();

    r.line("(a) scale-up (single node):");
    let scale_up = [
        InstanceType::C5Large,
        InstanceType::C5Xlarge,
        InstanceType::C52xlarge,
        InstanceType::C54xlarge,
        InstanceType::C59xlarge,
        InstanceType::P2Xlarge,
        InstanceType::P32xlarge,
    ];
    let mut up_rows = Vec::new();
    for t in scale_up {
        let s = truth.throughput(&job, t, 1).expect("feasible");
        r.line(format!("  {:<13} {:>8.0} samples/s", t.name(), s));
        up_rows.push(json!({"type": t.name(), "speed": s}));
    }

    r.line("(b) scale-out (c5.xlarge × n):");
    let mut out_rows = Vec::new();
    let mut speeds = Vec::new();
    for n in [1u32, 2, 4, 8, 12, 16, 20, 26, 32, 40, 50] {
        let s = truth.throughput(&job, InstanceType::C5Xlarge, n).expect("feasible");
        r.line(format!("  n={n:<3} {s:>8.0} samples/s"));
        out_rows.push(json!({"n": n, "speed": s}));
        speeds.push((n, s));
    }

    // Shape checks.
    let up_speeds: Vec<f64> =
        scale_up.iter().map(|t| truth.throughput(&job, *t, 1).unwrap()).collect();
    r.claim(
        "scale-up within c5 is monotone but sub-linear (9xlarge < 18× large)",
        up_speeds[4] > up_speeds[0] && up_speeds[4] < up_speeds[0] * 18.0,
    );
    let peak = speeds.iter().cloned().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    r.claim(
        format!("scale-out speedup is concave with an interior peak (peak at n={})", peak.0),
        peak.0 > 1 && peak.0 < 50,
    );
    let last = speeds.last().unwrap().1;
    r.claim(
        format!("speed declines past the peak ({:.0} at n=50 vs {:.0} at peak)", last, peak.1),
        last < peak.1,
    );
    r.data = json!({"scale_up": up_rows, "scale_out": out_rows});
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig3_claims_hold() {
        let r = super::run();
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
