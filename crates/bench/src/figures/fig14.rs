//! Fig 14 — HeterBO vs CherryPick under a total time limit, Char-RNN on
//! TensorFlow.
//!
//! As in the paper, CherryPick is *favoured*: its search space is trimmed
//! to the better-performing instance types ("such prior is difficult to
//! obtain in practice"). It still overruns the time limit because it is
//! oblivious to the profiling time already spent when committing to a
//! deployment; HeterBO accounts for it and complies.
//!
//! The deadline is 16 h against our landscape's cheapest-feasible optimum
//! of ~15.5 h training — the same ~75–95 % opt-to-deadline tightness the
//! paper's 20 h limit had against its EC2 landscape. Searchers are run on
//! several seeds; the violation/compliance pattern must hold on a
//! majority, not one lucky draw.

use crate::report::{BreakdownRow, FigReport};
use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};
use serde_json::json;

/// Deadline in hours.
pub const DEADLINE_H: f64 = 16.0;
const SEEDS: u64 = 3;

/// The full space Char-RNN searches over.
fn types() -> Vec<InstanceType> {
    vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5nXlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
        InstanceType::P32xlarge,
    ]
}

/// The trimmed set CherryPick is granted "from experience" (the
/// cost-effective CPU types for an RNN).
fn cherry_types() -> Vec<InstanceType> {
    vec![InstanceType::C54xlarge, InstanceType::C5n4xlarge]
}

/// Run the comparison.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig14",
        "ConvBO vs CherryPick (favoured) vs HeterBO vs Opt under a 16 h time limit, Char-RNN",
    );
    let job = TrainingJob::char_rnn();
    let scenario = Scenario::CheapestWithDeadline(SimDuration::from_hours(DEADLINE_H));

    // Searcher × seed grid, cells fanned out across threads (each cell is
    // self-seeded, so the numbers match the old sequential loop exactly).
    let grid = EvalGrid::new(job.clone())
        .searcher("ConvBO", |s| Box::new(ConvBo::seeded(s)))
        .searcher("CherryPick", |s| Box::new(CherryPick::with_experience(s, cherry_types())))
        .searcher("HeterBO", |s| Box::new(HeterBo::seeded(s)))
        .scenario(scenario)
        .seeds((0..SEEDS).map(|i| seed + i * 131))
        .with_runner(|s| ExperimentRunner::new(s).with_types(types()))
        .run();

    let mut rows_json = Vec::new();
    r.line(BreakdownRow::header());
    for (i, c) in grid.cells.iter().enumerate() {
        let row = BreakdownRow::from_outcome(&c.outcome);
        r.line(format!("seed{} {}", i / 3, row.render()));
        rows_json.push(json!({"seed": c.seed, "row": row}));
    }
    let sat = |name: &str| grid.summary_for(name, &scenario).unwrap().satisfied;
    let mean_cost = |name: &str| grid.summary_for(name, &scenario).unwrap().mean_total_usd;
    let runner = ExperimentRunner::new(seed).with_types(types());
    let opt = runner.optimum(&job, &scenario).expect("optimum exists");
    r.line(format!(
        "Opt: {} train {:.2} h {}",
        opt.deployment,
        opt.train_time.as_hours(),
        crate::report::fmt_usd(opt.train_cost.dollars())
    ));

    let n = SEEDS as usize;
    r.claim(
        format!(
            "HeterBO respects the {DEADLINE_H} h limit on a majority of seeds ({}/{n})",
            sat("HeterBO")
        ),
        sat("HeterBO") * 2 > n,
    );
    r.claim(
        format!(
            "CherryPick overruns on a majority of seeds despite the trimmed space ({}/{n} ok)",
            sat("CherryPick")
        ),
        sat("CherryPick") * 2 < n + 1,
    );
    r.claim(
        format!("ConvBO overruns on a majority of seeds ({}/{n} ok)", sat("ConvBO")),
        sat("ConvBO") * 2 < n + 1,
    );
    r.claim(
        format!(
            "HeterBO's mean total cost is far below ConvBO's (${:.2} vs ${:.2})",
            mean_cost("HeterBO"),
            mean_cost("ConvBO")
        ),
        mean_cost("HeterBO") < mean_cost("ConvBO") * 0.7,
    );
    r.data = json!({"rows": rows_json, "deadline_h": DEADLINE_H,
        "opt_train_h": opt.train_time.as_hours()});
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig14_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
