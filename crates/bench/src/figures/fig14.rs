//! Fig 14 — HeterBO vs CherryPick under a total time limit, Char-RNN on
//! TensorFlow.
//!
//! As in the paper, CherryPick is *favoured*: its search space is trimmed
//! to the better-performing instance types ("such prior is difficult to
//! obtain in practice"). It still overruns the time limit because it is
//! oblivious to the profiling time already spent when committing to a
//! deployment; HeterBO accounts for it and complies.
//!
//! The deadline is 16 h against our landscape's cheapest-feasible optimum
//! of ~15.5 h training — the same ~75–95 % opt-to-deadline tightness the
//! paper's 20 h limit had against its EC2 landscape. Searchers are run on
//! several seeds; the violation/compliance pattern must hold on a
//! majority, not one lucky draw.

use crate::report::{BreakdownRow, FigReport};
use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};
use serde_json::json;

/// Deadline in hours.
pub const DEADLINE_H: f64 = 16.0;
const SEEDS: u64 = 3;

/// The full space Char-RNN searches over.
fn types() -> Vec<InstanceType> {
    vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5nXlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
        InstanceType::P32xlarge,
    ]
}

/// The trimmed set CherryPick is granted "from experience" (the
/// cost-effective CPU types for an RNN).
fn cherry_types() -> Vec<InstanceType> {
    vec![InstanceType::C54xlarge, InstanceType::C5n4xlarge]
}

/// Run the comparison.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig14",
        "ConvBO vs CherryPick (favoured) vs HeterBO vs Opt under a 16 h time limit, Char-RNN",
    );
    let job = TrainingJob::char_rnn();
    let scenario = Scenario::CheapestWithDeadline(SimDuration::from_hours(DEADLINE_H));

    let mut rows_json = Vec::new();
    let mut sat = std::collections::HashMap::<&str, usize>::new();
    let mut cost = std::collections::HashMap::<&str, f64>::new();
    r.line(BreakdownRow::header());
    for i in 0..SEEDS {
        let s = seed + i * 131;
        let runner = ExperimentRunner::new(s).with_types(types());
        let outcomes = [
            runner.run(&ConvBo::seeded(s), &job, &scenario),
            runner.run(&CherryPick::with_experience(s, cherry_types()), &job, &scenario),
            runner.run(&HeterBo::seeded(s), &job, &scenario),
        ];
        for o in &outcomes {
            let row = BreakdownRow::from_outcome(o);
            r.line(format!("seed{i} {}", row.render()));
            *sat.entry(o.searcher).or_default() += usize::from(o.satisfied);
            *cost.entry(o.searcher).or_default() += o.total_cost.dollars();
            rows_json.push(json!({"seed": s, "row": row}));
        }
    }
    let runner = ExperimentRunner::new(seed).with_types(types());
    let opt = runner.optimum(&job, &scenario).expect("optimum exists");
    r.line(format!(
        "Opt: {} train {:.2} h {}",
        opt.deployment,
        opt.train_time.as_hours(),
        crate::report::fmt_usd(opt.train_cost.dollars())
    ));

    let n = SEEDS as usize;
    r.claim(
        format!("HeterBO respects the {DEADLINE_H} h limit on a majority of seeds ({}/{n})", sat["HeterBO"]),
        sat["HeterBO"] * 2 > n,
    );
    r.claim(
        format!("CherryPick overruns on a majority of seeds despite the trimmed space ({}/{n} ok)", sat["CherryPick"]),
        sat["CherryPick"] * 2 < n + 1,
    );
    r.claim(
        format!("ConvBO overruns on a majority of seeds ({}/{n} ok)", sat["ConvBO"]),
        sat["ConvBO"] * 2 < n + 1,
    );
    r.claim(
        format!(
            "HeterBO's mean total cost is far below ConvBO's (${:.2} vs ${:.2})",
            cost["HeterBO"] / n as f64,
            cost["ConvBO"] / n as f64
        ),
        cost["HeterBO"] < cost["ConvBO"] * 0.7,
    );
    r.data = json!({"rows": rows_json, "deadline_h": DEADLINE_H,
        "opt_train_h": opt.train_time.as_hours()});
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig14_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
