//! Fig 5 — ConvBO's per-step cost-saving/speedup oscillation.
//!
//! AlexNet/CIFAR-10 with ConvBO: after every profiling step, evaluate the
//! *projected* total cost (profiling so far + training at the current best)
//! and total time, and report the change each step brought. The paper's
//! point: "most profiling steps do not bring benefits and can lead to lower
//! performance" — several deltas are negative because the probe's own cost
//! outweighed what it taught.

use crate::report::FigReport;
use mlcd::prelude::*;
use mlcd::search::ConvBo;
use serde_json::json;

/// Run ConvBO and trace per-step deltas.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig5",
        "per-step cost-saving and speedup of ConvBO on AlexNet/CIFAR-10 (negative = the step hurt)",
    );
    let job = TrainingJob::alexnet_cifar10();
    let runner = ExperimentRunner::new(seed);
    let out = runner.run(&ConvBo::seeded(seed), &job, &Scenario::FastestUnlimited);
    let samples = job.total_samples();

    // Projected totals after each prefix of the trace.
    let mut prev: Option<(f64, f64)> = None; // (total_h, total_usd)
    let mut best_speed = 0.0f64;
    let mut best_d: Option<mlcd::deployment::Deployment> = None;
    let mut rows = Vec::new();
    let mut deltas = Vec::new();
    r.line(format!(
        "{:>4} {:>16} {:>10} | {:>12} {:>14}",
        "step", "probe", "speed", "Δtime(h)", "Δcost($)"
    ));
    for step in &out.search.steps {
        let obs = step.observation;
        if obs.speed > best_speed {
            best_speed = obs.speed;
            best_d = Some(obs.deployment);
        }
        let d = best_d.expect("have a best");
        let train_h = samples / best_speed / 3600.0;
        let train_usd = d.hourly_cost().dollars() * train_h;
        let total_h = step.cum_profile_time.as_hours() + train_h;
        let total_usd = step.cum_profile_cost.dollars() + train_usd;
        let (dt, dc) = match prev {
            // Positive = improvement (time/cost went down).
            Some((ph, pc)) => (ph - total_h, pc - total_usd),
            None => (0.0, 0.0),
        };
        if prev.is_some() {
            deltas.push((dt, dc));
        }
        r.line(format!(
            "{:>4} {:>16} {:>10.0} | {:>12.3} {:>14.3}",
            step.index,
            obs.deployment.to_string(),
            obs.speed,
            dt,
            dc
        ));
        rows.push(json!({
            "step": step.index, "probe": obs.deployment.to_string(),
            "speedup_h": dt, "saving_usd": dc,
        }));
        prev = Some((total_h, total_usd));
    }

    let negative = deltas.iter().filter(|(dt, dc)| *dt < 0.0 || *dc < 0.0).count();
    r.claim(
        format!(
            "a substantial share of ConvBO steps bring no benefit or hurt ({negative}/{} steps)",
            deltas.len()
        ),
        deltas.len() >= 4 && negative * 2 >= deltas.len(),
    );
    r.claim(
        "at least one step strictly hurt both time and cost",
        deltas.iter().any(|(dt, dc)| *dt < 0.0 && *dc < 0.0),
    );
    r.data = json!(rows);
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig5_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
