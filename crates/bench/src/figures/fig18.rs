//! Fig 18 — sensitivity to the budget: total cost and total time vs
//! budget ∈ {100, 140, 180, 220} for ConvBO, budget-aware ConvBO
//! ("BO_imprd"), CherryPick ("ConvCP"), budget-aware CherryPick
//! ("CP_imprd"), HeterBO and Opt, on ResNet/CIFAR-10.
//!
//! As in the paper, CherryPick variants are favoured by trimming their
//! space to the optimal instance type (c5n.4xlarge in our landscape —
//! the paper's §V-D does exactly this). This is also where the paper's
//! headline numbers live: HeterBO beats ConvBO by up to 3.1× and
//! CherryPick by up to 2.34× in total time.

use crate::report::FigReport;
use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};
use serde_json::json;

/// Budgets swept (dollars).
pub const BUDGETS: [f64; 4] = [100.0, 140.0, 180.0, 220.0];

fn types() -> Vec<InstanceType> {
    vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ]
}

/// Run the sweep.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig18",
        "total cost (a) and total time (b) vs budget, ResNet/CIFAR-10: ConvBO / BO_imprd / ConvCP / CP_imprd / HeterBO / Opt",
    );
    let job = TrainingJob::resnet_cifar10();
    let cherry_space = vec![InstanceType::C5n4xlarge];

    let mut table = Vec::new();
    r.line(format!(
        "{:>7} | {:<9} {:>9} {:>9} {:>5} | {}",
        "budget", "searcher", "cost($)", "time(h)", "ok", "pick"
    ));
    let mut ratios: Vec<(f64, f64)> = Vec::new(); // (vs ConvBO, vs ConvCP) per budget
    for budget in BUDGETS {
        let scenario = Scenario::FastestWithBudget(Money::from_dollars(budget));
        let runner = ExperimentRunner::new(seed).with_types(types());

        let outcomes = vec![
            runner.run(&ConvBo::seeded(seed), &job, &scenario),
            runner.run(&ConvBo::budget_aware(seed), &job, &scenario),
            runner.run(&CherryPick::with_experience(seed, cherry_space.clone()), &job, &scenario),
            runner.run(
                &CherryPick::budget_aware(seed, Some(cherry_space.clone())),
                &job,
                &scenario,
            ),
            runner.run(&HeterBo::seeded(seed), &job, &scenario),
        ];
        let opt = runner.optimum(&job, &scenario).expect("feasible optimum");
        for o in &outcomes {
            r.line(format!(
                "{:>7} | {:<9} {:>9.2} {:>9.2} {:>5} | {}",
                budget,
                o.searcher,
                o.total_cost.dollars(),
                o.total_hours(),
                if o.satisfied { "yes" } else { "NO" },
                o.plan.map(|p| p.deployment.to_string()).unwrap_or_default()
            ));
            table.push(json!({
                "budget": budget, "searcher": o.searcher,
                "total_usd": o.total_cost.dollars(), "total_h": o.total_hours(),
                "satisfied": o.satisfied,
            }));
        }
        r.line(format!(
            "{:>7} | {:<9} {:>9.2} {:>9.2} {:>5} | {}",
            budget,
            "Opt",
            opt.train_cost.dollars(),
            opt.train_time.as_hours(),
            "yes",
            opt.deployment
        ));
        table.push(json!({"budget": budget, "searcher": "Opt",
            "total_usd": opt.train_cost.dollars(), "total_h": opt.train_time.as_hours(),
            "satisfied": true}));

        let h_time = outcomes[4].total_hours();
        ratios.push((outcomes[0].total_hours() / h_time, outcomes[2].total_hours() / h_time));
    }

    let max_vs_convbo = ratios.iter().map(|r| r.0).fold(0.0_f64, f64::max);
    let max_vs_cp = ratios.iter().map(|r| r.1).fold(0.0_f64, f64::max);
    r.line(format!(
        "headline: HeterBO total-time advantage up to {max_vs_convbo:.2}× vs ConvBO (paper: 3.1×), up to {max_vs_cp:.2}× vs CherryPick (paper: 2.34×)"
    ));
    // Paper: up to 3.1×. Our compliant HeterBO deliberately trades pick
    // speed for budget compliance at tight budgets, which caps the time
    // ratio well below the paper's (see EXPERIMENTS.md); the direction
    // must still hold.
    r.claim(
        format!("HeterBO beats ConvBO in total time at some budget ({max_vs_convbo:.2}× ≥ 1.15×)"),
        max_vs_convbo >= 1.15,
    );
    // Our CherryPick-with-oracle-trimming (a 1-type, 11-point grid) is a
    // stronger baseline than the paper's; parity in time plus the
    // compliance gap below is the reproducible shape (see EXPERIMENTS.md).
    r.claim(
        format!(
            "HeterBO is at worst near-parity with oracle-trimmed CherryPick in total time (HeterBO ≤ 1.35× CP; got CP/H = {max_vs_cp:.2}×)"
        ),
        max_vs_cp >= 1.0 / 1.35,
    );
    r.claim(
        "oracle-trimmed CherryPick still violates the budget somewhere in the sweep",
        table
            .iter()
            .filter(|row| row["searcher"] == "CherryPick")
            .any(|row| !row["satisfied"].as_bool().unwrap()),
    );
    r.claim(
        "HeterBO satisfies the budget at every swept point",
        table
            .iter()
            .filter(|row| row["searcher"] == "HeterBO")
            .all(|row| row["satisfied"].as_bool().unwrap()),
    );
    r.claim(
        "plain ConvBO violates the budget somewhere in the sweep",
        table
            .iter()
            .filter(|row| row["searcher"] == "ConvBO")
            .any(|row| !row["satisfied"].as_bool().unwrap()),
    );
    r.claim(
        "budget-aware variants stop in time (BO_imprd and CP_imprd always satisfied)",
        table
            .iter()
            .filter(|row| row["searcher"] == "BO_imprd" || row["searcher"] == "CP_imprd")
            .all(|row| row["satisfied"].as_bool().unwrap()),
    );
    r.data = json!({"table": table, "max_speedup_vs_convbo": max_vs_convbo,
        "max_speedup_vs_cherrypick": max_vs_cp});
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig18_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
