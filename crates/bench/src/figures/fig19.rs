//! Fig 19 — scalability with model size: HeterBO's total-time speedup and
//! total-cost saving over ConvBO for models from 6.4 M (AlexNet) to 20 B
//! (ZeRO) parameters.
//!
//! The paper reports the speedup growing 1.3×→6.5× and the saving
//! 69 %→92 %, and attributes it to "larger model size results in larger
//! deployment search space": bigger models both *need* bigger clusters
//! (memory sharding) and pay far more per probe (cluster price × the
//! state-distribution warm-up), so cost-blind exploration bleeds time and
//! money ever faster. We reproduce the setup accordingly — each rung of
//! the ladder searches the space that model realistically deploys on, and
//! ZeRO runs are simulated on a short benchmark slice exactly as the paper
//! does.

use crate::report::FigReport;
use mlcd::prelude::*;
use mlcd::search::ConvBo;
use serde_json::json;

struct Rung {
    job: TrainingJob,
    label: &'static str,
    params: f64,
    types: Vec<InstanceType>,
    max_nodes: u32,
}

/// The model-size ladder with its per-size deployment spaces.
fn ladder() -> Vec<Rung> {
    vec![
        Rung {
            job: TrainingJob::alexnet_cifar10(),
            label: "6.4M",
            params: 6.4e6,
            types: vec![InstanceType::C5Large, InstanceType::C5Xlarge, InstanceType::C54xlarge],
            max_nodes: 10,
        },
        Rung {
            job: TrainingJob::resnet_cifar10(),
            label: "60.3M",
            params: 60.3e6,
            types: vec![
                InstanceType::C5Xlarge,
                InstanceType::C54xlarge,
                InstanceType::C5n4xlarge,
                InstanceType::P2Xlarge,
            ],
            max_nodes: 25,
        },
        Rung {
            job: TrainingJob::bert_tensorflow(),
            label: "340M",
            params: 340e6,
            types: vec![
                InstanceType::C5nXlarge,
                InstanceType::C5n4xlarge,
                InstanceType::P2Xlarge,
                InstanceType::P32xlarge,
            ],
            max_nodes: 32,
        },
        Rung {
            job: TrainingJob::zero_8b(),
            label: "8B",
            params: 8e9,
            types: vec![
                InstanceType::C5n9xlarge,
                InstanceType::P28xlarge,
                InstanceType::P32xlarge,
                InstanceType::P38xlarge,
            ],
            max_nodes: 64,
        },
        Rung {
            job: TrainingJob::zero_20b(),
            label: "20B",
            params: 20e9,
            types: vec![
                InstanceType::C5n9xlarge,
                InstanceType::P28xlarge,
                InstanceType::P32xlarge,
                InstanceType::P38xlarge,
            ],
            max_nodes: 100,
        },
    ]
}

/// Run the ladder, averaging a couple of seeds per rung.
pub fn run(seed: u64) -> FigReport {
    let mut r = FigReport::new(
        "fig19",
        "HeterBO vs ConvBO total-time speedup and cost saving vs model size",
    );
    const REPS: u64 = 3;
    r.line(format!(
        "{:>7} {:>12} {:>12} {:>9} | {:>12} {:>12} {:>10}",
        "size", "HeterBO(h)", "ConvBO(h)", "speedup", "HeterBO($)", "ConvBO($)", "saving"
    ));
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut savings = Vec::new();
    for rung in ladder() {
        // A realistic user budget scaled to the job: twice the training
        // cost of the time-optimal deployment (floored for the tiny jobs).
        let probe_runner = ExperimentRunner::new(seed)
            .with_types(rung.types.clone())
            .with_max_nodes(rung.max_nodes);
        let opt = probe_runner
            .optimum(&rung.job, &Scenario::FastestUnlimited)
            .expect("every rung has feasible deployments");
        let budget = Money::from_dollars((2.0 * opt.train_cost.dollars()).max(40.0));
        let scenario = Scenario::FastestWithBudget(budget);

        let (mut ht, mut ct, mut hc, mut cc) = (0.0, 0.0, 0.0, 0.0);
        let (mut h_sat, mut c_sat) = (0usize, 0usize);
        for i in 0..REPS {
            let s = seed + i * 7919;
            let runner = ExperimentRunner::new(s)
                .with_types(rung.types.clone())
                .with_max_nodes(rung.max_nodes);
            let h = runner.run(&HeterBo::seeded(s), &rung.job, &scenario);
            let c = runner.run(&ConvBo::seeded(s), &rung.job, &scenario);
            h_sat += usize::from(h.satisfied);
            c_sat += usize::from(c.satisfied);
            ht += h.total_hours();
            ct += c.total_hours();
            hc += h.total_cost.dollars();
            cc += c.total_cost.dollars();
        }
        let (ht, ct, hc, cc) =
            (ht / REPS as f64, ct / REPS as f64, hc / REPS as f64, cc / REPS as f64);
        let speedup = ct / ht;
        let saving = 1.0 - hc / cc;
        r.line(format!(
            "{:>7} {ht:>12.2} {ct:>12.2} {speedup:>8.2}× | {hc:>12.2} {cc:>12.2} {:>9.0}%",
            rung.label,
            saving * 100.0
        ));
        rows.push(json!({"size": rung.label, "params": rung.params, "heterbo_h": ht,
            "convbo_h": ct, "speedup": speedup, "heterbo_usd": hc, "convbo_usd": cc,
            "saving": saving, "heterbo_sat": h_sat, "convbo_sat": c_sat, "reps": REPS}));
        speedups.push(speedup);
        savings.push(saving);
    }

    // Shape checks. The paper reports the speedup growing 1.3→6.5×; in our
    // substrate probe *duration* is nearly homogeneous across cluster
    // sizes (the paper's 10-min rule + state warm-up), so HeterBO's
    // advantage compounds in money rather than wall-clock — EXPERIMENTS.md
    // discusses the deviation.
    let (first_sv, last_sv) = (savings[0], *savings.last().unwrap());
    r.claim(
        format!(
            "cost saving grows from the smallest to the largest model ({:.0}% → {:.0}%)",
            first_sv * 100.0,
            last_sv * 100.0
        ),
        last_sv > 0.3 && last_sv > first_sv,
    );
    let mean_s = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let last_s = *speedups.last().unwrap();
    r.claim(
        format!(
            "HeterBO is faster on average and at the largest scale (mean {mean_s:.2}×, 20B {last_s:.2}×)"
        ),
        mean_s >= 1.0 && last_s >= 1.1,
    );
    let h_sat_big: u64 = rows[3..].iter().map(|r| r["heterbo_sat"].as_u64().unwrap()).sum();
    let c_sat_big: u64 = rows[3..].iter().map(|r| r["convbo_sat"].as_u64().unwrap()).sum();
    r.claim(
        format!(
            "at billion-parameter scale HeterBO keeps the scaled budget and ConvBO blows it (HeterBO {h_sat_big}/{}, ConvBO {c_sat_big}/{} compliant)",
            2 * REPS,
            2 * REPS
        ),
        h_sat_big > c_sat_big,
    );
    r.data = json!(rows);
    r
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "slow: twenty full searches — run with --ignored --release"]
    fn fig19_claims_hold() {
        let r = super::run(2020);
        assert!(r.all_claims_hold(), "{}", r.render());
    }
}
