//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run -p mlcd-bench --bin figures --release -- all
//! cargo run -p mlcd-bench --bin figures --release -- fig18 fig19
//! cargo run -p mlcd-bench --bin figures --release -- --seed 7 fig9
//! cargo run -p mlcd-bench --bin figures --release -- --json all   # JSON to stdout
//! ```

use mlcd_bench::figures;
use mlcd_bench::DEFAULT_SEED;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = DEFAULT_SEED;
    let mut json = false;

    // Tiny hand-rolled flag parsing: --seed N, --json, then figure ids.
    let mut ids: Vec<String> = Vec::new();
    while let Some(arg) = args.first().cloned() {
        args.remove(0);
        match arg.as_str() {
            "--seed" => {
                if args.is_empty() {
                    usage("missing value after --seed");
                }
                seed = args.remove(0).parse().unwrap_or_else(|_| usage("--seed takes an integer"));
            }
            "--json" => json = true,
            "--help" | "-h" => usage(""),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage("no figure ids given");
    }
    if ids.iter().any(|i| i == "all") {
        ids = figures::ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    // Reject unknown ids before paying for any figure.
    if let Some(bad) = ids.iter().find(|i| !figures::ALL_IDS.contains(&i.as_str())) {
        eprintln!("unknown figure id: {bad} (known: {:?})", figures::ALL_IDS);
        std::process::exit(2);
    }

    // The figures are independent, self-seeded experiments: fan them out
    // and print in request order (identical output to a sequential run).
    let mut failures = 0usize;
    let mut reports = Vec::new();
    for report in figures::run_many(&ids, seed) {
        let report = report.expect("ids validated above");
        if json {
            reports.push(serde_json::to_value(&report).expect("serialisable"));
        } else {
            println!("{}", report.render());
        }
        if !report.all_claims_hold() {
            failures += 1;
        }
    }
    if json {
        println!("{}", serde_json::to_string_pretty(&reports).expect("serialisable"));
    }
    if failures > 0 {
        eprintln!("{failures} figure(s) had failing shape checks");
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: figures [--seed N] [--json] <id>... | all\n  ids: {:?}", figures::ALL_IDS);
    std::process::exit(2);
}
