//! Convert the criterion shim's JSONL stream into a machine-readable
//! benchmark report.
//!
//! The vendored criterion shim appends one JSON object per benchmark to
//! the file named by the `CRITERION_JSON` env var. This bin folds that
//! stream into a single report keyed by bench name, stamps it with the
//! current git revision, and (for the `gp_fit` group) computes speedups
//! against the recorded pre-fast-path baseline.
//!
//! ```text
//! CRITERION_JSON=/tmp/gp.jsonl cargo bench -p mlcd-bench --bench gp_bench
//! cargo run -p mlcd-bench --bin bench_report -- /tmp/gp.jsonl BENCH_gp.json
//! ```
//!
//! If the same bench name appears multiple times in the stream (several
//! runs appended to one file), the *median of medians* is reported and
//! the run count is recorded, which is the right way to use this on a
//! noisy machine: run the bench a few times, then fold once.

use serde_json::{json, Value};
use std::process::Command;

/// Pre-PR `gp_fit` medians (nanoseconds), measured at rev `a83e1c9`
/// before the cached-distance fast path landed. Kept here so the report
/// always quotes baseline and current side by side.
const PRE_PR_BASELINE: &[(&str, f64)] =
    &[("gp_fit/8", 3.00e6), ("gp_fit/16", 9.76e6), ("gp_fit/32", 38.41e6), ("gp_fit/64", 150.18e6)];
const PRE_PR_REV: &str = "a83e1c9";

/// Pre-PR `search_bench` medians (nanoseconds), measured at rev
/// `6969871` before the blocked kernels / allocation-free scoring
/// workspace landed (median of 3 release runs). The fig9 grid benches
/// did not exist then, so the end-to-end speedup is quoted on the
/// searcher benches that did.
const PRE_PR_SEARCH: &[(&str, f64)] = &[
    ("search_end_to_end/heterbo", 14.98e6),
    ("search_end_to_end/convbo", 26.43e6),
    ("search_end_to_end/cherrypick", 14.91e6),
    ("search_gp_refits/warm_refits", 17.73e6),
    ("search_gp_refits/cold_refits", 26.33e6),
    ("candidate_scoring/per_point_two_passes", 124.40e3),
    ("candidate_scoring/batched_single_pass", 55.37e3),
];
const PRE_PR_SEARCH_REV: &str = "6969871";

/// Pre-PR `cloudsim_session` median (nanoseconds), measured at rev
/// `2963fdf` before the provider was rebuilt on the discrete-event
/// engine (median of 3 release runs of a hand-rolled timer over the same
/// spot-churn workload). The engine-level `cloudsim_step` benches have no
/// pre-PR counterpart (there was no steppable engine), so only the façade
/// workload carries a baseline. Note the ratio here is a *cost*, not a
/// speedup: the event queue buys observability and multi-tenant semantics
/// for roughly 2× on this façade-bound microworkload.
const PRE_PR_CLOUDSIM: &[(&str, f64)] = &[("cloudsim_session/spot_churn_8_seeds", 13.47e3)];
const PRE_PR_CLOUDSIM_REV: &str = "2963fdf";

fn field_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let input = args.next().unwrap_or_else(|| "criterion.jsonl".to_string());
    let output = args.next().unwrap_or_else(|| "BENCH_gp.json".to_string());

    let body = match std::fs::read_to_string(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_report: cannot read {input}: {e}");
            std::process::exit(1);
        }
    };

    // name -> per-run records (a rerun appends, it does not overwrite).
    let mut runs: Vec<(String, Value)> = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match serde_json::from_str::<Value>(line) {
            Ok(v) => match v.get("name").and_then(Value::as_str) {
                Some(name) => runs.push((name.to_string(), v.clone())),
                None => eprintln!("bench_report: line {} has no name, skipped", lineno + 1),
            },
            Err(e) => eprintln!("bench_report: bad JSON on line {}: {e:?}", lineno + 1),
        }
    }
    if runs.is_empty() {
        eprintln!("bench_report: no benchmark records in {input}");
        std::process::exit(1);
    }

    let mut names: Vec<String> = runs.iter().map(|(n, _)| n.clone()).collect();
    names.sort();
    names.dedup();

    let mut benches: Vec<(String, Value)> = Vec::new();
    for name in &names {
        let of_name: Vec<&Value> = runs.iter().filter(|(n, _)| n == name).map(|(_, v)| v).collect();
        let mut medians: Vec<f64> =
            of_name.iter().filter_map(|v| field_f64(v, "median_ns")).collect();
        medians.sort_by(|a, b| a.total_cmp(b));
        if medians.is_empty() {
            continue;
        }
        let median_ns = medians[medians.len() / 2];
        let min_ns =
            of_name.iter().filter_map(|v| field_f64(v, "min_ns")).fold(f64::INFINITY, f64::min);
        let max_ns =
            of_name.iter().filter_map(|v| field_f64(v, "max_ns")).fold(f64::NEG_INFINITY, f64::max);
        let mut fields: Vec<(String, Value)> = vec![
            ("median_ns".into(), json!(median_ns)),
            ("min_ns".into(), json!(min_ns)),
            ("max_ns".into(), json!(max_ns)),
            ("runs".into(), json!(medians.len() as u64)),
        ];
        // Per-run sample spread ((max−min)/median) and warm-up run count,
        // recorded by newer shim builds; the worst run's spread flags a
        // bench whose fold hides an unstable sample set. Old JSONL
        // streams lack the fields, so they stay absent rather than zero.
        let spread =
            of_name.iter().filter_map(|v| field_f64(v, "spread")).fold(f64::NEG_INFINITY, f64::max);
        if spread.is_finite() {
            fields.push(("spread_max".into(), json!(round2(spread))));
            if let Some(w) = of_name.iter().filter_map(|v| field_f64(v, "warmup_runs")).next() {
                fields.push(("warmup_runs".into(), json!(w as u64)));
            }
        }
        benches.push((name.clone(), Value::Object(fields)));
    }

    let median_of = |name: &str| -> Option<f64> {
        benches.iter().find(|(n, _)| n == name).and_then(|(_, v)| field_f64(v, "median_ns"))
    };

    // The gp_fit baseline comparison only belongs in reports that
    // actually fold gp_fit runs; a service-bench report must not quote
    // an unrelated (and always-empty) speedup table.
    let has_gp = names.iter().any(|n| n.starts_with("gp_fit/"));
    let mut baseline: Vec<(String, Value)> = Vec::new();
    let mut speedups: Vec<(String, Value)> = Vec::new();
    if has_gp {
        for &(name, base_ns) in PRE_PR_BASELINE {
            baseline.push((name.to_string(), json!(base_ns)));
            if let Some(cur) = median_of(name) {
                speedups.push((name.to_string(), json!(round2(base_ns / cur))));
            }
        }
    }

    // Same idea for the search hot path: only a report folding
    // `search_end_to_end` runs quotes the searcher baseline.
    let has_search = names.iter().any(|n| n.starts_with("search_end_to_end/"));
    let mut search_baseline: Vec<(String, Value)> = Vec::new();
    let mut search_speedups: Vec<(String, Value)> = Vec::new();
    if has_search {
        for &(name, base_ns) in PRE_PR_SEARCH {
            search_baseline.push((name.to_string(), json!(base_ns)));
            if let Some(cur) = median_of(name) {
                search_speedups.push((name.to_string(), json!(round2(base_ns / cur))));
            }
        }
    }

    // And for the cloudsim façade: only a report folding
    // `cloudsim_session` runs quotes the pre-event-engine baseline.
    let has_cloudsim = names.iter().any(|n| n.starts_with("cloudsim_session/"));
    let mut cloudsim_baseline: Vec<(String, Value)> = Vec::new();
    let mut cloudsim_ratios: Vec<(String, Value)> = Vec::new();
    if has_cloudsim {
        for &(name, base_ns) in PRE_PR_CLOUDSIM {
            cloudsim_baseline.push((name.to_string(), json!(base_ns)));
            if let Some(cur) = median_of(name) {
                cloudsim_ratios.push((name.to_string(), json!(round2(base_ns / cur))));
            }
        }
    }

    // Fleet quality records carry a `metrics` object instead of timing
    // fields (they measure scheduling quality, not speed, and are
    // bit-deterministic — the last record of a name wins). Surface them
    // verbatim, split into the baseline and policy sections, and derive
    // the headline comparison: each policy's saving and miss rate next
    // to the fifo-greedy baseline at the same contention level.
    let mut fleet_quality: Vec<(String, Value)> = Vec::new();
    let mut fleet_baseline: Vec<(String, Value)> = Vec::new();
    for name in &names {
        let Some((_, v)) = runs.iter().rev().find(|(n, v)| n == name && v.get("metrics").is_some())
        else {
            continue;
        };
        if let Some(rest) = name.strip_prefix("fleet_quality/") {
            fleet_quality.push((rest.to_string(), v["metrics"].clone()));
        } else if let Some(rest) = name.strip_prefix("fleet_baseline/") {
            fleet_baseline.push((rest.to_string(), v["metrics"].clone()));
        }
    }
    let mut fleet_vs_fifo: Vec<(String, Value)> = Vec::new();
    for (point, m) in &fleet_quality {
        let Some((level, policy)) = point.split_once('/') else { continue };
        if policy == "fifo" {
            continue;
        }
        let fifo =
            fleet_quality.iter().find(|(p, _)| p == &format!("{level}/fifo")).map(|(_, v)| v);
        let Some(fifo) = fifo else { continue };
        let f = |v: &Value, k: &str| v.get(k).and_then(Value::as_f64);
        if let (Some(s), Some(fs)) = (f(m, "saving_vs_greedy_pct"), f(fifo, "saving_vs_greedy_pct"))
        {
            fleet_vs_fifo.push((
                point.clone(),
                json!({
                    "saving_vs_greedy_pct": s,
                    "fifo_saving_vs_greedy_pct": fs,
                    "saving_delta_pct": round2(s - fs),
                    "miss_rate": f(m, "miss_rate"),
                    "fifo_miss_rate": f(fifo, "miss_rate"),
                }),
            ));
        }
    }

    // Derived saturation view: fold `service_saturation/<mode>/c<C>/...`
    // records into sessions/s and p99 submit latency per (mode, conc),
    // plus group-commit speedup (fsync_each ns / group ns) per conc.
    let mut saturation: Vec<(String, Value)> = Vec::new();
    let mut sat_speedups: Vec<(String, Value)> = Vec::new();
    let sat_points: Vec<String> = names
        .iter()
        .filter_map(|n| {
            n.strip_prefix("service_saturation/")?.strip_suffix("/ns_per_session").map(String::from)
        })
        .collect();
    for point in &sat_points {
        let ns = median_of(&format!("service_saturation/{point}/ns_per_session"));
        let p99 = median_of(&format!("service_saturation/{point}/p99_submit_ns"));
        if let Some(ns) = ns {
            saturation.push((
                point.clone(),
                json!({
                    "sessions_per_sec": round2(1e9 / ns),
                    "p99_submit_ms": p99.map_or(Value::Null, |p| json!(round2(p / 1e6))),
                }),
            ));
        }
    }
    let concs: Vec<String> = {
        let mut c: Vec<String> =
            sat_points.iter().filter_map(|p| p.strip_prefix("group/c").map(String::from)).collect();
        c.sort();
        c.dedup();
        c
    };
    for conc in &concs {
        let group = median_of(&format!("service_saturation/group/c{conc}/ns_per_session"));
        let fsync = median_of(&format!("service_saturation/fsync_each/c{conc}/ns_per_session"));
        if let (Some(g), Some(f)) = (group, fsync) {
            sat_speedups.push((format!("c{conc}"), json!(round2(f / g))));
        }
    }

    let mut report: Vec<(String, Value)> = vec![
        ("git_rev".into(), json!(git_rev())),
        ("source".into(), json!(input.clone())),
        (
            "times_are".into(),
            json!("nanoseconds per iteration; median across runs of per-run medians"),
        ),
        ("benches".into(), Value::Object(benches)),
    ];
    if has_gp {
        report.push((
            "baseline_pre_pr".into(),
            json!({
                "rev": PRE_PR_REV,
                "median_ns": Value::Object(baseline.clone()),
            }),
        ));
        report.push(("speedup_vs_pre_pr".into(), Value::Object(speedups.clone())));
    }
    if has_search {
        // A stream folding both gp_fit and search runs gets the search
        // section under prefixed keys so no JSON key is duplicated.
        let (bkey, skey) = if has_gp {
            ("search_baseline_pre_pr", "search_speedup_vs_pre_pr")
        } else {
            ("baseline_pre_pr", "speedup_vs_pre_pr")
        };
        report.push((
            bkey.into(),
            json!({
                "rev": PRE_PR_SEARCH_REV,
                "median_ns": Value::Object(search_baseline.clone()),
            }),
        ));
        report.push((skey.into(), Value::Object(search_speedups.clone())));
    }
    if has_cloudsim {
        let (bkey, skey) = if has_gp || has_search {
            ("cloudsim_baseline_pre_pr", "cloudsim_speedup_vs_pre_pr")
        } else {
            ("baseline_pre_pr", "speedup_vs_pre_pr")
        };
        report.push((
            bkey.into(),
            json!({
                "rev": PRE_PR_CLOUDSIM_REV,
                "median_ns": Value::Object(cloudsim_baseline.clone()),
            }),
        ));
        report.push((skey.into(), Value::Object(cloudsim_ratios.clone())));
    }
    if !saturation.is_empty() {
        report.push(("saturation".into(), Value::Object(saturation)));
        report.push(("group_commit_speedup".into(), Value::Object(sat_speedups.clone())));
    }
    if !fleet_quality.is_empty() {
        report.push(("fleet_quality".into(), Value::Object(fleet_quality)));
        if !fleet_baseline.is_empty() {
            report.push(("fleet_baseline".into(), Value::Object(fleet_baseline)));
        }
        report.push(("fleet_vs_fifo".into(), Value::Object(fleet_vs_fifo.clone())));
    }
    let report = Value::Object(report);

    let pretty = serde_json::to_string_pretty(&report).expect("report serialises");
    if let Err(e) = std::fs::write(&output, pretty + "\n") {
        eprintln!("bench_report: cannot write {output}: {e}");
        std::process::exit(1);
    }
    println!("wrote {output} ({} benches)", names.len());
    for (name, s) in speedups.iter().chain(&search_speedups).chain(&cloudsim_ratios) {
        if let Some(x) = s.as_f64() {
            println!("  {name}: {x}x vs pre-PR baseline");
        }
    }
    for (conc, s) in &sat_speedups {
        if let Some(x) = s.as_f64() {
            println!("  saturation {conc}: group commit {x}x vs per-append fsync");
        }
    }
    for (point, v) in &fleet_vs_fifo {
        let f = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(f64::NAN);
        println!(
            "  fleet {point}: saving {:.1}% vs greedy (fifo {:.1}%), miss rate {:.2} (fifo {:.2})",
            f("saving_vs_greedy_pct"),
            f("fifo_saving_vs_greedy_pct"),
            f("miss_rate"),
            f("fifo_miss_rate"),
        );
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn git_rev() -> String {
    let rev = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let dirty = Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false);
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}
