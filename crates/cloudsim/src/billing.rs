//! Per-second billing with AWS's 60-second minimum.
//!
//! Every cluster run produces [`UsageRecord`]s; [`Billing`] accumulates
//! them and answers cost queries. Money is a newtype over `f64` dollars —
//! the amounts in this domain (profiling budgets of tens to hundreds of
//! dollars) are far from `f64` precision hazards, but the type prevents
//! accidentally mixing dollars with hours.

use crate::catalog::InstanceType;
use crate::cluster::ClusterId;
use crate::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// An amount of money in USD.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Money(f64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0.0);

    /// Construct from dollars.
    ///
    /// # Panics
    /// Panics on non-finite input (negative is allowed: budget arithmetic
    /// produces deficits).
    pub fn from_dollars(d: f64) -> Self {
        assert!(d.is_finite(), "Money: non-finite amount {d}");
        Money(d)
    }

    /// Amount in dollars.
    pub fn dollars(&self) -> f64 {
        self.0
    }

    /// Larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }

    /// Scale by a factor.
    pub fn scale(self, k: f64) -> Money {
        Money::from_dollars(self.0 * k)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, o: Money) -> Money {
        Money(self.0 + o.0)
    }
}
impl AddAssign for Money {
    fn add_assign(&mut self, o: Money) {
        self.0 += o.0;
    }
}
impl Sub for Money {
    type Output = Money;
    fn sub(self, o: Money) -> Money {
        Money(self.0 - o.0)
    }
}

impl std::fmt::Display for Money {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "${:.2}", self.0)
    }
}

impl std::iter::Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

/// AWS bills Linux on-demand per second with a 60-second minimum.
pub fn billed_duration(actual: SimDuration) -> SimDuration {
    actual.max(SimDuration::from_secs(60.0))
}

/// One contiguous usage of `n` instances of a type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageRecord {
    /// The cluster that accrued the usage. Multi-tenant drivers sharing
    /// one `SimCloud` attribute spend per job through this.
    pub cluster: ClusterId,
    /// Instance type used.
    pub itype: InstanceType,
    /// Number of instances.
    pub n: u32,
    /// Launch time.
    pub start: SimTime,
    /// Termination time.
    pub end: SimTime,
    /// Hourly rate actually charged per instance; `None` means the
    /// on-demand list price (spot launches record their locked-in spot
    /// rate here).
    pub hourly_usd: Option<f64>,
}

impl UsageRecord {
    /// An on-demand usage record (attributed to the null cluster id; the
    /// provider fills real ids when it settles `ClusterTerminated` events).
    pub fn on_demand(itype: InstanceType, n: u32, start: SimTime, end: SimTime) -> Self {
        UsageRecord { cluster: ClusterId::default(), itype, n, start, end, hourly_usd: None }
    }

    /// Wall-clock duration of the usage.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// The hourly rate charged per instance.
    pub fn rate(&self) -> f64 {
        self.hourly_usd.unwrap_or_else(|| self.itype.hourly_usd())
    }

    /// Billed cost: n × hourly rate × billed hours.
    pub fn cost(&self) -> Money {
        let hours = billed_duration(self.duration()).as_hours();
        Money::from_dollars(self.rate() * self.n as f64 * hours)
    }
}

/// Thread-safe accumulator of usage records.
#[derive(Debug, Default)]
pub struct Billing {
    records: Mutex<Vec<UsageRecord>>,
}

impl Billing {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one usage record.
    pub fn record(&self, r: UsageRecord) {
        self.records.lock().push(r);
    }

    /// Total billed cost across all records.
    pub fn total_cost(&self) -> Money {
        self.records.lock().iter().map(|r| r.cost()).sum()
    }

    /// Number of records.
    pub fn n_records(&self) -> usize {
        self.records.lock().len()
    }

    /// Snapshot of the ledger.
    pub fn records(&self) -> Vec<UsageRecord> {
        self.records.lock().clone()
    }

    /// Total instance-hours (Σ n × duration), a common cloud-cost metric.
    pub fn instance_hours(&self) -> f64 {
        self.records.lock().iter().map(|r| r.n as f64 * r.duration().as_hours()).sum()
    }

    /// Billed cost attributed to one cluster (ledger order preserved) —
    /// how a multi-tenant driver splits a shared bill per job.
    pub fn cost_for_cluster(&self, cluster: ClusterId) -> Money {
        self.records.lock().iter().filter(|r| r.cluster == cluster).map(|r| r.cost()).sum()
    }
}

/// Quote (without recording) the cost of running `n` × `itype` for `d`.
pub fn quote(itype: InstanceType, n: u32, d: SimDuration) -> Money {
    Money::from_dollars(itype.hourly_usd() * n as f64 * billed_duration(d).as_hours())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(itype: InstanceType, n: u32, start_s: f64, end_s: f64) -> UsageRecord {
        UsageRecord::on_demand(itype, n, SimTime::from_secs(start_s), SimTime::from_secs(end_s))
    }

    #[test]
    fn one_hour_of_one_instance() {
        let r = rec(InstanceType::C5Xlarge, 1, 0.0, 3600.0);
        assert!((r.cost().dollars() - 0.17).abs() < 1e-12);
    }

    #[test]
    fn cost_scales_with_count_and_time() {
        let base = rec(InstanceType::C5Xlarge, 1, 0.0, 3600.0).cost().dollars();
        assert!(
            (rec(InstanceType::C5Xlarge, 10, 0.0, 3600.0).cost().dollars() - base * 10.0).abs()
                < 1e-9
        );
        assert!(
            (rec(InstanceType::C5Xlarge, 1, 0.0, 7200.0).cost().dollars() - base * 2.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn sixty_second_minimum_applies() {
        let short = rec(InstanceType::P32xlarge, 1, 0.0, 5.0);
        let sixty = rec(InstanceType::P32xlarge, 1, 0.0, 60.0);
        assert_eq!(short.cost(), sixty.cost());
        let bit_more = rec(InstanceType::P32xlarge, 1, 0.0, 61.0);
        assert!(bit_more.cost() > sixty.cost());
    }

    #[test]
    fn ledger_accumulates() {
        let b = Billing::new();
        b.record(rec(InstanceType::C5Xlarge, 2, 0.0, 3600.0));
        b.record(rec(InstanceType::P2Xlarge, 1, 0.0, 1800.0));
        assert_eq!(b.n_records(), 2);
        let want = 2.0 * 0.17 + 0.90 * 0.5;
        assert!((b.total_cost().dollars() - want).abs() < 1e-9);
        assert!((b.instance_hours() - (2.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn quote_matches_record() {
        let q = quote(InstanceType::C5n4xlarge, 7, SimDuration::from_mins(13.0));
        let r = rec(InstanceType::C5n4xlarge, 7, 0.0, 13.0 * 60.0);
        assert_eq!(q, r.cost());
    }

    #[test]
    fn money_arithmetic_and_display() {
        let a = Money::from_dollars(1.5);
        let b = Money::from_dollars(2.25);
        assert_eq!((a + b).dollars(), 3.75);
        assert_eq!((b - a).dollars(), 0.75);
        assert_eq!(a.scale(2.0).dollars(), 3.0);
        assert_eq!(format!("{}", b), "$2.25");
        let total: Money = [a, b].into_iter().sum();
        assert_eq!(total.dollars(), 3.75);
    }

    #[test]
    fn spot_rate_overrides_list_price() {
        let mut r = rec(InstanceType::P32xlarge, 2, 0.0, 3600.0);
        r.hourly_usd = Some(1.0);
        assert!((r.cost().dollars() - 2.0).abs() < 1e-12);
        assert_eq!(r.rate(), 1.0);
        let od = rec(InstanceType::P32xlarge, 2, 0.0, 3600.0);
        assert!((od.rate() - 3.06).abs() < 1e-12);
    }

    #[test]
    fn negative_money_allowed_for_deficits() {
        let deficit = Money::from_dollars(10.0) - Money::from_dollars(25.0);
        assert_eq!(deficit.dollars(), -15.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_money_rejected() {
        let _ = Money::from_dollars(f64::NAN);
    }
}
