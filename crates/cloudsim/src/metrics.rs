//! CloudWatch-style metric store.
//!
//! The MLCD Profiler publishes per-iteration training throughput here and
//! queries window statistics to decide whether a probe has stabilised,
//! mirroring how the paper's system reads CloudWatch and ML-platform
//! counters.

use crate::time::{SimDuration, SimTime};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Statistics over a metric window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricStat {
    /// Number of datapoints in the window.
    pub count: usize,
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sample standard deviation (0 with fewer than 2 points).
    pub stddev: f64,
}

/// Named time-series store. Series are append-only and timestamped with
/// virtual time. Backed by an ordered map so iteration order (and thus
/// anything derived from it) is deterministic by construction.
#[derive(Debug, Default)]
pub struct MetricStore {
    series: RwLock<BTreeMap<String, Vec<(SimTime, f64)>>>,
}

impl MetricStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one datapoint to a metric.
    pub fn put(&self, metric: &str, at: SimTime, value: f64) {
        self.series.write().entry(metric.to_owned()).or_default().push((at, value));
    }

    /// Names of all metrics with at least one datapoint, in sorted order
    /// (the map is ordered, so no explicit sort is needed).
    pub fn metric_names(&self) -> Vec<String> {
        self.series.read().keys().cloned().collect()
    }

    /// Full series for a metric (empty when unknown).
    pub fn series(&self, metric: &str) -> Vec<(SimTime, f64)> {
        self.series.read().get(metric).cloned().unwrap_or_default()
    }

    /// Datapoints within `[end - window, end]`.
    pub fn window(&self, metric: &str, end: SimTime, window: SimDuration) -> Vec<(SimTime, f64)> {
        let start = end.as_secs() - window.as_secs();
        self.series
            .read()
            .get(metric)
            .map(|s| s.iter().filter(|(t, _)| t.as_secs() >= start && *t <= end).copied().collect())
            .unwrap_or_default()
    }

    /// Statistics over a window; `None` when no datapoints fall inside.
    pub fn stat(&self, metric: &str, end: SimTime, window: SimDuration) -> Option<MetricStat> {
        let pts = self.window(metric, end, window);
        if pts.is_empty() {
            return None;
        }
        let n = pts.len();
        let mean = pts.iter().map(|(_, v)| v).sum::<f64>() / n as f64;
        let min = pts.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let max = pts.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
        let stddev = if n < 2 {
            0.0
        } else {
            (pts.iter().map(|(_, v)| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        Some(MetricStat { count: n, mean, min, max, stddev })
    }

    /// Clear a single metric's datapoints.
    pub fn clear(&self, metric: &str) {
        self.series.write().remove(metric);
    }

    /// Percentile (0–100, linear interpolation) of the datapoints within
    /// `[end − window, end]`; `None` when the window is empty.
    ///
    /// CloudWatch-style `p50`/`p99` queries — the Profiler uses the spread
    /// between them as a robust instability signal that one straggler
    /// window cannot fake.
    pub fn percentile(
        &self,
        metric: &str,
        end: SimTime,
        window: SimDuration,
        p: f64,
    ) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile: p={p} out of [0,100]");
        let mut vals: Vec<f64> = self.window(metric, end, window).iter().map(|(_, v)| *v).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        let idx = p / 100.0 * (vals.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        Some(vals[lo] * (1.0 - frac) + vals[hi] * frac)
    }

    /// Downsample a metric into fixed-width buckets of `step`, averaging
    /// datapoints per bucket — what a dashboard fetches instead of raw
    /// points. Buckets are labelled with their end time; empty buckets are
    /// skipped.
    pub fn downsample(&self, metric: &str, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(step.as_secs() > 0.0, "downsample: zero step");
        let series = self.series(metric);
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut bucket: Option<(u64, f64, usize)> = None; // (index, sum, count)
        for (t, v) in series {
            let idx = (t.as_secs() / step.as_secs()).floor() as u64;
            match &mut bucket {
                Some((cur, sum, cnt)) if *cur == idx => {
                    *sum += v;
                    *cnt += 1;
                }
                _ => {
                    if let Some((cur, sum, cnt)) = bucket.take() {
                        out.push((
                            SimTime::from_secs((cur + 1) as f64 * step.as_secs()),
                            sum / cnt as f64,
                        ));
                    }
                    bucket = Some((idx, v, 1));
                }
            }
        }
        if let Some((cur, sum, cnt)) = bucket {
            out.push((SimTime::from_secs((cur + 1) as f64 * step.as_secs()), sum / cnt as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn put_and_read_back() {
        let m = MetricStore::new();
        m.put("throughput", t(1.0), 100.0);
        m.put("throughput", t(2.0), 110.0);
        assert_eq!(m.series("throughput").len(), 2);
        assert_eq!(m.metric_names(), vec!["throughput".to_string()]);
        assert!(m.series("nope").is_empty());
    }

    #[test]
    fn window_filters_by_time() {
        let m = MetricStore::new();
        for i in 0..10 {
            m.put("x", t(i as f64 * 10.0), i as f64);
        }
        let w = m.window("x", t(90.0), SimDuration::from_secs(25.0));
        // Times 65..=90 → 70, 80, 90.
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].1, 7.0);
    }

    #[test]
    fn stats_over_window() {
        let m = MetricStore::new();
        m.put("x", t(1.0), 2.0);
        m.put("x", t(2.0), 4.0);
        m.put("x", t(3.0), 6.0);
        let s = m.stat("x", t(3.0), SimDuration::from_secs(10.0)).unwrap();
        assert_eq!(s.count, 3);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!((s.stddev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_none() {
        let m = MetricStore::new();
        m.put("x", t(100.0), 1.0);
        assert!(m.stat("x", t(50.0), SimDuration::from_secs(10.0)).is_none());
        assert!(m.stat("unknown", t(50.0), SimDuration::from_secs(10.0)).is_none());
    }

    #[test]
    fn single_point_stat() {
        let m = MetricStore::new();
        m.put("x", t(5.0), 42.0);
        let s = m.stat("x", t(5.0), SimDuration::from_secs(1.0)).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 42.0);
    }

    #[test]
    fn percentiles_over_window() {
        let m = MetricStore::new();
        for i in 0..=100 {
            m.put("x", t(i as f64), i as f64);
        }
        let w = SimDuration::from_secs(1000.0);
        assert_eq!(m.percentile("x", t(100.0), w, 50.0), Some(50.0));
        assert_eq!(m.percentile("x", t(100.0), w, 0.0), Some(0.0));
        assert_eq!(m.percentile("x", t(100.0), w, 100.0), Some(100.0));
        assert_eq!(m.percentile("x", t(100.0), w, 99.0), Some(99.0));
        // Window restriction: only the last 11 points (90..=100).
        let p = m.percentile("x", t(100.0), SimDuration::from_secs(10.0), 50.0).unwrap();
        assert_eq!(p, 95.0);
        assert_eq!(m.percentile("nope", t(100.0), w, 50.0), None);
    }

    #[test]
    #[should_panic(expected = "out of [0,100]")]
    fn percentile_rejects_bad_p() {
        let m = MetricStore::new();
        let _ = m.percentile("x", t(0.0), SimDuration::from_secs(1.0), 101.0);
    }

    #[test]
    fn downsampling_averages_buckets() {
        let m = MetricStore::new();
        // Two points in [0,10), one in [10,20), none in [20,30), one in [30,40).
        m.put("x", t(1.0), 2.0);
        m.put("x", t(9.0), 4.0);
        m.put("x", t(12.0), 10.0);
        m.put("x", t(31.0), 7.0);
        let ds = m.downsample("x", SimDuration::from_secs(10.0));
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[0], (t(10.0), 3.0));
        assert_eq!(ds[1], (t(20.0), 10.0));
        assert_eq!(ds[2], (t(40.0), 7.0));
        assert!(m.downsample("nope", SimDuration::from_secs(5.0)).is_empty());
    }

    #[test]
    fn clear_removes_series() {
        let m = MetricStore::new();
        m.put("x", t(1.0), 1.0);
        m.clear("x");
        assert!(m.series("x").is_empty());
        assert!(m.metric_names().is_empty());
    }
}
