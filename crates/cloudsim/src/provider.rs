//! The simulated cloud provider.
//!
//! [`SimCloud`] is the façade the MLCD Cloud Interface drives: launch a
//! cluster, wait for it to come up (advancing virtual time), run work on
//! it, terminate it, and read the bill. Since the discrete-event rewrite
//! it is a thin shell over [`crate::sim::SimEngine`]: every lifecycle
//! change — boot finishing, warm-up finishing, spot revocation, spot
//! repricing, capacity movement, billing settlement — is a typed
//! [`SimEvent`] on one shared queue, and the domain logic lives in
//! private components (`Fleet`, `MarketAgent`, `CapacityLedger`,
//! `BillingAgent`, `MetricAgent`) dispatched in registration order.
//!
//! Clones share all state, so many concurrent jobs can drive one provider:
//! they observe one virtual clock, compete for one capacity ledger, and
//! settle into one billing ledger (attributed per cluster). The façade
//! additionally exposes the raw engine controls — [`SimCloud::step`],
//! [`SimCloud::run_until`], event counters and an event log — for drivers
//! and tests that want to watch the simulation happen event by event.

use crate::billing::{Billing, UsageRecord};
use crate::catalog::InstanceType;
use crate::cluster::{Cluster, ClusterId, ClusterInner, ClusterState, ProvisioningModel};
use crate::metrics::MetricStore;
use crate::sim::{
    Component, ComponentId, EngineCtx, EventCounters, EventId, EventKind, EventRecord, SimEngine,
    SimEvent, TerminationCause,
};
use crate::spot::SpotMarket;
use crate::time::{SimClock, SimDuration, SimTime};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Errors surfaced by the provider.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// Unknown cluster handle.
    UnknownCluster(ClusterId),
    /// Operation requires a Running cluster.
    NotRunning(ClusterId, ClusterState),
    /// Request exceeded the per-type instance quota.
    QuotaExceeded {
        /// Requested type.
        itype: InstanceType,
        /// Requested node count.
        requested: u32,
        /// Configured quota.
        quota: u32,
    },
    /// The shared capacity pool cannot satisfy the request right now
    /// (another tenant holds the instances). Unlike a quota breach this is
    /// transient: capacity returns when clusters terminate.
    CapacityExhausted {
        /// Requested type.
        itype: InstanceType,
        /// Requested node count.
        requested: u32,
        /// Instances currently available.
        available: u32,
    },
    /// Zero-node launch requested.
    EmptyCluster,
    /// The spot market revoked the cluster mid-run.
    SpotRevoked {
        /// The cluster that was revoked.
        cluster: ClusterId,
        /// When the revocation hit.
        at: SimTime,
    },
    /// An admission layer (the fleet scheduler) refused the launch.
    /// Unlike [`CloudError::CapacityExhausted`] this is a policy decision,
    /// not a resource fact — retrying the same request may never succeed.
    Denied {
        /// The policy's stated reason.
        reason: &'static str,
    },
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::UnknownCluster(id) => write!(f, "unknown cluster {id}"),
            CloudError::NotRunning(id, s) => write!(f, "cluster {id} is {s:?}, not Running"),
            CloudError::QuotaExceeded { itype, requested, quota } => {
                write!(f, "quota exceeded: requested {requested} × {itype}, quota {quota}")
            }
            CloudError::CapacityExhausted { itype, requested, available } => {
                write!(
                    f,
                    "capacity exhausted: requested {requested} × {itype}, {available} available"
                )
            }
            CloudError::EmptyCluster => write!(f, "cannot launch a zero-node cluster"),
            CloudError::SpotRevoked { cluster, at } => {
                write!(f, "spot market revoked {cluster} at {:.0} s", at.as_secs())
            }
            CloudError::Denied { reason } => write!(f, "launch denied: {reason}"),
        }
    }
}

impl std::error::Error for CloudError {}

/// Cluster lifecycle component: owns the cluster table and the launch RNG,
/// and reacts to `ProvisioningDone` / `WarmupDone` / `SpotRevoked`.
struct Fleet {
    /// Ordered cluster table (determinism lint: no hash iteration).
    clusters: BTreeMap<ClusterId, ClusterInner>,
    /// Pending lifecycle events per cluster, cancelled on termination.
    pending: BTreeMap<ClusterId, Vec<EventId>>,
    next_id: u64,
    rng: SmallRng,
}

impl Fleet {
    fn new(seed: u64) -> Self {
        Fleet {
            clusters: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_id: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Emit the settlement event for a cluster (exactly once), cancelling
    /// whatever lifecycle events it still had queued.
    fn settle(
        &mut self,
        id: ClusterId,
        end: SimTime,
        cause: TerminationCause,
        engine: &mut SimEngine,
    ) {
        let Some(c) = self.clusters.get_mut(&id) else { return };
        if c.billed {
            return;
        }
        c.terminate(end);
        c.billed = true;
        let ev = SimEvent::ClusterTerminated {
            cluster: id,
            itype: c.itype,
            n: c.n,
            start: c.requested_at,
            end,
            hourly_usd: c.spot_hourly_usd,
            cause,
        };
        for pending in self.pending.remove(&id).unwrap_or_default() {
            engine.cancel(pending);
        }
        engine.schedule(end, ev);
    }
}

impl Component for Fleet {
    fn id(&self) -> ComponentId {
        ComponentId::Fleet
    }

    fn on_event(&mut self, rec: &EventRecord, ctx: &mut EngineCtx<'_>) {
        match rec.event {
            SimEvent::ProvisioningDone { cluster } => {
                if let Some(c) = self.clusters.get_mut(&cluster) {
                    if c.state == ClusterState::Provisioning {
                        c.state = ClusterState::Warming;
                        let ready_at = c.ready_at;
                        let ev = ctx.engine.schedule(ready_at, SimEvent::WarmupDone { cluster });
                        self.pending.entry(cluster).or_default().push(ev);
                    }
                }
            }
            SimEvent::WarmupDone { cluster } => {
                if let Some(c) = self.clusters.get_mut(&cluster) {
                    if c.state == ClusterState::Warming {
                        c.state = ClusterState::Running;
                    }
                }
            }
            SimEvent::SpotRevoked { cluster } => {
                let alive = self
                    .clusters
                    .get_mut(&cluster)
                    .filter(|c| c.state != ClusterState::Terminated)
                    .map(|c| c.revoked = true)
                    .is_some();
                if alive {
                    self.settle(cluster, rec.at, TerminationCause::Revoked, ctx.engine);
                }
            }
            _ => {}
        }
    }
}

/// Spot market component: keeps watched types' price ticks flowing by
/// rescheduling the next `SpotPriceChanged` when one fires.
struct MarketAgent {
    market: SpotMarket,
    tick: Option<SimDuration>,
}

impl Component for MarketAgent {
    fn id(&self) -> ComponentId {
        ComponentId::Market
    }

    fn on_event(&mut self, rec: &EventRecord, ctx: &mut EngineCtx<'_>) {
        if let SimEvent::SpotPriceChanged { itype, .. } = rec.event {
            if let Some(period) = self.tick {
                let next = rec.at + period;
                let hourly_usd = self.market.hourly_usd(itype, next);
                ctx.engine.schedule(next, SimEvent::SpotPriceChanged { itype, hourly_usd });
            }
        }
    }
}

/// Shared capacity ledger: every launch reserves instances, every
/// settlement releases them. Types without a configured cap are treated as
/// infinite (the quota check still applies per launch).
struct CapacityLedger {
    caps: BTreeMap<InstanceType, u32>,
    in_use: BTreeMap<InstanceType, u32>,
}

impl CapacityLedger {
    fn new() -> Self {
        CapacityLedger { caps: BTreeMap::new(), in_use: BTreeMap::new() }
    }

    fn set_cap(&mut self, itype: InstanceType, cap: u32) {
        self.caps.insert(itype, cap);
    }

    /// Instances currently available, `None` when the type is uncapped.
    fn available(&self, itype: InstanceType) -> Option<u32> {
        let cap = *self.caps.get(&itype)?;
        let used = *self.in_use.get(&itype).unwrap_or(&0);
        Some(cap.saturating_sub(used))
    }

    /// Reserve `n` instances. `Ok(Some(left))` for capped types,
    /// `Ok(None)` for uncapped ones, `Err(available)` when the pool is
    /// short.
    fn try_reserve(&mut self, itype: InstanceType, n: u32) -> Result<Option<u32>, u32> {
        match self.available(itype) {
            Some(avail) if avail < n => Err(avail),
            avail => {
                *self.in_use.entry(itype).or_insert(0) += n;
                Ok(avail.map(|a| a - n))
            }
        }
    }

    /// Release `n` instances, returning the new availability for capped
    /// types.
    fn release(&mut self, itype: InstanceType, n: u32) -> Option<u32> {
        if let Some(used) = self.in_use.get_mut(&itype) {
            *used = used.saturating_sub(n);
        }
        self.available(itype)
    }
}

impl Component for CapacityLedger {
    fn id(&self) -> ComponentId {
        ComponentId::Capacity
    }

    fn on_event(&mut self, rec: &EventRecord, ctx: &mut EngineCtx<'_>) {
        if let SimEvent::ClusterTerminated { itype, n, .. } = rec.event {
            if let Some(available) = self.release(itype, n) {
                ctx.engine.schedule(rec.at, SimEvent::CapacityChanged { itype, available });
            }
        }
    }
}

/// Billing component: turns `ClusterTerminated` settlement events into
/// usage records. The event payload carries the whole span, so this is the
/// only writer of the ledger and needs no access to the fleet.
struct BillingAgent;

impl Component for BillingAgent {
    fn id(&self) -> ComponentId {
        ComponentId::Billing
    }

    fn on_event(&mut self, rec: &EventRecord, ctx: &mut EngineCtx<'_>) {
        if let SimEvent::ClusterTerminated { cluster, itype, n, start, end, hourly_usd, .. } =
            rec.event
        {
            ctx.billing.record(UsageRecord { cluster, itype, n, start, end, hourly_usd });
        }
    }
}

/// Observability component: gauges for spot prices, capacity and queue
/// depth. All of its metrics are opt-in by construction — the events it
/// reacts to only exist once a driver enables price watching, capacity
/// caps or metric ticks.
struct MetricAgent;

impl Component for MetricAgent {
    fn id(&self) -> ComponentId {
        ComponentId::Metrics
    }

    fn on_event(&mut self, rec: &EventRecord, ctx: &mut EngineCtx<'_>) {
        match rec.event {
            SimEvent::SpotPriceChanged { itype, hourly_usd } => {
                ctx.metrics.put(&format!("spot/price/{itype}"), rec.at, hourly_usd);
            }
            SimEvent::CapacityChanged { itype, available } => {
                ctx.metrics.put(
                    &format!("capacity/available/{itype}"),
                    rec.at,
                    f64::from(available),
                );
            }
            SimEvent::MetricTick { period } => {
                ctx.metrics.put("sim/pending_events", rec.at, ctx.engine.pending_len() as f64);
                ctx.engine.schedule(rec.at + period, SimEvent::MetricTick { period });
            }
            // Fleet observability: one sample per scheduler decision, so
            // queueing delay and miss rate are recoverable as series.
            SimEvent::JobArrived { job } => {
                ctx.metrics.put("fleet/job_arrived", rec.at, job as f64);
            }
            SimEvent::ProbeGranted { waited, .. } => {
                ctx.metrics.put("fleet/queue_wait_hours", rec.at, waited.as_hours());
            }
            SimEvent::ProbeDenied { job } => {
                ctx.metrics.put("fleet/probe_denied", rec.at, job as f64);
            }
            SimEvent::JobCompleted { missed, .. } => {
                ctx.metrics.put("fleet/deadline_missed", rec.at, if missed { 1.0 } else { 0.0 });
            }
            _ => {}
        }
    }
}

/// All engine-guarded state behind one lock: the event queue plus every
/// component. Dispatch destructures this into disjoint mutable borrows.
struct State {
    engine: SimEngine,
    fleet: Fleet,
    market: MarketAgent,
    capacity: CapacityLedger,
    billing_agent: BillingAgent,
    metrics_agent: MetricAgent,
}

/// The simulated cloud. Clone freely — clones share all state, which is
/// how multiple concurrent jobs share one clock, one capacity ledger and
/// one bill.
#[derive(Clone)]
pub struct SimCloud {
    clock: SimClock,
    billing: Arc<Billing>,
    metrics: Arc<MetricStore>,
    provisioning: ProvisioningModel,
    /// Per-type instance quota, mirroring EC2 account limits. The paper
    /// uses "up to 100 c5/c5n/c4 and 50 p2/p3".
    cpu_quota: u32,
    gpu_quota: u32,
    /// The spot market this provider trades in.
    spot: SpotMarket,
    state: Arc<Mutex<State>>,
}

impl SimCloud {
    /// New provider with the default provisioning model and the paper's
    /// quotas (100 CPU / 50 GPU instances per type).
    pub fn new(seed: u64) -> Self {
        Self::with_provisioning(seed, ProvisioningModel::default())
    }

    /// New provider with a custom provisioning model.
    pub fn with_provisioning(seed: u64, provisioning: ProvisioningModel) -> Self {
        let mut engine = SimEngine::new();
        // Wiring: who reacts to what, in dispatch order. The capacity
        // ledger releases instances before billing records the span, and
        // metrics observe everything last.
        engine.subscribe(EventKind::ProvisioningDone, ComponentId::Fleet);
        engine.subscribe(EventKind::WarmupDone, ComponentId::Fleet);
        engine.subscribe(EventKind::SpotRevoked, ComponentId::Fleet);
        engine.subscribe(EventKind::ClusterTerminated, ComponentId::Capacity);
        engine.subscribe(EventKind::ClusterTerminated, ComponentId::Billing);
        engine.subscribe(EventKind::SpotPriceChanged, ComponentId::Market);
        engine.subscribe(EventKind::SpotPriceChanged, ComponentId::Metrics);
        engine.subscribe(EventKind::CapacityChanged, ComponentId::Metrics);
        engine.subscribe(EventKind::MetricTick, ComponentId::Metrics);
        engine.subscribe(EventKind::JobArrived, ComponentId::Metrics);
        engine.subscribe(EventKind::ProbeGranted, ComponentId::Metrics);
        engine.subscribe(EventKind::ProbeDenied, ComponentId::Metrics);
        engine.subscribe(EventKind::JobCompleted, ComponentId::Metrics);
        let spot = SpotMarket::default();
        SimCloud {
            clock: SimClock::new(),
            billing: Arc::new(Billing::new()),
            metrics: Arc::new(MetricStore::new()),
            provisioning,
            cpu_quota: 100,
            gpu_quota: 50,
            spot,
            state: Arc::new(Mutex::new(State {
                engine,
                fleet: Fleet::new(seed),
                market: MarketAgent { market: spot, tick: None },
                capacity: CapacityLedger::new(),
                billing_agent: BillingAgent,
                metrics_agent: MetricAgent,
            })),
        }
    }

    /// Override the per-type quotas.
    pub fn set_quotas(&mut self, cpu: u32, gpu: u32) {
        self.cpu_quota = cpu;
        self.gpu_quota = gpu;
    }

    /// Quota for a given type.
    pub fn quota(&self, itype: InstanceType) -> u32 {
        if itype.spec().has_gpu() {
            self.gpu_quota
        } else {
            self.cpu_quota
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The billing ledger.
    pub fn billing(&self) -> &Billing {
        &self.billing
    }

    /// The metric store.
    pub fn metrics(&self) -> &MetricStore {
        &self.metrics
    }

    /// The spot market (for price queries).
    pub fn spot_market(&self) -> &SpotMarket {
        &self.spot
    }

    /// Replace the spot market (fleet scenarios select the price process
    /// per run). Must be called before any spot activity: the market agent
    /// keeps a copy for price-tick rescheduling, so both are updated here.
    pub fn set_market(&mut self, market: SpotMarket) {
        self.spot = market;
        self.state.lock().market.market = market;
    }

    /// Inject an externally produced event at the current instant and
    /// dispatch everything due, so counters, the event log and metric
    /// gauges all observe it immediately. The fleet driver narrates its
    /// scheduler decisions (arrivals, grants, denials, completions)
    /// through this.
    pub fn emit_now(&self, event: SimEvent) {
        let now = self.clock.now();
        let mut st = self.state.lock();
        st.engine.schedule(now, event);
        self.drain_due(&mut st, now);
    }

    // --- engine driving ----------------------------------------------

    /// Dispatch one event record to every subscribed component, in
    /// registration order.
    fn dispatch(&self, st: &mut State, rec: &EventRecord) {
        let State { engine, fleet, market, capacity, billing_agent, metrics_agent } = st;
        let subs = engine.subscribers(rec.event.kind());
        for component in subs.iter() {
            let mut ctx = EngineCtx {
                engine: &mut *engine,
                clock: &self.clock,
                billing: &self.billing,
                metrics: &self.metrics,
            };
            match component {
                ComponentId::Fleet => fleet.on_event(rec, &mut ctx),
                ComponentId::Market => market.on_event(rec, &mut ctx),
                ComponentId::Capacity => capacity.on_event(rec, &mut ctx),
                ComponentId::Billing => billing_agent.on_event(rec, &mut ctx),
                ComponentId::Metrics => metrics_agent.on_event(rec, &mut ctx),
            }
        }
    }

    /// Pop and dispatch every event due at or before `upto`, advancing the
    /// clock to each event's firing time. Returns the number dispatched.
    fn drain_due(&self, st: &mut State, upto: SimTime) -> usize {
        let mut n = 0;
        while let Some(rec) = st.engine.pop_due(upto) {
            self.clock.advance_to(rec.at);
            self.dispatch(st, &rec);
            n += 1;
        }
        n
    }

    /// Run the simulation until virtual time `t`: every event due at or
    /// before `t` fires in `(time, seq)` order, then the clock lands
    /// exactly on `t`. Returns the number of events dispatched.
    pub fn run_until(&self, t: SimTime) -> usize {
        let mut st = self.state.lock();
        let n = self.drain_due(&mut st, t);
        self.clock.advance_to(t);
        n
    }

    /// Dispatch the single next pending event (wherever in the future it
    /// is), advancing the clock to its firing time. Returns the dispatched
    /// record, or `None` when the queue is empty. Stepping through the
    /// whole horizon one event at a time is bit-identical to one
    /// [`run_until`](Self::run_until) call.
    pub fn step(&self) -> Option<EventRecord> {
        let mut st = self.state.lock();
        let rec = st.engine.pop_next()?;
        self.clock.advance_to(rec.at);
        self.dispatch(&mut st, &rec);
        Some(rec)
    }

    /// Firing time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.state.lock().engine.next_time()
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.state.lock().engine.pending_len()
    }

    /// Snapshot of this provider's event counters (scheduled / dispatched
    /// / cancelled, by kind).
    pub fn event_counters(&self) -> EventCounters {
        self.state.lock().engine.counters()
    }

    /// Turn event-log recording on or off (off by default).
    pub fn record_events(&self, on: bool) {
        self.state.lock().engine.set_recording(on);
    }

    /// Take the recorded event log (dispatch order). Empty when recording
    /// is off.
    pub fn take_event_log(&self) -> Vec<EventRecord> {
        self.state.lock().engine.take_log()
    }

    // --- capacity & observability opt-ins ----------------------------

    /// Cap the shared pool for a type: launches reserve from the pool and
    /// fail with [`CloudError::CapacityExhausted`] when it runs dry;
    /// terminations release back and emit `CapacityChanged` events.
    pub fn set_capacity(&self, itype: InstanceType, cap: u32) {
        let now = self.clock.now();
        let mut st = self.state.lock();
        st.capacity.set_cap(itype, cap);
        if let Some(available) = st.capacity.available(itype) {
            st.engine.schedule(now, SimEvent::CapacityChanged { itype, available });
        }
    }

    /// Instances currently available in the shared pool, `None` for
    /// uncapped types.
    pub fn capacity_available(&self, itype: InstanceType) -> Option<u32> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.drain_due(&mut st, now);
        st.capacity.available(itype)
    }

    /// Start periodic `SpotPriceChanged` ticks for the given types (one
    /// immediate tick each, then every `period`). Prices land in the
    /// metric store under `spot/price/<type>`.
    pub fn watch_spot_prices(&self, types: &[InstanceType], period: SimDuration) {
        let now = self.clock.now();
        let mut st = self.state.lock();
        st.market.tick = Some(period);
        for &itype in types {
            let hourly_usd = self.spot.hourly_usd(itype, now);
            st.engine.schedule(now, SimEvent::SpotPriceChanged { itype, hourly_usd });
        }
    }

    /// Start a periodic `MetricTick` (first fires one `period` from now)
    /// that samples engine gauges into the metric store.
    pub fn enable_metric_ticks(&self, period: SimDuration) {
        let now = self.clock.now();
        let mut st = self.state.lock();
        st.engine.schedule(now + period, SimEvent::MetricTick { period });
    }

    // --- cluster lifecycle -------------------------------------------

    /// Request a cluster of `n` × `itype`. Returns immediately with the
    /// handle; the cluster is Provisioning until its `ProvisioningDone` /
    /// `WarmupDone` events fire.
    pub fn launch(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        if n == 0 {
            return Err(CloudError::EmptyCluster);
        }
        let quota = self.quota(itype);
        if n > quota {
            return Err(CloudError::QuotaExceeded { itype, requested: n, quota });
        }
        let now = self.clock.now();
        let mut st = self.state.lock();
        // Deliver anything already due so releases from other tenants'
        // terminations are visible to the reservation below.
        self.drain_due(&mut st, now);
        match st.capacity.try_reserve(itype, n) {
            Err(available) => {
                return Err(CloudError::CapacityExhausted { itype, requested: n, available })
            }
            Ok(Some(available)) => {
                st.engine.schedule(now, SimEvent::CapacityChanged { itype, available });
            }
            Ok(None) => {}
        }
        let id = ClusterId(st.fleet.next_id);
        st.fleet.next_id += 1;
        let delay = self.provisioning.sample_delay(itype, n, &mut st.fleet.rng);
        let mut inner = ClusterInner::new(id, itype, n, now, delay);
        inner.split_warmup(self.provisioning.warmup_frac);
        let boot_done_at = inner.boot_done_at;
        st.fleet.clusters.insert(id, inner);
        let ev = st.engine.schedule(boot_done_at, SimEvent::ProvisioningDone { cluster: id });
        st.fleet.pending.insert(id, vec![ev]);
        Ok(Cluster { id, itype, n })
    }

    /// Request a cluster on the spot market: the same lifecycle as
    /// [`launch`](Self::launch) but billed at the (deeply discounted)
    /// current spot rate, and subject to revocation mid-run — the market's
    /// verdict is scheduled up front as a `SpotRevoked` event.
    pub fn launch_spot(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        let handle = self.launch(itype, n)?;
        let now = self.clock.now();
        let rate = self.spot.hourly_usd(itype, now);
        // Sample the cluster's fate up front (deterministic per cluster).
        let revoke_at =
            self.spot.revocation_within(itype, n, now, SimDuration::from_hours(72.0), handle.id.0);
        let mut st = self.state.lock();
        {
            let c = st.fleet.clusters.get_mut(&handle.id).expect("just launched");
            c.spot_hourly_usd = Some(rate);
            c.revoke_at = revoke_at;
        }
        if let Some(at) = revoke_at {
            let ev = st.engine.schedule(at, SimEvent::SpotRevoked { cluster: handle.id });
            st.fleet.pending.entry(handle.id).or_default().push(ev);
        }
        Ok(handle)
    }

    /// Current state of a cluster.
    pub fn cluster_state(&self, cluster: &Cluster) -> Result<ClusterState, CloudError> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.drain_due(&mut st, now);
        st.fleet
            .clusters
            .get(&cluster.id)
            .map(|c| c.state)
            .ok_or(CloudError::UnknownCluster(cluster.id))
    }

    /// Block (in virtual time) until the cluster is Running, advancing the
    /// clock to its ready time (and firing everything due on the way).
    /// Returns the provisioning delay experienced.
    pub fn wait_until_running(&self, cluster: &Cluster) -> SimDuration {
        let ready_at = {
            let st = self.state.lock();
            st.fleet
                .clusters
                .get(&cluster.id)
                .map(|c| c.ready_at)
                .expect("wait_until_running: unknown cluster")
        };
        self.run_until(ready_at);
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.drain_due(&mut st, now);
        let c = st.fleet.clusters.get(&cluster.id).expect("cluster vanished");
        c.provisioning_delay()
    }

    /// Run work on a Running cluster for `d` of virtual time, advancing
    /// the clock and firing every event inside the window. If the spot
    /// market revokes *this* cluster mid-window, the revocation event
    /// terminates and bills it, the clock stops at the revocation instant,
    /// and `SpotRevoked` is returned.
    pub fn run_for(&self, cluster: &Cluster, d: SimDuration) -> Result<(), CloudError> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        self.drain_due(&mut st, now);
        {
            let c =
                st.fleet.clusters.get(&cluster.id).ok_or(CloudError::UnknownCluster(cluster.id))?;
            if c.state != ClusterState::Running {
                // A cluster the market already killed reports the
                // revocation rather than a generic state error, so retry
                // logic keeps working however the caller learns of it.
                if c.revoked {
                    let at = c.revoke_at.unwrap_or(now);
                    return Err(CloudError::SpotRevoked { cluster: cluster.id, at });
                }
                return Err(CloudError::NotRunning(cluster.id, c.state));
            }
        }
        let end = self.clock.now() + d;
        while let Some(rec) = st.engine.pop_due(end) {
            self.clock.advance_to(rec.at);
            let revokes_us = matches!(
                rec.event,
                SimEvent::SpotRevoked { cluster: hit } if hit == cluster.id
            );
            self.dispatch(&mut st, &rec);
            if revokes_us {
                // Let the same-instant settlement (billing, capacity
                // release) land before handing control back.
                let at = rec.at;
                self.drain_due(&mut st, at);
                return Err(CloudError::SpotRevoked { cluster: cluster.id, at });
            }
        }
        self.clock.advance_to(end);
        Ok(())
    }

    /// Terminate a cluster, recording its usage in the bill. Idempotent.
    pub fn terminate(&self, cluster: &Cluster) {
        self.terminate_at(cluster, self.clock.now());
    }

    /// Terminate a cluster retroactively at `end` (which must not precede
    /// its launch or exceed the current time). This is how concurrent
    /// clusters are settled: the caller advances the shared clock to the
    /// *latest* finisher and bills each cluster only for its own span. The
    /// settlement itself is a `ClusterTerminated` event, so billing and
    /// capacity release flow through the same pipeline as event-driven
    /// terminations.
    ///
    /// # Panics
    /// Panics if `end` is before the cluster's launch or after `now`.
    pub fn terminate_at(&self, cluster: &Cluster, end: SimTime) {
        let now = self.clock.now();
        assert!(end <= now, "terminate_at: end {end:?} is in the future (now {now:?})");
        let mut st = self.state.lock();
        self.drain_due(&mut st, now);
        {
            let Some(c) = st.fleet.clusters.get(&cluster.id) else { return };
            if c.state == ClusterState::Terminated {
                return;
            }
            assert!(end >= c.requested_at, "terminate_at: end precedes the cluster's launch");
        }
        {
            let State { engine, fleet, .. } = &mut *st;
            fleet.settle(cluster.id, end, TerminationCause::Requested, engine);
        }
        // The settlement event is due (end ≤ now): deliver it immediately
        // so the bill is visible when this call returns.
        self.drain_due(&mut st, now);
    }

    /// Provisioning delay a cluster experiences (the simulator knows it at
    /// launch time). `None` for unknown clusters.
    pub fn provisioning_delay(&self, cluster: &Cluster) -> Option<SimDuration> {
        let st = self.state.lock();
        st.fleet.clusters.get(&cluster.id).map(|c| c.provisioning_delay())
    }

    /// The instant at or before `t` when the spot market revokes this
    /// cluster, if it does. `None` for on-demand clusters, unknown
    /// clusters, and revocations that fall after `t`. This is the
    /// non-blocking twin of the revocation surfaced by
    /// [`run_for`](Self::run_for): concurrent (batch) probing settles
    /// clusters retroactively and never occupies them with `run_for`, so
    /// it has to ask for the market's verdict instead.
    pub fn revocation_before(&self, cluster: &Cluster, t: SimTime) -> Option<SimTime> {
        let st = self.state.lock();
        st.fleet.clusters.get(&cluster.id).and_then(|c| c.revoke_at).filter(|&at| at <= t)
    }

    /// Time of the simulation, convenience passthrough.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Number of clusters ever launched.
    pub fn n_clusters(&self) -> usize {
        self.state.lock().fleet.clusters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_wait_run_terminate_bills_correctly() {
        let cloud =
            SimCloud::with_provisioning(1, ProvisioningModel { jitter: 0.0, ..Default::default() });
        let c = cloud.launch(InstanceType::C5Xlarge, 4).unwrap();
        assert_eq!(cloud.cluster_state(&c).unwrap(), ClusterState::Provisioning);
        let setup = cloud.wait_until_running(&c);
        assert_eq!(cloud.cluster_state(&c).unwrap(), ClusterState::Running);
        // 4 nodes → base 2 min + 1 group × 1 min = 3 min.
        assert_eq!(setup.as_mins(), 3.0);
        cloud.run_for(&c, SimDuration::from_hours(1.0)).unwrap();
        cloud.terminate(&c);
        let want = 0.17 * 4.0 * (1.0 + 3.0 / 60.0);
        assert!((cloud.billing().total_cost().dollars() - want).abs() < 1e-9);
    }

    #[test]
    fn run_before_ready_fails() {
        let cloud = SimCloud::new(2);
        let c = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        let err = cloud.run_for(&c, SimDuration::from_secs(10.0)).unwrap_err();
        assert!(matches!(err, CloudError::NotRunning(_, ClusterState::Provisioning)));
    }

    #[test]
    fn quota_enforced() {
        let cloud = SimCloud::new(3);
        assert!(cloud.launch(InstanceType::C5Xlarge, 100).is_ok());
        let err = cloud.launch(InstanceType::C5Xlarge, 101).unwrap_err();
        assert!(matches!(err, CloudError::QuotaExceeded { .. }));
        let err = cloud.launch(InstanceType::P2Xlarge, 51).unwrap_err();
        assert!(matches!(err, CloudError::QuotaExceeded { quota: 50, .. }));
        assert!(matches!(cloud.launch(InstanceType::C5Xlarge, 0), Err(CloudError::EmptyCluster)));
    }

    #[test]
    fn terminate_is_idempotent() {
        let cloud = SimCloud::new(4);
        let c = cloud.launch(InstanceType::P2Xlarge, 1).unwrap();
        cloud.wait_until_running(&c);
        cloud.run_for(&c, SimDuration::from_mins(10.0)).unwrap();
        cloud.terminate(&c);
        let bill1 = cloud.billing().total_cost();
        cloud.terminate(&c);
        assert_eq!(cloud.billing().total_cost(), bill1);
        assert_eq!(cloud.billing().n_records(), 1);
    }

    #[test]
    fn terminate_during_provisioning_still_bills() {
        let cloud = SimCloud::new(5);
        let c = cloud.launch(InstanceType::C5Xlarge, 10).unwrap();
        cloud.clock().advance(SimDuration::from_secs(30.0));
        cloud.terminate(&c);
        // Billed the 60-second minimum even though only 30 s elapsed.
        let want = 0.17 * 10.0 * (60.0 / 3600.0);
        assert!((cloud.billing().total_cost().dollars() - want).abs() < 1e-9);
    }

    #[test]
    fn clones_share_state() {
        let cloud = SimCloud::new(6);
        let clone = cloud.clone();
        let c = cloud.launch(InstanceType::C5Large, 2).unwrap();
        clone.wait_until_running(&c);
        assert_eq!(clone.cluster_state(&c).unwrap(), ClusterState::Running);
        assert_eq!(cloud.n_clusters(), 1);
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let cloud = SimCloud::new(seed);
            let c = cloud.launch(InstanceType::P32xlarge, 8).unwrap();
            cloud.wait_until_running(&c).as_secs()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43)); // jitter differs across seeds
    }

    #[test]
    fn terminate_at_bills_each_concurrent_cluster_its_own_span() {
        let cloud =
            SimCloud::with_provisioning(8, ProvisioningModel { jitter: 0.0, ..Default::default() });
        let t0 = cloud.now();
        let a = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        let b = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        // Both run concurrently; a finishes after 1 h, b after 2 h.
        cloud.clock().advance(SimDuration::from_hours(2.0));
        cloud.terminate_at(&a, t0 + SimDuration::from_hours(1.0));
        cloud.terminate_at(&b, t0 + SimDuration::from_hours(2.0));
        // Billed 1 + 2 = 3 instance-hours, not 4.
        assert!((cloud.billing().instance_hours() - 3.0).abs() < 1e-9);
        let want = 0.17 * 3.0;
        assert!((cloud.billing().total_cost().dollars() - want).abs() < 1e-9);
        // Attribution: the ledger knows which cluster accrued what.
        assert!(
            (cloud.billing().cost_for_cluster(a.id).dollars() - 0.17).abs() < 1e-9,
            "cluster a billed its own hour"
        );
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn terminate_at_rejects_future_end() {
        let cloud = SimCloud::new(9);
        let c = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        let future = cloud.now() + SimDuration::from_hours(1.0);
        cloud.terminate_at(&c, future);
    }

    #[test]
    fn spot_billing_uses_locked_rate() {
        let cloud = SimCloud::with_provisioning(
            10,
            ProvisioningModel { jitter: 0.0, ..Default::default() },
        );
        let c = cloud.launch_spot(InstanceType::P32xlarge, 2).unwrap();
        cloud.wait_until_running(&c);
        // Run in small slices so a revocation (if any) surfaces; tolerate it.
        let mut ran = SimDuration::ZERO;
        while ran.as_hours() < 1.0 {
            match cloud.run_for(&c, SimDuration::from_mins(10.0)) {
                Ok(()) => ran += SimDuration::from_mins(10.0),
                Err(CloudError::SpotRevoked { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        cloud.terminate(&c);
        let records = cloud.billing().records();
        assert_eq!(records.len(), 1);
        let rate = records[0].rate();
        let od = InstanceType::P32xlarge.hourly_usd();
        assert!(rate < od * 0.6, "spot rate {rate} should be well under on-demand {od}");
        assert!(rate > 0.0);
    }

    #[test]
    fn spot_revocation_interrupts_long_runs() {
        // Across seeds, a multi-hour spot run on a big cluster should get
        // revoked at least sometimes, and the equivalent on-demand run never.
        let mut revoked_spot = 0;
        for seed in 0..20u64 {
            let cloud = SimCloud::new(seed);
            let c = cloud.launch_spot(InstanceType::C5Xlarge, 32).unwrap();
            cloud.wait_until_running(&c);
            if let Err(CloudError::SpotRevoked { at, .. }) =
                cloud.run_for(&c, SimDuration::from_hours(20.0))
            {
                revoked_spot += 1;
                // The clock stopped at the revocation instant.
                assert_eq!(cloud.now(), at);
                // The cluster is gone and billed.
                assert_eq!(cloud.cluster_state(&c).unwrap(), ClusterState::Terminated);
                assert_eq!(cloud.billing().n_records(), 1);
            }
            let od = SimCloud::new(seed + 1000);
            let c2 = od.launch(InstanceType::C5Xlarge, 32).unwrap();
            od.wait_until_running(&c2);
            assert!(od.run_for(&c2, SimDuration::from_hours(20.0)).is_ok());
        }
        assert!(
            revoked_spot >= 10,
            "expected frequent revocations on 32n x 20h: {revoked_spot}/20"
        );
    }

    #[test]
    fn short_spot_probes_usually_finish() {
        let mut ok = 0;
        for seed in 0..30u64 {
            let cloud = SimCloud::new(seed);
            let c = cloud.launch_spot(InstanceType::C54xlarge, 4).unwrap();
            cloud.wait_until_running(&c);
            if cloud.run_for(&c, SimDuration::from_mins(12.0)).is_ok() {
                ok += 1;
            }
            cloud.terminate(&c);
        }
        assert!(ok >= 24, "short spot probes should mostly survive: {ok}/30");
    }

    #[test]
    fn sequential_launches_get_distinct_ids() {
        let cloud = SimCloud::new(7);
        let a = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        let b = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        assert_ne!(a.id, b.id);
    }

    // --- event-engine behaviour --------------------------------------

    #[test]
    fn lifecycle_flows_through_events() {
        let cloud = SimCloud::with_provisioning(
            11,
            ProvisioningModel { jitter: 0.0, ..Default::default() },
        );
        cloud.record_events(true);
        let c = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        cloud.wait_until_running(&c);
        cloud.run_for(&c, SimDuration::from_mins(10.0)).unwrap();
        cloud.terminate(&c);
        let kinds: Vec<EventKind> = cloud.take_event_log().iter().map(|r| r.event.kind()).collect();
        assert_eq!(
            kinds,
            vec![EventKind::ProvisioningDone, EventKind::WarmupDone, EventKind::ClusterTerminated]
        );
        let counters = cloud.event_counters();
        assert_eq!(counters.dispatched(EventKind::ProvisioningDone), 1);
        assert_eq!(counters.dispatched(EventKind::ClusterTerminated), 1);
        assert_eq!(counters.total_cancelled(), 0);
    }

    #[test]
    fn step_walks_one_event_at_a_time() {
        let cloud = SimCloud::with_provisioning(
            12,
            ProvisioningModel { jitter: 0.0, ..Default::default() },
        );
        let c = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        assert_eq!(cloud.pending_events(), 1);
        let first = cloud.step().expect("provisioning event pending");
        assert_eq!(first.event.kind(), EventKind::ProvisioningDone);
        assert_eq!(cloud.now(), first.at);
        let second = cloud.step().expect("warmup event pending");
        assert_eq!(second.event.kind(), EventKind::WarmupDone);
        assert_eq!(cloud.cluster_state(&c).unwrap(), ClusterState::Running);
        assert!(cloud.step().is_none());
    }

    #[test]
    fn terminating_early_cancels_pending_lifecycle_events() {
        let cloud = SimCloud::new(13);
        let c = cloud.launch(InstanceType::C5Xlarge, 4).unwrap();
        cloud.clock().advance(SimDuration::from_secs(30.0));
        cloud.terminate(&c);
        let counters = cloud.event_counters();
        // The boot-finished event never fires: termination cancelled it.
        assert_eq!(counters.cancelled(EventKind::ProvisioningDone), 1);
        assert_eq!(counters.dispatched(EventKind::ProvisioningDone), 0);
        assert_eq!(cloud.pending_events(), 0);
    }

    #[test]
    fn warmup_split_inserts_warming_state() {
        let model = ProvisioningModel { jitter: 0.0, warmup_frac: 0.5, ..Default::default() };
        let cloud = SimCloud::with_provisioning(14, model);
        let c = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        // Boot finishes halfway through the 2-minute delay.
        cloud.run_until(SimTime::from_secs(90.0));
        assert_eq!(cloud.cluster_state(&c).unwrap(), ClusterState::Warming);
        cloud.run_until(SimTime::from_secs(120.0));
        assert_eq!(cloud.cluster_state(&c).unwrap(), ClusterState::Running);
    }

    #[test]
    fn capacity_ledger_shared_between_tenants() {
        let cloud = SimCloud::with_provisioning(
            15,
            ProvisioningModel { jitter: 0.0, ..Default::default() },
        );
        cloud.set_capacity(InstanceType::C5Xlarge, 10);
        let job_a = cloud.clone();
        let job_b = cloud.clone();
        let a = job_a.launch(InstanceType::C5Xlarge, 8).unwrap();
        assert_eq!(cloud.capacity_available(InstanceType::C5Xlarge), Some(2));
        let err = job_b.launch(InstanceType::C5Xlarge, 8).unwrap_err();
        assert!(matches!(err, CloudError::CapacityExhausted { requested: 8, available: 2, .. }));
        // Small ask still fits; the big one fits after A terminates.
        let b_small = job_b.launch(InstanceType::C5Xlarge, 2).unwrap();
        job_a.wait_until_running(&a);
        job_a.terminate(&a);
        assert_eq!(cloud.capacity_available(InstanceType::C5Xlarge), Some(8));
        let b_big = job_b.launch(InstanceType::C5Xlarge, 8).unwrap();
        job_b.terminate(&b_small);
        job_b.terminate(&b_big);
        assert_eq!(cloud.capacity_available(InstanceType::C5Xlarge), Some(10));
    }

    #[test]
    fn spot_price_ticks_land_in_metrics() {
        let cloud = SimCloud::new(16);
        cloud.watch_spot_prices(&[InstanceType::C5Xlarge], SimDuration::from_mins(5.0));
        cloud.run_until(SimTime::from_secs(3600.0));
        let series = cloud.metrics().series("spot/price/c5.xlarge");
        // One immediate tick plus one every 5 minutes.
        assert_eq!(series.len(), 13);
        let market = cloud.spot_market();
        for (at, price) in series {
            assert_eq!(price, market.hourly_usd(InstanceType::C5Xlarge, at));
        }
    }

    #[test]
    fn metric_ticks_sample_queue_depth() {
        let cloud = SimCloud::new(17);
        cloud.enable_metric_ticks(SimDuration::from_mins(10.0));
        cloud.run_until(SimTime::from_secs(3600.0));
        let series = cloud.metrics().series("sim/pending_events");
        assert_eq!(series.len(), 6);
    }
}
