//! The simulated cloud provider.
//!
//! [`SimCloud`] is the façade the MLCD Cloud Interface drives: launch a
//! cluster, wait for it to come up (advancing virtual time), run work on
//! it, terminate it, and read the bill. It owns the clock, the billing
//! ledger, the metric store, the event queue and a seeded RNG, so an
//! entire experiment is reproducible from one seed.

use crate::billing::{Billing, UsageRecord};
use crate::catalog::InstanceType;
use crate::cluster::{Cluster, ClusterId, ClusterInner, ClusterState, ProvisioningModel};
use crate::events::EventQueue;
use crate::metrics::MetricStore;
use crate::spot::SpotMarket;
use crate::time::{SimClock, SimDuration, SimTime};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Errors surfaced by the provider.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// Unknown cluster handle.
    UnknownCluster(ClusterId),
    /// Operation requires a Running cluster.
    NotRunning(ClusterId, ClusterState),
    /// Request exceeded the per-type instance quota.
    QuotaExceeded {
        /// Requested type.
        itype: InstanceType,
        /// Requested node count.
        requested: u32,
        /// Configured quota.
        quota: u32,
    },
    /// Zero-node launch requested.
    EmptyCluster,
    /// The spot market revoked the cluster mid-run.
    SpotRevoked {
        /// The cluster that was revoked.
        cluster: ClusterId,
        /// When the revocation hit.
        at: SimTime,
    },
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::UnknownCluster(id) => write!(f, "unknown cluster {id}"),
            CloudError::NotRunning(id, s) => write!(f, "cluster {id} is {s:?}, not Running"),
            CloudError::QuotaExceeded { itype, requested, quota } => {
                write!(f, "quota exceeded: requested {requested} × {itype}, quota {quota}")
            }
            CloudError::EmptyCluster => write!(f, "cannot launch a zero-node cluster"),
            CloudError::SpotRevoked { cluster, at } => {
                write!(f, "spot market revoked {cluster} at {:.0} s", at.as_secs())
            }
        }
    }
}

impl std::error::Error for CloudError {}

/// Internal scheduled happenings.
#[derive(Debug, Clone, Copy)]
enum CloudEvent {
    ClusterReady(ClusterId),
}

struct State {
    clusters: HashMap<ClusterId, ClusterInner>,
    next_id: u64,
    events: EventQueue<CloudEvent>,
    rng: SmallRng,
}

/// The simulated cloud. Clone freely — clones share all state.
#[derive(Clone)]
pub struct SimCloud {
    clock: SimClock,
    billing: Arc<Billing>,
    metrics: Arc<MetricStore>,
    provisioning: ProvisioningModel,
    /// Per-type instance quota, mirroring EC2 account limits. The paper
    /// uses "up to 100 c5/c5n/c4 and 50 p2/p3".
    cpu_quota: u32,
    gpu_quota: u32,
    /// The spot market this provider trades in.
    spot: SpotMarket,
    state: Arc<Mutex<State>>,
}

impl SimCloud {
    /// New provider with the default provisioning model and the paper's
    /// quotas (100 CPU / 50 GPU instances per type).
    pub fn new(seed: u64) -> Self {
        Self::with_provisioning(seed, ProvisioningModel::default())
    }

    /// New provider with a custom provisioning model.
    pub fn with_provisioning(seed: u64, provisioning: ProvisioningModel) -> Self {
        SimCloud {
            clock: SimClock::new(),
            billing: Arc::new(Billing::new()),
            metrics: Arc::new(MetricStore::new()),
            provisioning,
            cpu_quota: 100,
            gpu_quota: 50,
            spot: SpotMarket::default(),
            state: Arc::new(Mutex::new(State {
                clusters: HashMap::new(),
                next_id: 0,
                events: EventQueue::new(),
                rng: SmallRng::seed_from_u64(seed),
            })),
        }
    }

    /// Override the per-type quotas.
    pub fn set_quotas(&mut self, cpu: u32, gpu: u32) {
        self.cpu_quota = cpu;
        self.gpu_quota = gpu;
    }

    /// Quota for a given type.
    pub fn quota(&self, itype: InstanceType) -> u32 {
        if itype.spec().has_gpu() {
            self.gpu_quota
        } else {
            self.cpu_quota
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The billing ledger.
    pub fn billing(&self) -> &Billing {
        &self.billing
    }

    /// The metric store.
    pub fn metrics(&self) -> &MetricStore {
        &self.metrics
    }

    /// Request a cluster of `n` × `itype`. Returns immediately with the
    /// handle; the cluster is Provisioning until its ready event fires.
    pub fn launch(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        if n == 0 {
            return Err(CloudError::EmptyCluster);
        }
        let quota = self.quota(itype);
        if n > quota {
            return Err(CloudError::QuotaExceeded { itype, requested: n, quota });
        }
        let now = self.clock.now();
        let mut st = self.state.lock();
        let id = ClusterId(st.next_id);
        st.next_id += 1;
        let delay = self.provisioning.sample_delay(itype, n, &mut st.rng);
        let inner = ClusterInner::new(id, itype, n, now, delay);
        let ready_at = inner.ready_at;
        st.clusters.insert(id, inner);
        st.events.schedule(ready_at, CloudEvent::ClusterReady(id));
        Ok(Cluster { id, itype, n })
    }

    /// Request a cluster on the spot market: the same lifecycle as
    /// [`launch`](Self::launch) but billed at the (deeply discounted)
    /// current spot rate, and subject to revocation mid-run.
    pub fn launch_spot(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        let handle = self.launch(itype, n)?;
        let now = self.clock.now();
        let rate = self.spot.hourly_usd(itype, now);
        // Sample the cluster's fate up front (deterministic per cluster).
        let revoke_at =
            self.spot.revocation_within(itype, n, now, SimDuration::from_hours(72.0), handle.id.0);
        let mut st = self.state.lock();
        let c = st.clusters.get_mut(&handle.id).expect("just launched");
        c.spot_hourly_usd = Some(rate);
        c.revoke_at = revoke_at;
        Ok(handle)
    }

    /// The spot market (for price queries).
    pub fn spot_market(&self) -> &SpotMarket {
        &self.spot
    }

    /// Drain events due up to the current time.
    fn drain_events(&self, st: &mut State) {
        let now = self.clock.now();
        while let Some((at, ev)) = st.events.pop_due(now) {
            match ev {
                CloudEvent::ClusterReady(id) => {
                    if let Some(c) = st.clusters.get_mut(&id) {
                        c.poll(at);
                    }
                }
            }
        }
    }

    /// Current state of a cluster.
    pub fn cluster_state(&self, cluster: &Cluster) -> Result<ClusterState, CloudError> {
        let mut st = self.state.lock();
        self.drain_events(&mut st);
        st.clusters.get(&cluster.id).map(|c| c.state).ok_or(CloudError::UnknownCluster(cluster.id))
    }

    /// Block (in virtual time) until the cluster is Running, advancing the
    /// clock to its ready time. Returns the provisioning delay experienced.
    pub fn wait_until_running(&self, cluster: &Cluster) -> SimDuration {
        let st = self.state.lock();
        let ready_at = st
            .clusters
            .get(&cluster.id)
            .map(|c| c.ready_at)
            .expect("wait_until_running: unknown cluster");
        drop(st);
        self.clock.advance_to(ready_at);
        let mut st = self.state.lock();
        self.drain_events(&mut st);
        let c = st.clusters.get(&cluster.id).expect("cluster vanished");
        c.provisioning_delay()
    }

    /// Run work on a Running cluster for `d` of virtual time, advancing the
    /// clock. A spot cluster whose revocation falls inside the window is
    /// terminated (and billed) at the revocation instant, the clock stops
    /// there, and `SpotRevoked` is returned.
    pub fn run_for(&self, cluster: &Cluster, d: SimDuration) -> Result<(), CloudError> {
        let revoke_at = {
            let mut st = self.state.lock();
            self.drain_events(&mut st);
            let c = st.clusters.get(&cluster.id).ok_or(CloudError::UnknownCluster(cluster.id))?;
            if c.state != ClusterState::Running {
                return Err(CloudError::NotRunning(cluster.id, c.state));
            }
            c.revoke_at
        };
        let end = self.clock.now() + d;
        if let Some(at) = revoke_at {
            if at <= end {
                self.clock.advance_to(at);
                self.terminate(cluster);
                return Err(CloudError::SpotRevoked { cluster: cluster.id, at });
            }
        }
        self.clock.advance(d);
        Ok(())
    }

    /// Terminate a cluster, recording its usage in the bill. Idempotent.
    pub fn terminate(&self, cluster: &Cluster) {
        self.terminate_at(cluster, self.clock.now());
    }

    /// Terminate a cluster retroactively at `end` (which must not precede
    /// its launch or exceed the current time). This is how concurrent
    /// clusters are settled: the caller advances the shared clock to the
    /// *latest* finisher and bills each cluster only for its own span.
    ///
    /// # Panics
    /// Panics if `end` is before the cluster's launch or after `now`.
    pub fn terminate_at(&self, cluster: &Cluster, end: SimTime) {
        let now = self.clock.now();
        assert!(end <= now, "terminate_at: end {end:?} is in the future (now {now:?})");
        let mut st = self.state.lock();
        self.drain_events(&mut st);
        if let Some(c) = st.clusters.get_mut(&cluster.id) {
            if c.state != ClusterState::Terminated {
                assert!(end >= c.requested_at, "terminate_at: end precedes the cluster's launch");
                c.terminate(end);
                self.billing.record(UsageRecord {
                    itype: c.itype,
                    n: c.n,
                    start: c.requested_at,
                    end,
                    hourly_usd: c.spot_hourly_usd,
                });
            }
        }
    }

    /// Provisioning delay a cluster experiences (the simulator knows it at
    /// launch time). `None` for unknown clusters.
    pub fn provisioning_delay(&self, cluster: &Cluster) -> Option<SimDuration> {
        let st = self.state.lock();
        st.clusters.get(&cluster.id).map(|c| c.provisioning_delay())
    }

    /// The instant at or before `t` when the spot market revokes this
    /// cluster, if it does. `None` for on-demand clusters, unknown
    /// clusters, and revocations that fall after `t`. This is the
    /// non-blocking twin of the revocation surfaced by
    /// [`run_for`](Self::run_for): concurrent (batch) probing settles
    /// clusters retroactively and never occupies them with `run_for`, so
    /// it has to ask for the market's verdict instead.
    pub fn revocation_before(&self, cluster: &Cluster, t: SimTime) -> Option<SimTime> {
        let st = self.state.lock();
        st.clusters.get(&cluster.id).and_then(|c| c.revoke_at).filter(|&at| at <= t)
    }

    /// Time of the simulation, convenience passthrough.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Number of clusters ever launched.
    pub fn n_clusters(&self) -> usize {
        self.state.lock().clusters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_wait_run_terminate_bills_correctly() {
        let cloud =
            SimCloud::with_provisioning(1, ProvisioningModel { jitter: 0.0, ..Default::default() });
        let c = cloud.launch(InstanceType::C5Xlarge, 4).unwrap();
        assert_eq!(cloud.cluster_state(&c).unwrap(), ClusterState::Provisioning);
        let setup = cloud.wait_until_running(&c);
        assert_eq!(cloud.cluster_state(&c).unwrap(), ClusterState::Running);
        // 4 nodes → base 2 min + 1 group × 1 min = 3 min.
        assert_eq!(setup.as_mins(), 3.0);
        cloud.run_for(&c, SimDuration::from_hours(1.0)).unwrap();
        cloud.terminate(&c);
        let want = 0.17 * 4.0 * (1.0 + 3.0 / 60.0);
        assert!((cloud.billing().total_cost().dollars() - want).abs() < 1e-9);
    }

    #[test]
    fn run_before_ready_fails() {
        let cloud = SimCloud::new(2);
        let c = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        let err = cloud.run_for(&c, SimDuration::from_secs(10.0)).unwrap_err();
        assert!(matches!(err, CloudError::NotRunning(_, ClusterState::Provisioning)));
    }

    #[test]
    fn quota_enforced() {
        let cloud = SimCloud::new(3);
        assert!(cloud.launch(InstanceType::C5Xlarge, 100).is_ok());
        let err = cloud.launch(InstanceType::C5Xlarge, 101).unwrap_err();
        assert!(matches!(err, CloudError::QuotaExceeded { .. }));
        let err = cloud.launch(InstanceType::P2Xlarge, 51).unwrap_err();
        assert!(matches!(err, CloudError::QuotaExceeded { quota: 50, .. }));
        assert!(matches!(cloud.launch(InstanceType::C5Xlarge, 0), Err(CloudError::EmptyCluster)));
    }

    #[test]
    fn terminate_is_idempotent() {
        let cloud = SimCloud::new(4);
        let c = cloud.launch(InstanceType::P2Xlarge, 1).unwrap();
        cloud.wait_until_running(&c);
        cloud.run_for(&c, SimDuration::from_mins(10.0)).unwrap();
        cloud.terminate(&c);
        let bill1 = cloud.billing().total_cost();
        cloud.terminate(&c);
        assert_eq!(cloud.billing().total_cost(), bill1);
        assert_eq!(cloud.billing().n_records(), 1);
    }

    #[test]
    fn terminate_during_provisioning_still_bills() {
        let cloud = SimCloud::new(5);
        let c = cloud.launch(InstanceType::C5Xlarge, 10).unwrap();
        cloud.clock().advance(SimDuration::from_secs(30.0));
        cloud.terminate(&c);
        // Billed the 60-second minimum even though only 30 s elapsed.
        let want = 0.17 * 10.0 * (60.0 / 3600.0);
        assert!((cloud.billing().total_cost().dollars() - want).abs() < 1e-9);
    }

    #[test]
    fn clones_share_state() {
        let cloud = SimCloud::new(6);
        let clone = cloud.clone();
        let c = cloud.launch(InstanceType::C5Large, 2).unwrap();
        clone.wait_until_running(&c);
        assert_eq!(clone.cluster_state(&c).unwrap(), ClusterState::Running);
        assert_eq!(cloud.n_clusters(), 1);
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let cloud = SimCloud::new(seed);
            let c = cloud.launch(InstanceType::P32xlarge, 8).unwrap();
            cloud.wait_until_running(&c).as_secs()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43)); // jitter differs across seeds
    }

    #[test]
    fn terminate_at_bills_each_concurrent_cluster_its_own_span() {
        let cloud =
            SimCloud::with_provisioning(8, ProvisioningModel { jitter: 0.0, ..Default::default() });
        let t0 = cloud.now();
        let a = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        let b = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        // Both run concurrently; a finishes after 1 h, b after 2 h.
        cloud.clock().advance(SimDuration::from_hours(2.0));
        cloud.terminate_at(&a, t0 + SimDuration::from_hours(1.0));
        cloud.terminate_at(&b, t0 + SimDuration::from_hours(2.0));
        // Billed 1 + 2 = 3 instance-hours, not 4.
        assert!((cloud.billing().instance_hours() - 3.0).abs() < 1e-9);
        let want = 0.17 * 3.0;
        assert!((cloud.billing().total_cost().dollars() - want).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn terminate_at_rejects_future_end() {
        let cloud = SimCloud::new(9);
        let c = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        let future = cloud.now() + SimDuration::from_hours(1.0);
        cloud.terminate_at(&c, future);
    }

    #[test]
    fn spot_billing_uses_locked_rate() {
        let cloud = SimCloud::with_provisioning(
            10,
            ProvisioningModel { jitter: 0.0, ..Default::default() },
        );
        let c = cloud.launch_spot(InstanceType::P32xlarge, 2).unwrap();
        cloud.wait_until_running(&c);
        // Run in small slices so a revocation (if any) surfaces; tolerate it.
        let mut ran = SimDuration::ZERO;
        while ran.as_hours() < 1.0 {
            match cloud.run_for(&c, SimDuration::from_mins(10.0)) {
                Ok(()) => ran += SimDuration::from_mins(10.0),
                Err(CloudError::SpotRevoked { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        cloud.terminate(&c);
        let records = cloud.billing().records();
        assert_eq!(records.len(), 1);
        let rate = records[0].rate();
        let od = InstanceType::P32xlarge.hourly_usd();
        assert!(rate < od * 0.6, "spot rate {rate} should be well under on-demand {od}");
        assert!(rate > 0.0);
    }

    #[test]
    fn spot_revocation_interrupts_long_runs() {
        // Across seeds, a multi-hour spot run on a big cluster should get
        // revoked at least sometimes, and the equivalent on-demand run never.
        let mut revoked_spot = 0;
        for seed in 0..20u64 {
            let cloud = SimCloud::new(seed);
            let c = cloud.launch_spot(InstanceType::C5Xlarge, 32).unwrap();
            cloud.wait_until_running(&c);
            if let Err(CloudError::SpotRevoked { at, .. }) =
                cloud.run_for(&c, SimDuration::from_hours(20.0))
            {
                revoked_spot += 1;
                // The clock stopped at the revocation instant.
                assert_eq!(cloud.now(), at);
                // The cluster is gone and billed.
                assert_eq!(cloud.cluster_state(&c).unwrap(), ClusterState::Terminated);
                assert_eq!(cloud.billing().n_records(), 1);
            }
            let od = SimCloud::new(seed + 1000);
            let c2 = od.launch(InstanceType::C5Xlarge, 32).unwrap();
            od.wait_until_running(&c2);
            assert!(od.run_for(&c2, SimDuration::from_hours(20.0)).is_ok());
        }
        assert!(
            revoked_spot >= 10,
            "expected frequent revocations on 32n x 20h: {revoked_spot}/20"
        );
    }

    #[test]
    fn short_spot_probes_usually_finish() {
        let mut ok = 0;
        for seed in 0..30u64 {
            let cloud = SimCloud::new(seed);
            let c = cloud.launch_spot(InstanceType::C54xlarge, 4).unwrap();
            cloud.wait_until_running(&c);
            if cloud.run_for(&c, SimDuration::from_mins(12.0)).is_ok() {
                ok += 1;
            }
            cloud.terminate(&c);
        }
        assert!(ok >= 24, "short spot probes should mostly survive: {ok}/30");
    }

    #[test]
    fn sequential_launches_get_distinct_ids() {
        let cloud = SimCloud::new(7);
        let a = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        let b = cloud.launch(InstanceType::C5Xlarge, 1).unwrap();
        assert_ne!(a.id, b.id);
    }
}
