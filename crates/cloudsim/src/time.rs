//! Virtual time for the simulator.
//!
//! All durations in the reproduction are simulated — a 20-hour training run
//! costs microseconds of wall-clock. `SimTime` / `SimDuration` are thin
//! newtypes over `f64` seconds so that times and durations cannot be mixed
//! up, and `SimClock` is the shared monotone clock a `SimCloud` and all of
//! its clusters observe.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::sync::Arc;

/// A point in virtual time (seconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of virtual time in seconds. May not be negative.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds since the epoch.
    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "SimTime: bad seconds {s}");
        SimTime(s)
    }

    /// Seconds since the epoch.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Hours since the epoch.
    pub fn as_hours(&self) -> f64 {
        self.0 / 3600.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics when `earlier` is later than `self`.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Construct from seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "SimDuration: bad seconds {s}");
        SimDuration(s)
    }

    /// Construct from minutes.
    pub fn from_mins(m: f64) -> Self {
        Self::from_secs(m * 60.0)
    }

    /// Construct from hours.
    pub fn from_hours(h: f64) -> Self {
        Self::from_secs(h * 3600.0)
    }

    /// Seconds.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Minutes.
    pub fn as_mins(&self) -> f64 {
        self.0 / 60.0
    }

    /// Hours.
    pub fn as_hours(&self) -> f64 {
        self.0 / 3600.0
    }

    /// Larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0 + o.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, o: SimDuration) {
        self.0 += o.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturating at zero: durations cannot go negative.
    fn sub(self, o: SimDuration) -> SimDuration {
        SimDuration((self.0 - o.0).max(0.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * k)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / k)
    }
}

/// Shared monotone virtual clock.
///
/// Cheap to clone (an `Arc`); every component holding a clone observes the
/// same time. Time only moves forward via [`advance`](Self::advance) /
/// [`advance_to`](Self::advance_to).
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<Mutex<SimTime>>,
}

impl SimClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        *self.now.lock()
    }

    /// Advance by a duration, returning the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let mut t = self.now.lock();
        *t += d;
        *t
    }

    /// Advance to an absolute time. Times in the past are a no-op (the
    /// clock is monotone), which makes replaying already-elapsed events
    /// harmless.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let mut now = self.now.lock();
        if t > *now {
            *now = t;
        }
        *now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        let d = SimDuration::from_hours(2.0);
        assert_eq!(d.as_secs(), 7200.0);
        assert_eq!(d.as_mins(), 120.0);
        assert_eq!(d.as_hours(), 2.0);
        assert_eq!(SimDuration::from_mins(1.5).as_secs(), 90.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(100.0) + SimDuration::from_secs(50.0);
        assert_eq!(t.as_secs(), 150.0);
        assert_eq!(t.since(SimTime::from_secs(100.0)).as_secs(), 50.0);
    }

    #[test]
    #[should_panic(expected = "bad seconds")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "bad seconds")]
    fn since_earlier_panics() {
        let _ = SimTime::from_secs(1.0).since(SimTime::from_secs(2.0));
    }

    #[test]
    fn duration_sub_saturates() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(5.0);
        assert_eq!((a - b).as_secs(), 0.0);
        assert_eq!((b - a).as_secs(), 4.0);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!((SimDuration::from_secs(10.0) * 2.5).as_secs(), 25.0);
        assert_eq!((SimDuration::from_secs(10.0) / 4.0).as_secs(), 2.5);
    }

    #[test]
    fn clock_is_monotone_and_shared() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(SimDuration::from_secs(10.0));
        assert_eq!(c2.now().as_secs(), 10.0);
        // advance_to backwards is a no-op
        c2.advance_to(SimTime::from_secs(5.0));
        assert_eq!(c.now().as_secs(), 10.0);
        c2.advance_to(SimTime::from_secs(20.0));
        assert_eq!(c.now().as_secs(), 20.0);
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
