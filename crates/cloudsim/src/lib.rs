#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! EC2-style cloud substrate simulator for the MLCD / HeterBO reproduction.
//!
//! The paper evaluates on real AWS EC2. This crate replaces EC2 with a
//! faithful-in-the-relevant-dimensions simulator (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`catalog`] — the instance-type catalog with the real 2019/2020
//!   us-east-1 on-demand prices and hardware specs for the c4 / c5 / c5n /
//!   p2 / p3 families the paper uses. The paper's headline catalog fact
//!   (p2.8xlarge ≈ 42.5× the hourly price of c5.xlarge, Fig 1a) holds by
//!   construction because the prices are the real ones.
//! * [`time`] — virtual time: [`time::SimTime`], [`time::SimDuration`] and
//!   the shared [`time::SimClock`].
//! * [`sim`] — the deterministic discrete-event core: a seq-tie-broken
//!   event queue, typed [`sim::SimEvent`]s and the [`sim::Component`]
//!   dispatch the provider is built on.
//! * [`cluster`] — cluster lifecycle (Pending → Provisioning → Running →
//!   Terminated) with setup/warm-up latency growing in cluster size.
//! * [`billing`] — per-second metering with AWS's 60-second minimum.
//! * [`metrics`] — a CloudWatch-style time-series store.
//! * [`provider`] — [`provider::SimCloud`], the façade the MLCD Cloud
//!   Interface talks to.
//!
//! ```
//! use mlcd_cloudsim::provider::SimCloud;
//! use mlcd_cloudsim::catalog::InstanceType;
//! use mlcd_cloudsim::time::SimDuration;
//!
//! let cloud = SimCloud::new(42);
//! let cluster = cloud.launch(InstanceType::C5Xlarge, 4).unwrap();
//! cloud.wait_until_running(&cluster);
//! cloud.run_for(&cluster, SimDuration::from_hours(1.0));
//! cloud.terminate(&cluster);
//! let bill = cloud.billing().total_cost();
//! assert!((bill.dollars() - 4.0 * 0.17).abs() < 0.05); // 4 × c5.xlarge × 1h (+ setup)
//! ```

pub mod billing;
pub mod catalog;
pub mod cluster;
pub mod metrics;
pub mod provider;
pub mod sim;
pub mod spot;
pub mod time;

pub use billing::{Billing, Money, UsageRecord};
pub use catalog::{Accelerator, InstanceFamily, InstanceSpec, InstanceType};
pub use cluster::{Cluster, ClusterId, ClusterState, ProvisioningModel};
pub use metrics::{MetricStat, MetricStore};
pub use provider::{CloudError, SimCloud};
pub use sim::{
    global_event_counters, EventCounters, EventId, EventKind, EventRecord, SimEngine, SimEvent,
    SimEventCounter, TerminationCause,
};
pub use spot::{MarketMode, SpotMarket};
pub use time::{SimClock, SimDuration, SimTime};
