//! A minimal discrete-event queue.
//!
//! The provider schedules future state changes (cluster becomes Running,
//! cluster auto-terminates) as events; draining the queue up to a target
//! time advances the simulation deterministically. Ties are broken by
//! insertion order so replays are reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time, carrying a payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first,
        // with sequence number as the deterministic tie-breaker.
        other.at.as_secs().total_cmp(&self.at.as_secs()).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of future events ordered by time, FIFO within a tick.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the next event if it fires at or before `upto`.
    pub fn pop_due(&mut self, upto: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek().is_some_and(|s| s.at <= upto) {
            self.heap.pop().map(|s| (s.at, s.payload))
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30.0), "c");
        q.schedule(t(10.0), "a");
        q.schedule(t(20.0), "b");
        assert_eq!(q.peek_time(), Some(t(10.0)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_due(t(100.0)).map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_within_a_tick() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), 1);
        q.schedule(t(5.0), 2);
        q.schedule(t(5.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop_due(t(5.0)).map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(t(50.0), ());
        assert!(q.pop_due(t(49.9)).is_none());
        assert_eq!(q.len(), 1);
        assert!(q.pop_due(t(50.0)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.peek_time().is_none());
        assert!(q.pop_due(t(1e9)).is_none());
        assert!(q.is_empty());
    }
}
