//! Deterministic discrete-event core.
//!
//! Everything that *happens* in the simulated cloud — a cluster finishing
//! its boot, the framework finishing warm-up, the spot market revoking
//! capacity or repricing, a capacity gauge moving, a termination being
//! billed — is a typed [`SimEvent`] scheduled on one binary-heap queue
//! ordered by `(SimTime, seq)`. The `seq` counter is assigned at schedule
//! time, so events that fire at the same instant drain in the order they
//! were scheduled: the whole simulation is a pure function of its inputs,
//! which is what lets golden digests pin it bit-for-bit.
//!
//! The engine itself ([`SimEngine`]) knows nothing about clouds. Domain
//! logic lives in components (see [`crate::provider`]) that subscribe to
//! event kinds; the provider façade pops due events and dispatches each to
//! its subscribers in registration order. Components react by mutating
//! their own state and scheduling further events through [`EngineCtx`].
//!
//! Modelled after dslab-style simulation cores (see SNIPPETS.md): a
//! min-ordered event heap, integer tie-break, handler registry, explicit
//! `step()` / drain-to-horizon driving.

use crate::billing::Billing;
use crate::catalog::InstanceType;
use crate::cluster::ClusterId;
use crate::metrics::MetricStore;
use crate::time::{SimClock, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrd};

/// Number of distinct [`EventKind`]s (array-table size).
pub const N_EVENT_KINDS: usize = 11;

/// Discriminant of a [`SimEvent`], used for subscriptions and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum EventKind {
    /// Instances finished booting; the cluster starts framework warm-up.
    ProvisioningDone,
    /// Framework warm-up finished; the cluster is Running.
    WarmupDone,
    /// The spot market reclaimed a cluster's capacity.
    SpotRevoked,
    /// A watched instance type's spot price moved to a new value.
    SpotPriceChanged,
    /// The shared capacity ledger's availability for a type changed.
    CapacityChanged,
    /// A cluster's usage span is settled (drives billing + capacity release).
    ClusterTerminated,
    /// Periodic observability tick (gauge sampling).
    MetricTick,
    /// A fleet job arrived and was registered with the scheduler.
    JobArrived,
    /// The fleet scheduler granted a tenant's pending launch request.
    ProbeGranted,
    /// The fleet scheduler denied a tenant's launch request outright.
    ProbeDenied,
    /// A fleet job finished (search plus training, or gave up).
    JobCompleted,
}

impl EventKind {
    /// Every kind, in stable declaration order.
    pub const ALL: [EventKind; N_EVENT_KINDS] = [
        EventKind::ProvisioningDone,
        EventKind::WarmupDone,
        EventKind::SpotRevoked,
        EventKind::SpotPriceChanged,
        EventKind::CapacityChanged,
        EventKind::ClusterTerminated,
        EventKind::MetricTick,
        EventKind::JobArrived,
        EventKind::ProbeGranted,
        EventKind::ProbeDenied,
        EventKind::JobCompleted,
    ];

    /// Stable display name (used by `mlcd stats` and the event goldens).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ProvisioningDone => "provisioning_done",
            EventKind::WarmupDone => "warmup_done",
            EventKind::SpotRevoked => "spot_revoked",
            EventKind::SpotPriceChanged => "spot_price_changed",
            EventKind::CapacityChanged => "capacity_changed",
            EventKind::ClusterTerminated => "cluster_terminated",
            EventKind::MetricTick => "metric_tick",
            EventKind::JobArrived => "job_arrived",
            EventKind::ProbeGranted => "probe_granted",
            EventKind::ProbeDenied => "probe_denied",
            EventKind::JobCompleted => "job_completed",
        }
    }

    fn index(self) -> usize {
        match self {
            EventKind::ProvisioningDone => 0,
            EventKind::WarmupDone => 1,
            EventKind::SpotRevoked => 2,
            EventKind::SpotPriceChanged => 3,
            EventKind::CapacityChanged => 4,
            EventKind::ClusterTerminated => 5,
            EventKind::MetricTick => 6,
            EventKind::JobArrived => 7,
            EventKind::ProbeGranted => 8,
            EventKind::ProbeDenied => 9,
            EventKind::JobCompleted => 10,
        }
    }
}

/// Why a cluster's usage span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TerminationCause {
    /// The owner asked for termination (`terminate` / `terminate_at`).
    Requested,
    /// The spot market revoked the capacity.
    Revoked,
}

/// A typed simulation event.
///
/// Payloads carry everything a handler needs, so components stay decoupled:
/// e.g. [`SimEvent::ClusterTerminated`] carries the full usage span and
/// rate, letting the billing component record it without reaching into the
/// fleet's cluster table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SimEvent {
    /// Instance boot finished for a cluster.
    ProvisioningDone {
        /// The cluster that finished booting.
        cluster: ClusterId,
    },
    /// Framework warm-up finished; the cluster becomes Running.
    WarmupDone {
        /// The cluster that finished warming up.
        cluster: ClusterId,
    },
    /// The spot market revoked a cluster.
    SpotRevoked {
        /// The revoked cluster.
        cluster: ClusterId,
    },
    /// A watched type's spot price was re-sampled.
    SpotPriceChanged {
        /// The repriced instance type.
        itype: InstanceType,
        /// New spot hourly price per instance, USD.
        hourly_usd: f64,
    },
    /// The capacity ledger's availability for a type changed.
    CapacityChanged {
        /// The affected instance type.
        itype: InstanceType,
        /// Instances still available after the change.
        available: u32,
    },
    /// A cluster's usage span is settled.
    ClusterTerminated {
        /// The terminated cluster.
        cluster: ClusterId,
        /// Instance type of the span.
        itype: InstanceType,
        /// Node count of the span.
        n: u32,
        /// Span start (the launch request time — provisioning is billed).
        start: SimTime,
        /// Span end.
        end: SimTime,
        /// Locked-in spot rate, or `None` for the on-demand list price.
        hourly_usd: Option<f64>,
        /// Why the span ended.
        cause: TerminationCause,
    },
    /// Periodic observability tick; reschedules itself every `period`.
    MetricTick {
        /// Tick period.
        period: SimDuration,
    },
    /// A fleet job arrived and was registered with the scheduler.
    JobArrived {
        /// Fleet-assigned job id.
        job: u64,
    },
    /// The fleet scheduler granted a tenant's pending launch request.
    ProbeGranted {
        /// Fleet-assigned job id.
        job: u64,
        /// How long the request queued before the grant.
        waited: SimDuration,
    },
    /// The fleet scheduler denied a tenant's launch request outright.
    ProbeDenied {
        /// Fleet-assigned job id.
        job: u64,
    },
    /// A fleet job finished (search plus training, or gave up).
    JobCompleted {
        /// Fleet-assigned job id.
        job: u64,
        /// Whether the job's deadline (if any) was missed, wall-clock
        /// from arrival to completion.
        missed: bool,
    },
}

impl SimEvent {
    /// The event's kind discriminant.
    pub fn kind(&self) -> EventKind {
        match self {
            SimEvent::ProvisioningDone { .. } => EventKind::ProvisioningDone,
            SimEvent::WarmupDone { .. } => EventKind::WarmupDone,
            SimEvent::SpotRevoked { .. } => EventKind::SpotRevoked,
            SimEvent::SpotPriceChanged { .. } => EventKind::SpotPriceChanged,
            SimEvent::CapacityChanged { .. } => EventKind::CapacityChanged,
            SimEvent::ClusterTerminated { .. } => EventKind::ClusterTerminated,
            SimEvent::MetricTick { .. } => EventKind::MetricTick,
            SimEvent::JobArrived { .. } => EventKind::JobArrived,
            SimEvent::ProbeGranted { .. } => EventKind::ProbeGranted,
            SimEvent::ProbeDenied { .. } => EventKind::ProbeDenied,
            SimEvent::JobCompleted { .. } => EventKind::JobCompleted,
        }
    }
}

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(u64);

/// An event together with its firing time and schedule-order sequence
/// number — the unit the queue stores, the dispatcher delivers and the
/// event log records.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EventRecord {
    /// When the event fires.
    pub at: SimTime,
    /// Schedule-order sequence number (the deterministic tie-break).
    pub seq: u64,
    /// The payload.
    pub event: SimEvent,
}

/// Heap entry. `BinaryHeap` is a max-heap, so the ordering is inverted:
/// the earliest `(at, seq)` pops first.
#[derive(Debug)]
struct Queued(EventRecord);

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl Eq for Queued {}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .at
            .as_secs()
            .total_cmp(&self.0.at.as_secs())
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Identity of a component registered with the engine. The provider owns
/// one component per id and routes dispatches to it; an enum (rather than
/// trait objects in a map) keeps dispatch allocation-free and the borrow
/// checker able to split the provider's state into disjoint handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentId {
    /// Cluster lifecycle state machine.
    Fleet,
    /// Spot market price process.
    Market,
    /// Shared capacity ledger.
    Capacity,
    /// Billing ledger writer.
    Billing,
    /// Metric gauge writer.
    Metrics,
}

/// Mutable context handed to a component while it handles one event.
pub struct EngineCtx<'a> {
    /// The engine, for scheduling or cancelling further events.
    pub engine: &'a mut SimEngine,
    /// The shared virtual clock (already advanced to the event's time).
    pub clock: &'a SimClock,
    /// The billing ledger.
    pub billing: &'a Billing,
    /// The metric store.
    pub metrics: &'a MetricStore,
}

/// An event handler registered with the engine.
///
/// Handlers run with the clock already advanced to the event's firing time
/// and may schedule follow-up events (at the same instant or later) through
/// the context.
pub trait Component {
    /// This component's registry identity.
    fn id(&self) -> ComponentId;
    /// Handle one dispatched event.
    fn on_event(&mut self, rec: &EventRecord, ctx: &mut EngineCtx<'_>);
}

/// Maximum subscribers per event kind (registration asserts this bound).
const MAX_SUBSCRIBERS: usize = 4;

/// Fixed-capacity, copyable set of subscribers for one event kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubscriberSet {
    ids: [Option<ComponentId>; MAX_SUBSCRIBERS],
    len: usize,
}

impl SubscriberSet {
    fn push(&mut self, id: ComponentId) {
        match self.ids.get_mut(self.len) {
            Some(slot) => {
                *slot = Some(id);
                self.len += 1;
            }
            None => unreachable!("subscribe() bounds registrations per kind"),
        }
    }

    /// Subscribers in registration order.
    pub fn iter(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.ids.iter().take(self.len).filter_map(|c| *c)
    }

    /// Number of subscribers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no component subscribed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Scheduled / dispatched / cancelled counts, broken down by event kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    scheduled: [u64; N_EVENT_KINDS],
    dispatched: [u64; N_EVENT_KINDS],
    cancelled: [u64; N_EVENT_KINDS],
}

/// One `u64` counter per event kind, in declaration order.
type KindCounts = [u64; N_EVENT_KINDS];

/// Read the per-kind slot of a counter array. `kind.index()` is in bounds
/// by construction; `get` keeps the hot path free of panicking indexing.
fn slot(arr: &KindCounts, kind: EventKind) -> u64 {
    arr.get(kind.index()).copied().unwrap_or(0)
}

/// Increment the per-kind slot of a counter array.
fn bump(arr: &mut KindCounts, kind: EventKind) {
    if let Some(c) = arr.get_mut(kind.index()) {
        *c += 1;
    }
}

/// Increment the per-kind slot of a process-wide atomic counter array.
fn bump_global(arr: &[AtomicU64; N_EVENT_KINDS], kind: EventKind) {
    if let Some(c) = arr.get(kind.index()) {
        c.fetch_add(1, AtomicOrd::Relaxed);
    }
}

/// Read the per-kind slot of a process-wide atomic counter array.
fn load_global(arr: &[AtomicU64; N_EVENT_KINDS], kind: EventKind) -> u64 {
    arr.get(kind.index()).map(|c| c.load(AtomicOrd::Relaxed)).unwrap_or(0)
}

impl EventCounters {
    /// Events scheduled of a kind.
    pub fn scheduled(&self, kind: EventKind) -> u64 {
        slot(&self.scheduled, kind)
    }

    /// Events dispatched of a kind.
    pub fn dispatched(&self, kind: EventKind) -> u64 {
        slot(&self.dispatched, kind)
    }

    /// Events cancelled of a kind.
    pub fn cancelled(&self, kind: EventKind) -> u64 {
        slot(&self.cancelled, kind)
    }

    /// Total events scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled.iter().sum()
    }

    /// Total events dispatched.
    pub fn total_dispatched(&self) -> u64 {
        self.dispatched.iter().sum()
    }

    /// Total events cancelled.
    pub fn total_cancelled(&self) -> u64 {
        self.cancelled.iter().sum()
    }

    /// `(kind, scheduled, dispatched, cancelled)` rows in declaration order.
    pub fn rows(&self) -> impl Iterator<Item = (EventKind, u64, u64, u64)> + '_ {
        EventKind::ALL.iter().map(|&k| {
            (k, slot(&self.scheduled, k), slot(&self.dispatched, k), slot(&self.cancelled, k))
        })
    }
}

/// One event kind's process-wide counter totals, as surfaced by
/// [`global_event_counters`] (and, through `mlcd-service`, by
/// `mlcd stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimEventCounter {
    /// Event kind name (see [`EventKind::name`]).
    pub kind: String,
    /// Events scheduled across all engines in this process.
    pub scheduled: u64,
    /// Events dispatched across all engines in this process.
    pub dispatched: u64,
    /// Events cancelled across all engines in this process.
    pub cancelled: u64,
}

static GLOBAL_SCHEDULED: [AtomicU64; N_EVENT_KINDS] = [const { AtomicU64::new(0) }; N_EVENT_KINDS];
static GLOBAL_DISPATCHED: [AtomicU64; N_EVENT_KINDS] = [const { AtomicU64::new(0) }; N_EVENT_KINDS];
static GLOBAL_CANCELLED: [AtomicU64; N_EVENT_KINDS] = [const { AtomicU64::new(0) }; N_EVENT_KINDS];

/// Process-wide event counter totals, aggregated across every [`SimEngine`]
/// ever driven in this process (one row per [`EventKind`], in declaration
/// order). This is observability plumbing for `mlcd stats` — per-engine
/// numbers come from [`SimEngine::counters`].
pub fn global_event_counters() -> Vec<SimEventCounter> {
    EventKind::ALL
        .iter()
        .map(|&k| SimEventCounter {
            kind: k.name().to_owned(),
            scheduled: load_global(&GLOBAL_SCHEDULED, k),
            dispatched: load_global(&GLOBAL_DISPATCHED, k),
            cancelled: load_global(&GLOBAL_CANCELLED, k),
        })
        .collect()
}

/// The deterministic discrete-event engine: a future-event heap ordered by
/// `(SimTime, seq)`, a subscription registry, per-kind counters and an
/// optional event log.
///
/// The engine does not own a clock or any domain state — the driver (the
/// provider façade) pops due events, advances the shared clock to each
/// event's time and dispatches it to the subscribed components.
#[derive(Debug, Default)]
pub struct SimEngine {
    heap: BinaryHeap<Queued>,
    next_seq: u64,
    /// Kinds of events still pending, by seq. Doubles as the liveness set
    /// for cancellation: a cancelled seq is removed here and the heap entry
    /// is dropped lazily when it reaches the top.
    pending: BTreeMap<u64, EventKind>,
    counters: EventCounters,
    /// `(kind, component)` registrations in subscription order — an ordered
    /// Vec, not a hash map, so dispatch order is deterministic.
    registry: Vec<(EventKind, ComponentId)>,
    log: Option<Vec<EventRecord>>,
}

impl SimEngine {
    /// An empty engine with no subscriptions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `component` as a handler for `kind`. Dispatch order among
    /// subscribers of one kind follows registration order.
    ///
    /// # Panics
    /// Panics if a kind accumulates more than `MAX_SUBSCRIBERS`
    /// subscribers (a wiring bug, caught at construction time).
    pub fn subscribe(&mut self, kind: EventKind, component: ComponentId) {
        let already = self.registry.iter().filter(|(k, _)| *k == kind).count();
        assert!(already < MAX_SUBSCRIBERS, "too many subscribers for {kind:?}");
        self.registry.push((kind, component));
    }

    /// Subscribers for a kind, in registration order.
    pub fn subscribers(&self, kind: EventKind) -> SubscriberSet {
        let mut set = SubscriberSet::default();
        for (k, c) in &self.registry {
            if *k == kind {
                set.push(*c);
            }
        }
        set
    }

    /// Schedule `event` to fire at `at`. Events scheduled for the same
    /// instant fire in schedule order.
    pub fn schedule(&mut self, at: SimTime, event: SimEvent) -> EventId {
        let kind = event.kind();
        let seq = self.next_seq;
        self.next_seq += 1;
        bump(&mut self.counters.scheduled, kind);
        bump_global(&GLOBAL_SCHEDULED, kind);
        self.pending.insert(seq, kind);
        self.heap.push(Queued(EventRecord { at, seq, event }));
        EventId(seq)
    }

    /// Cancel a pending event. Returns `false` when the event already fired
    /// or was already cancelled. The heap entry is dropped lazily.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.pending.remove(&id.0) {
            Some(kind) => {
                bump(&mut self.counters.cancelled, kind);
                bump_global(&GLOBAL_CANCELLED, kind);
                true
            }
            None => false,
        }
    }

    /// Firing time of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.purge_cancelled_top();
        self.heap.peek().map(|q| q.0.at)
    }

    /// Pop the next live event if it fires at or before `upto`, counting it
    /// dispatched and logging it when recording is on.
    pub fn pop_due(&mut self, upto: SimTime) -> Option<EventRecord> {
        self.purge_cancelled_top();
        if self.heap.peek().is_some_and(|q| q.0.at <= upto) {
            self.pop_live()
        } else {
            None
        }
    }

    /// Pop the next live event regardless of its firing time (the `step()`
    /// primitive), counting it dispatched and logging it when recording is
    /// on.
    pub fn pop_next(&mut self) -> Option<EventRecord> {
        self.purge_cancelled_top();
        if self.heap.peek().is_some() {
            self.pop_live()
        } else {
            None
        }
    }

    fn pop_live(&mut self) -> Option<EventRecord> {
        let rec = self.heap.pop()?.0;
        self.pending.remove(&rec.seq);
        let kind = rec.event.kind();
        bump(&mut self.counters.dispatched, kind);
        bump_global(&GLOBAL_DISPATCHED, kind);
        if let Some(log) = &mut self.log {
            log.push(rec.clone());
        }
        Some(rec)
    }

    /// Drop cancelled entries off the top of the heap so `peek` sees a live
    /// event.
    fn purge_cancelled_top(&mut self) {
        while let Some(q) = self.heap.peek() {
            if self.pending.contains_key(&q.0.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Number of live pending events.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Snapshot of this engine's counters.
    pub fn counters(&self) -> EventCounters {
        self.counters
    }

    /// Turn event-log recording on or off. Turning it on starts an empty
    /// log; dispatched events are appended in dispatch order.
    pub fn set_recording(&mut self, on: bool) {
        self.log = if on { Some(Vec::new()) } else { None };
    }

    /// Take the recorded event log, leaving recording on with a fresh log
    /// (no-op empty result when recording is off).
    pub fn take_log(&mut self) -> Vec<EventRecord> {
        match &mut self.log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn tick() -> SimEvent {
        SimEvent::MetricTick { period: SimDuration::from_secs(1.0) }
    }

    fn ready(id: u64) -> SimEvent {
        SimEvent::ProvisioningDone { cluster: ClusterId(id) }
    }

    #[test]
    fn pops_in_time_order() {
        let mut e = SimEngine::new();
        e.schedule(t(30.0), ready(3));
        e.schedule(t(10.0), ready(1));
        e.schedule(t(20.0), ready(2));
        assert_eq!(e.next_time(), Some(t(10.0)));
        let order: Vec<u64> = std::iter::from_fn(|| e.pop_due(t(100.0)))
            .map(|r| match r.event {
                SimEvent::ProvisioningDone { cluster } => cluster.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_a_tick() {
        let mut e = SimEngine::new();
        e.schedule(t(5.0), ready(1));
        e.schedule(t(5.0), ready(2));
        e.schedule(t(5.0), ready(3));
        let seqs: Vec<u64> = std::iter::from_fn(|| e.pop_due(t(5.0))).map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut e = SimEngine::new();
        e.schedule(t(50.0), tick());
        assert!(e.pop_due(t(49.9)).is_none());
        assert_eq!(e.pending_len(), 1);
        assert!(e.pop_due(t(50.0)).is_some());
        assert_eq!(e.pending_len(), 0);
    }

    #[test]
    fn empty_engine_behaviour() {
        let mut e = SimEngine::new();
        assert!(e.next_time().is_none());
        assert!(e.pop_due(t(1e9)).is_none());
        assert!(e.pop_next().is_none());
        assert_eq!(e.pending_len(), 0);
    }

    #[test]
    fn cancellation_skips_events_and_counts() {
        let mut e = SimEngine::new();
        let a = e.schedule(t(10.0), ready(1));
        e.schedule(t(20.0), ready(2));
        assert!(e.cancel(a));
        assert!(!e.cancel(a), "double cancel is a no-op");
        assert_eq!(e.next_time(), Some(t(20.0)));
        let rec = e.pop_due(t(100.0)).unwrap();
        assert!(matches!(rec.event, SimEvent::ProvisioningDone { cluster: ClusterId(2) }));
        let c = e.counters();
        assert_eq!(c.scheduled(EventKind::ProvisioningDone), 2);
        assert_eq!(c.dispatched(EventKind::ProvisioningDone), 1);
        assert_eq!(c.cancelled(EventKind::ProvisioningDone), 1);
        assert_eq!(c.total_scheduled(), 2);
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        let mut e = SimEngine::new();
        let a = e.schedule(t(1.0), tick());
        assert!(e.pop_due(t(1.0)).is_some());
        assert!(!e.cancel(a));
        assert_eq!(e.counters().total_cancelled(), 0);
    }

    #[test]
    fn subscribers_preserve_registration_order() {
        let mut e = SimEngine::new();
        e.subscribe(EventKind::ClusterTerminated, ComponentId::Capacity);
        e.subscribe(EventKind::ClusterTerminated, ComponentId::Billing);
        e.subscribe(EventKind::MetricTick, ComponentId::Metrics);
        let subs: Vec<ComponentId> = e.subscribers(EventKind::ClusterTerminated).iter().collect();
        assert_eq!(subs, vec![ComponentId::Capacity, ComponentId::Billing]);
        assert_eq!(e.subscribers(EventKind::MetricTick).len(), 1);
        assert!(e.subscribers(EventKind::SpotRevoked).is_empty());
    }

    #[test]
    fn event_log_records_dispatch_order() {
        let mut e = SimEngine::new();
        e.set_recording(true);
        e.schedule(t(2.0), ready(2));
        e.schedule(t(1.0), ready(1));
        while e.pop_due(t(10.0)).is_some() {}
        let log = e.take_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].at, t(1.0));
        assert_eq!(log[1].at, t(2.0));
        assert!(e.take_log().is_empty(), "take_log drains");
    }

    #[test]
    fn global_counters_accumulate() {
        let before = global_event_counters();
        let mut e = SimEngine::new();
        e.schedule(t(1.0), tick());
        e.pop_next();
        let after = global_event_counters();
        let idx = EventKind::MetricTick.index();
        assert_eq!(after[idx].kind, "metric_tick");
        assert!(after[idx].scheduled > before[idx].scheduled);
        assert!(after[idx].dispatched > before[idx].dispatched);
    }

    #[test]
    fn kind_names_and_indices_are_stable() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
        assert_eq!(EventKind::ALL.len(), N_EVENT_KINDS);
    }
}
