//! Spot-instance market.
//!
//! EC2 spot capacity trades at a deep, fluctuating discount and can be
//! revoked with two minutes' notice. For deployment *search* this is an
//! attractive substrate — a profiling probe is short and restartable — so
//! the simulator models a per-type spot price process and revocations.
//!
//! Everything is a deterministic function of `(market seed, instance type,
//! time)`, so experiments stay reproducible without shared mutable state.

use crate::catalog::InstanceType;
use crate::time::{SimDuration, SimTime};
use serde::Serialize;

/// Parameters of the spot market.
///
/// ```
/// use mlcd_cloudsim::{SpotMarket, InstanceType, SimTime};
///
/// let market = SpotMarket::default();
/// let at = SimTime::from_secs(3_600.0);
/// let spot = market.hourly_usd(InstanceType::P32xlarge, at);
/// // Deep discount against the $3.06 on-demand rate, always positive.
/// assert!(spot > 0.3 && spot < 1.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SpotMarket {
    /// Seed of the market's price/revocation process.
    pub seed: u64,
    /// Mean spot price as a fraction of on-demand (EC2 hovers ~0.3).
    pub mean_discount: f64,
    /// Peak-to-peak amplitude of the price oscillation, as a fraction of
    /// on-demand.
    pub amplitude: f64,
    /// Base revocation rate, events per instance-hour at the mean price.
    /// Scales up when the price runs hot (capacity is scarce).
    pub revocation_rate_per_hour: f64,
    /// Which price process generates the multiplier.
    pub mode: MarketMode,
}

/// The shape of the spot price process. Both modes are pure functions of
/// `(seed, instance type, time)` — no market state is carried between
/// queries, so prices, revocation rates and revocation draws all stay
/// consistent with each other under either mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MarketMode {
    /// The original static process: smoothed per-bucket hash noise around
    /// the mean (piecewise-linear, bounded, mean-reverting every bucket).
    Sine,
    /// A seeded bounded random walk: each 5-minute bucket takes a hash-
    /// driven step, reflecting off `mean ± amplitude/2`. Prices drift and
    /// stay away from the mean for long stretches, which is what makes
    /// fleet-level probe timing decisions interesting.
    RandomWalk,
}

impl Default for SpotMarket {
    fn default() -> Self {
        SpotMarket {
            seed: 0x5B07,
            mean_discount: 0.32,
            amplitude: 0.18,
            revocation_rate_per_hour: 0.03,
            mode: MarketMode::Sine,
        }
    }
}

/// Splitmix64 — cheap, high-quality 64-bit mixing for the deterministic
/// price/revocation processes.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Price process time bucket (spot prices reprice every ~5 minutes).
const BUCKET_SECS: f64 = 300.0;

/// Anchor stride of the memoized random walk: the per-thread cache keeps
/// the walk value at every `WALK_ANCHOR_STRIDE`-th bucket, so a query
/// replays at most one stride of steps (amortized) instead of the whole
/// path from bucket zero — which made periodic price ticks quadratic in
/// simulated time on long fleet runs.
const WALK_ANCHOR_STRIDE: u64 = 64;

/// Cache key: everything the walk's value depends on besides the bucket
/// index — seed, instance type, and the bound/step parameters.
type WalkKey = (u64, u64, u64, u64);

thread_local! {
    /// Per-thread anchor cache: for each market/type, `anchors[i]` is the
    /// walk value at bucket `i × WALK_ANCHOR_STRIDE` (`anchors[0]` is the
    /// mean). Anchors are computed by the same sequential fold as a
    /// from-zero replay, so memoized values are bit-identical to the
    /// unmemoized path — determinism is unaffected by cache state, and
    /// threads that never share the cache still agree exactly.
    static WALK_ANCHORS: std::cell::RefCell<std::collections::BTreeMap<WalkKey, Vec<f64>>> =
        const { std::cell::RefCell::new(std::collections::BTreeMap::new()) };
}

/// Fold the walk forward over `range` bucket steps from `x`, reflecting
/// off `[lo, hi]`. This is the single step function both the anchors and
/// the final partial stride use — bit-exactness of the memoization rests
/// on every path running these exact operations in the same order.
fn walk_steps(
    key: u64,
    mut x: f64,
    range: std::ops::Range<u64>,
    lo: f64,
    hi: f64,
    step: f64,
) -> f64 {
    for b in range {
        let u = unit(mix(key ^ b));
        x += step * (2.0 * u - 1.0);
        if x > hi {
            x = 2.0 * hi - x;
        }
        if x < lo {
            x = 2.0 * lo - x;
        }
    }
    x
}

impl SpotMarket {
    /// Spot price multiplier (fraction of on-demand) for a type at a time,
    /// dispatched on [`MarketMode`]. Always bounded to `mean ± amplitude/2`.
    pub fn price_multiplier(&self, itype: InstanceType, at: SimTime) -> f64 {
        match self.mode {
            MarketMode::Sine => self.sine_multiplier(itype, at),
            MarketMode::RandomWalk => self.walk_multiplier(itype, at),
        }
    }

    /// The static process: piecewise-linear per 5-minute bucket, smoothed
    /// by averaging two bucket hashes so adjacent buckets correlate.
    fn sine_multiplier(&self, itype: InstanceType, at: SimTime) -> f64 {
        let bucket = (at.as_secs() / BUCKET_SECS) as u64;
        let key = self.seed ^ (itype as u64).wrapping_mul(0x9E3779B1);
        let a = unit(mix(key ^ bucket));
        let b = unit(mix(key ^ (bucket + 1)));
        let frac = (at.as_secs() / BUCKET_SECS).fract();
        let u = a * (1.0 - frac) + b * frac;
        self.mean_discount + self.amplitude * (u - 0.5)
    }

    /// The random-walk process: starting at the mean, every elapsed bucket
    /// takes a uniform step of up to `amplitude/8` in either direction and
    /// reflects off the `mean ± amplitude/2` bounds. Piecewise-constant per
    /// bucket and a pure function of `(seed, type, bucket index)` — any
    /// two queries at the same time agree exactly. The sequential fold is
    /// memoized through per-thread stride anchors (bit-identical to a
    /// from-zero replay), so a query costs O(stride) amortized rather
    /// than O(elapsed buckets).
    fn walk_multiplier(&self, itype: InstanceType, at: SimTime) -> f64 {
        let lo = self.mean_discount - self.amplitude / 2.0;
        let hi = self.mean_discount + self.amplitude / 2.0;
        let key = self.seed ^ (itype as u64).wrapping_mul(0x9E3779B1) ^ 0x57A1_4B0C_5EED_D15C;
        let buckets = (at.as_secs() / BUCKET_SECS) as u64;
        let step = self.amplitude / 8.0;
        let anchor_idx = (buckets / WALK_ANCHOR_STRIDE) as usize;
        let cache_key: WalkKey =
            (self.seed, itype as u64, self.mean_discount.to_bits(), self.amplitude.to_bits());
        let x = WALK_ANCHORS.with(|cell| {
            let mut cache = cell.borrow_mut();
            let anchors = cache.entry(cache_key).or_insert_with(|| vec![self.mean_discount]);
            while anchors.len() <= anchor_idx {
                let i = anchors.len() as u64;
                let from = *anchors.last().expect("anchors seeded with the mean");
                anchors.push(walk_steps(
                    key,
                    from,
                    (i - 1) * WALK_ANCHOR_STRIDE..i * WALK_ANCHOR_STRIDE,
                    lo,
                    hi,
                    step,
                ));
            }
            walk_steps(
                key,
                anchors[anchor_idx],
                anchor_idx as u64 * WALK_ANCHOR_STRIDE..buckets,
                lo,
                hi,
                step,
            )
        });
        x.clamp(lo, hi)
    }

    /// Spot hourly price in USD for a type at a time.
    pub fn hourly_usd(&self, itype: InstanceType, at: SimTime) -> f64 {
        itype.hourly_usd() * self.price_multiplier(itype, at)
    }

    /// Instantaneous revocation rate (events per instance-hour) at a time:
    /// the base rate scaled by how hot the price is running (capacity
    /// scarcity shows up in both).
    pub fn revocation_rate(&self, itype: InstanceType, at: SimTime) -> f64 {
        let rel = self.price_multiplier(itype, at) / self.mean_discount;
        self.revocation_rate_per_hour * rel * rel
    }

    /// Sample the revocation time of a cluster of `n` nodes launched at
    /// `start` (any node loss kills a synchronous training cluster). The
    /// draw is deterministic per `(market, type, n, start, salt)`.
    /// `None` = survives at least `horizon`.
    pub fn revocation_within(
        &self,
        itype: InstanceType,
        n: u32,
        start: SimTime,
        horizon: SimDuration,
        salt: u64,
    ) -> Option<SimTime> {
        assert!(n >= 1, "revocation_within: empty cluster");
        // Exponential draw with the rate frozen at launch (rates drift
        // slowly relative to probe durations): rate_cluster = n × rate.
        let rate = self.revocation_rate(itype, start) * n as f64; // per hour
        if rate <= 0.0 {
            return None;
        }
        let key = self.seed
            ^ mix((itype as u64) << 32 | n as u64)
            ^ mix(start.as_secs().to_bits())
            ^ mix(salt);
        let u = unit(mix(key)).max(1e-12);
        let hours = -u.ln() / rate;
        let t = start + SimDuration::from_hours(hours);
        if hours <= horizon.as_hours() {
            Some(t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn prices_bounded_and_deterministic() {
        let m = SpotMarket::default();
        for k in 0..500 {
            let at = t(k as f64 * 137.0);
            let p = m.price_multiplier(InstanceType::P2Xlarge, at);
            assert!(p >= m.mean_discount - m.amplitude / 2.0 - 1e-12);
            assert!(p <= m.mean_discount + m.amplitude / 2.0 + 1e-12);
            assert_eq!(p, m.price_multiplier(InstanceType::P2Xlarge, at));
        }
    }

    #[test]
    fn prices_vary_over_time_and_type() {
        let m = SpotMarket::default();
        let p0 = m.price_multiplier(InstanceType::C5Xlarge, t(0.0));
        let p1 = m.price_multiplier(InstanceType::C5Xlarge, t(7200.0));
        assert_ne!(p0, p1);
        let q0 = m.price_multiplier(InstanceType::P32xlarge, t(0.0));
        assert_ne!(p0, q0);
    }

    #[test]
    fn spot_is_a_deep_discount() {
        let m = SpotMarket::default();
        let od = InstanceType::P32xlarge.hourly_usd();
        let spot = m.hourly_usd(InstanceType::P32xlarge, t(1234.0));
        assert!(spot < od * 0.5, "spot {spot} vs on-demand {od}");
        assert!(spot > od * 0.1);
    }

    #[test]
    fn price_is_continuous_across_buckets() {
        // The interpolation must not jump at bucket boundaries.
        let m = SpotMarket::default();
        let eps = 1e-3;
        for k in 1..20 {
            let edge = k as f64 * BUCKET_SECS;
            let before = m.price_multiplier(InstanceType::C54xlarge, t(edge - eps));
            let after = m.price_multiplier(InstanceType::C54xlarge, t(edge + eps));
            assert!((before - after).abs() < 1e-3, "jump at bucket {k}: {before} vs {after}");
        }
    }

    #[test]
    fn walk_prices_bounded_and_deterministic() {
        let m = SpotMarket { mode: MarketMode::RandomWalk, ..SpotMarket::default() };
        for k in 0..500 {
            let at = t(k as f64 * 137.0);
            let p = m.price_multiplier(InstanceType::P2Xlarge, at);
            assert!(p >= m.mean_discount - m.amplitude / 2.0 - 1e-12);
            assert!(p <= m.mean_discount + m.amplitude / 2.0 + 1e-12);
            assert_eq!(p, m.price_multiplier(InstanceType::P2Xlarge, at));
        }
    }

    #[test]
    fn walk_path_is_pinned_per_seed() {
        // The walk is part of fleet goldens: its exact path per seed is
        // load-bearing. Pin the first few hours bit-for-bit so any drift
        // in the step function is caught here, not in a fleet digest.
        let path = |seed: u64| -> String {
            let m = SpotMarket { seed, mode: MarketMode::RandomWalk, ..SpotMarket::default() };
            (0..8)
                .map(|k| {
                    let p = m.price_multiplier(InstanceType::C54xlarge, t(k as f64 * 1800.0));
                    format!("{:016x}", p.to_bits())
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        assert_eq!(
            path(0x5B07),
            "3fd47ae147ae147b 3fd366494592193a 3fd3957f109afc05 3fd22a5e44f2da02 \
             3fcfeaa086204689 3fd10bd983f06e8e 3fd1be0fb6c84756 3fd05814c6ba279e"
        );
        assert_eq!(
            path(2020),
            "3fd47ae147ae147b 3fd574be8669c19f 3fd31864ab597533 3fd520a25b0b4fda \
             3fd53cf223642536 3fd4dbbd785aeaf6 3fd27b2cd261702f 3fcfc80604d5ca7b"
        );
        // Different seeds genuinely diverge.
        assert_ne!(path(0x5B07), path(2020));
    }

    #[test]
    fn walk_memoization_matches_naive_replay() {
        // The original unmemoized process: one fold from bucket zero.
        fn naive(m: &SpotMarket, itype: InstanceType, at: SimTime) -> f64 {
            let lo = m.mean_discount - m.amplitude / 2.0;
            let hi = m.mean_discount + m.amplitude / 2.0;
            let key = m.seed ^ (itype as u64).wrapping_mul(0x9E3779B1) ^ 0x57A1_4B0C_5EED_D15C;
            let buckets = (at.as_secs() / BUCKET_SECS) as u64;
            walk_steps(key, m.mean_discount, 0..buckets, lo, hi, m.amplitude / 8.0).clamp(lo, hi)
        }
        let a = SpotMarket { mode: MarketMode::RandomWalk, ..SpotMarket::default() };
        // Same seed, different bounds: must not share anchor entries.
        let b =
            SpotMarket { amplitude: 0.10, mode: MarketMode::RandomWalk, ..SpotMarket::default() };
        // Non-monotone query times: the anchor cache must be invisible
        // to query order, including jumps far forward and back.
        let times = [0.0, 9.0e5, 137.0, 4.2e6, 3.1e5, 9.0e5, 50.0, 7.7e6, 1.0e3];
        for &s in &times {
            let at = t(s);
            for ity in [InstanceType::C5Xlarge, InstanceType::P32xlarge] {
                assert_eq!(a.price_multiplier(ity, at), naive(&a, ity, at));
                assert_eq!(b.price_multiplier(ity, at), naive(&b, ity, at));
            }
        }
    }

    #[test]
    fn walk_and_sine_share_bounds_but_not_paths() {
        let sine = SpotMarket::default();
        let walk = SpotMarket { mode: MarketMode::RandomWalk, ..SpotMarket::default() };
        let diverged = (1..200)
            .filter(|&k| {
                let at = t(k as f64 * 600.0);
                sine.price_multiplier(InstanceType::C5Xlarge, at)
                    != walk.price_multiplier(InstanceType::C5Xlarge, at)
            })
            .count();
        assert!(diverged > 150, "modes should produce different paths: {diverged}/199");
    }

    #[test]
    fn revocations_deterministic_and_scale_with_cluster() {
        let m = SpotMarket::default();
        let horizon = SimDuration::from_hours(100.0);
        let a = m.revocation_within(InstanceType::C5Xlarge, 1, t(0.0), horizon, 7);
        let b = m.revocation_within(InstanceType::C5Xlarge, 1, t(0.0), horizon, 7);
        assert_eq!(a, b);
        // Bigger clusters die sooner in expectation: count survivals of a
        // short window across salts.
        let survives = |n: u32| {
            (0..400u64)
                .filter(|&s| {
                    m.revocation_within(
                        InstanceType::C5Xlarge,
                        n,
                        t(0.0),
                        SimDuration::from_hours(1.0),
                        s,
                    )
                    .is_none()
                })
                .count()
        };
        let s1 = survives(1);
        let s16 = survives(16);
        assert!(s1 > s16, "1-node survives more often: {s1} vs {s16}");
    }

    #[test]
    fn short_probes_usually_survive() {
        // A 15-minute probe on a small cluster should rarely be revoked.
        let m = SpotMarket::default();
        let revoked = (0..1000u64)
            .filter(|&s| {
                m.revocation_within(
                    InstanceType::C54xlarge,
                    4,
                    t(0.0),
                    SimDuration::from_mins(15.0),
                    s,
                )
                .is_some()
            })
            .count();
        // 4 nodes × ~0.03/h × 0.25 h ≈ 3 %; allow generous slack.
        assert!(revoked < 250, "revoked {revoked}/1000");
        assert!(revoked > 5, "revocations should exist: {revoked}/1000");
    }
}
