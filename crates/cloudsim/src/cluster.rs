//! Cluster lifecycle.
//!
//! A cluster moves Pending → Provisioning → Running → Terminated. The
//! provisioning delay models instance boot + ML-stack setup + framework
//! warm-up; the paper's profiler setup ("each profiling takes 10 minutes
//! including initial setup and warm-up, plus 1 extra minute per 3 extra
//! nodes") motivates the default latency model growing with cluster size.

use crate::catalog::InstanceType;
use crate::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Opaque cluster identifier, unique within one `SimCloud`.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct ClusterId(pub u64);

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster-{}", self.0)
    }
}

/// Lifecycle state of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterState {
    /// Request accepted, not yet provisioning.
    Pending,
    /// Instances booting; becomes Warming when the `ProvisioningDone`
    /// event fires.
    Provisioning,
    /// Instances up, framework warm-up in progress; becomes Running when
    /// the `WarmupDone` event fires. With the default provisioning model
    /// (`warmup_frac == 0`) both events fire at the same instant, so this
    /// state is never observed between drains.
    Warming,
    /// Ready to run work.
    Running,
    /// Terminated; a terminal state.
    Terminated,
}

/// Deterministic-plus-jitter model of how long provisioning takes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningModel {
    /// Fixed boot + setup time for the first node.
    pub base: SimDuration,
    /// Additional time per 3 extra nodes (paper's profiler rule).
    pub per_three_nodes: SimDuration,
    /// Extra fixed time for GPU instances (driver / CUDA context setup).
    pub gpu_extra: SimDuration,
    /// Max multiplicative jitter: the sampled delay is
    /// `deterministic × U[1, 1 + jitter]`.
    pub jitter: f64,
    /// Fraction of the sampled delay spent on framework warm-up *after*
    /// the instances boot: the `ProvisioningDone` event fires at
    /// `requested_at + delay × (1 − warmup_frac)` and `WarmupDone` at
    /// `requested_at + delay`. The default `0.0` collapses both onto the
    /// ready time (the pre-event-engine behaviour, which the golden
    /// digests pin).
    pub warmup_frac: f64,
}

impl Default for ProvisioningModel {
    fn default() -> Self {
        ProvisioningModel {
            base: SimDuration::from_mins(2.0),
            per_three_nodes: SimDuration::from_mins(1.0),
            gpu_extra: SimDuration::from_mins(1.0),
            jitter: 0.15,
            warmup_frac: 0.0,
        }
    }
}

impl ProvisioningModel {
    /// Deterministic part of the delay for `n` instances of `itype`.
    pub fn deterministic_delay(&self, itype: InstanceType, n: u32) -> SimDuration {
        assert!(n >= 1, "cluster must have at least one node");
        let extra_groups = ((n - 1) / 3) as f64;
        let mut d = self.base + self.per_three_nodes * extra_groups;
        if itype.spec().has_gpu() {
            d += self.gpu_extra;
        }
        d
    }

    /// Sample the actual delay, applying jitter from `rng`.
    pub fn sample_delay<R: Rng>(&self, itype: InstanceType, n: u32, rng: &mut R) -> SimDuration {
        let det = self.deterministic_delay(itype, n);
        if self.jitter <= 0.0 {
            return det;
        }
        det * rng.gen_range(1.0..1.0 + self.jitter)
    }
}

/// A simulated cluster: `n` instances of one type plus lifecycle
/// bookkeeping. State transitions are driven by the provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterInner {
    /// Identifier.
    pub id: ClusterId,
    /// Instance type of all nodes.
    pub itype: InstanceType,
    /// Node count.
    pub n: u32,
    /// Current state.
    pub state: ClusterState,
    /// When the launch request was made.
    pub requested_at: SimTime,
    /// When instance boot finishes and framework warm-up starts (the
    /// `ProvisioningDone` event time). Equal to `ready_at` unless the
    /// provisioning model splits off a warm-up fraction.
    pub boot_done_at: SimTime,
    /// When the cluster becomes/became Running.
    pub ready_at: SimTime,
    /// When it was terminated (meaningful only in Terminated).
    pub terminated_at: Option<SimTime>,
    /// Hourly rate per instance when launched on the spot market (`None`
    /// = on-demand list price).
    pub spot_hourly_usd: Option<f64>,
    /// When the spot market will revoke this cluster, if ever.
    pub revoke_at: Option<SimTime>,
    /// Whether the spot market's revocation event actually fired (the
    /// cluster was killed rather than terminated on request).
    pub revoked: bool,
    /// Whether a `ClusterTerminated` settlement event has been emitted for
    /// this cluster (exactly one usage record per cluster).
    pub billed: bool,
}

impl ClusterInner {
    /// Start the lifecycle at `now`, ready after `delay`.
    pub fn new(
        id: ClusterId,
        itype: InstanceType,
        n: u32,
        now: SimTime,
        delay: SimDuration,
    ) -> Self {
        ClusterInner {
            id,
            itype,
            n,
            state: ClusterState::Provisioning,
            requested_at: now,
            boot_done_at: now + delay,
            ready_at: now + delay,
            terminated_at: None,
            spot_hourly_usd: None,
            revoke_at: None,
            revoked: false,
            billed: false,
        }
    }

    /// Split the tail `warmup_frac` of the provisioning delay into a
    /// separate warm-up phase: `boot_done_at` moves earlier, `ready_at`
    /// stays put. A fraction of `0` is a no-op (keeping `boot_done_at`
    /// bit-identical to `ready_at`).
    pub fn split_warmup(&mut self, warmup_frac: f64) {
        assert!((0.0..1.0).contains(&warmup_frac), "bad warmup fraction {warmup_frac}");
        if warmup_frac > 0.0 {
            let delay = self.ready_at.since(self.requested_at);
            self.boot_done_at = self.requested_at + delay * (1.0 - warmup_frac);
        }
    }

    /// Advance the state machine to time `now`.
    pub fn poll(&mut self, now: SimTime) {
        if matches!(self.state, ClusterState::Provisioning | ClusterState::Warming)
            && now >= self.ready_at
        {
            self.state = ClusterState::Running;
        }
    }

    /// Terminate at `now`.
    ///
    /// Terminating a cluster that is still provisioning is allowed (the
    /// instances were launched, so they are billed from `requested_at`).
    pub fn terminate(&mut self, now: SimTime) {
        if self.state != ClusterState::Terminated {
            self.state = ClusterState::Terminated;
            self.terminated_at = Some(now);
        }
    }

    /// Provisioning latency this cluster experienced.
    pub fn provisioning_delay(&self) -> SimDuration {
        self.ready_at.since(self.requested_at)
    }
}

/// Handle to a cluster. Cheap to clone; state lives in the provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cluster {
    /// Identifier to present back to the provider.
    pub id: ClusterId,
    /// Instance type (cached for convenience).
    pub itype: InstanceType,
    /// Node count (cached for convenience).
    pub n: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn provisioning_grows_with_cluster_size() {
        let m = ProvisioningModel::default();
        let d1 = m.deterministic_delay(InstanceType::C5Xlarge, 1);
        let d4 = m.deterministic_delay(InstanceType::C5Xlarge, 4);
        let d10 = m.deterministic_delay(InstanceType::C5Xlarge, 10);
        assert!(d4 > d1);
        assert!(d10 > d4);
        // 1 node: base. 4 nodes: one extra group. 10 nodes: three groups.
        assert_eq!((d4 - d1).as_mins(), 1.0);
        assert_eq!((d10 - d1).as_mins(), 3.0);
    }

    #[test]
    fn gpu_setup_penalty() {
        let m = ProvisioningModel::default();
        let cpu = m.deterministic_delay(InstanceType::C5Xlarge, 1);
        let gpu = m.deterministic_delay(InstanceType::P2Xlarge, 1);
        assert_eq!((gpu - cpu).as_mins(), 1.0);
    }

    #[test]
    fn jitter_bounded_and_seedable() {
        let m = ProvisioningModel::default();
        let det = m.deterministic_delay(InstanceType::C5Xlarge, 5);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = m.sample_delay(InstanceType::C5Xlarge, 5, &mut rng);
            assert!(s >= det);
            assert!(s.as_secs() <= det.as_secs() * (1.0 + m.jitter));
        }
        // Same seed → same sample.
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(
            m.sample_delay(InstanceType::P2Xlarge, 3, &mut a),
            m.sample_delay(InstanceType::P2Xlarge, 3, &mut b)
        );
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = ProvisioningModel { jitter: 0.0, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(
            m.sample_delay(InstanceType::C5Xlarge, 2, &mut rng),
            m.deterministic_delay(InstanceType::C5Xlarge, 2)
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ProvisioningModel::default().deterministic_delay(InstanceType::C5Xlarge, 0);
    }

    #[test]
    fn lifecycle_transitions() {
        let t0 = SimTime::from_secs(0.0);
        let mut c = ClusterInner::new(
            ClusterId(1),
            InstanceType::C5Xlarge,
            2,
            t0,
            SimDuration::from_secs(120.0),
        );
        assert_eq!(c.state, ClusterState::Provisioning);
        c.poll(SimTime::from_secs(60.0));
        assert_eq!(c.state, ClusterState::Provisioning);
        c.poll(SimTime::from_secs(120.0));
        assert_eq!(c.state, ClusterState::Running);
        c.terminate(SimTime::from_secs(500.0));
        assert_eq!(c.state, ClusterState::Terminated);
        assert_eq!(c.terminated_at, Some(SimTime::from_secs(500.0)));
        // Re-terminating keeps the first timestamp.
        c.terminate(SimTime::from_secs(900.0));
        assert_eq!(c.terminated_at, Some(SimTime::from_secs(500.0)));
    }

    #[test]
    fn terminate_while_provisioning() {
        let t0 = SimTime::from_secs(0.0);
        let mut c = ClusterInner::new(
            ClusterId(2),
            InstanceType::P2Xlarge,
            1,
            t0,
            SimDuration::from_mins(3.0),
        );
        c.terminate(SimTime::from_secs(30.0));
        assert_eq!(c.state, ClusterState::Terminated);
        // poll after termination must not resurrect it.
        c.poll(SimTime::from_secs(600.0));
        assert_eq!(c.state, ClusterState::Terminated);
    }
}
