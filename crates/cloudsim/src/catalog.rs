//! The instance-type catalog.
//!
//! Specs and on-demand prices are the real us-east-1 values from the
//! 2019/2020 era the paper measured in. Prices matter most: the paper's
//! Fig 1a normalises every type to c5.xlarge and highlights that p2.8xlarge
//! is ≈42.5× more expensive — with these real prices, 7.20 / 0.17 ≈ 42.35.
//!
//! Hardware numbers (vCPUs, accelerators, peak FLOPS, network bandwidth)
//! feed the `mlcd-perfmodel` ground-truth throughput model. They are
//! published figures; effective utilisation per model architecture is
//! applied downstream, not here.

use serde::{Deserialize, Serialize};

/// Instance family, mirroring the paper's scale-up options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceFamily {
    /// Previous-generation compute-optimised (Haswell).
    C4,
    /// Compute-optimised (Skylake-SP / Cascade Lake, AVX-512).
    C5,
    /// Network-enhanced compute-optimised (up to 100 Gbps).
    C5n,
    /// GPU instances with NVIDIA K80.
    P2,
    /// GPU instances with NVIDIA V100.
    P3,
}

impl InstanceFamily {
    /// All families in the catalog.
    pub const ALL: [InstanceFamily; 5] = [
        InstanceFamily::C4,
        InstanceFamily::C5,
        InstanceFamily::C5n,
        InstanceFamily::P2,
        InstanceFamily::P3,
    ];

    /// Whether this family carries GPU accelerators.
    pub fn has_gpu(&self) -> bool {
        matches!(self, InstanceFamily::P2 | InstanceFamily::P3)
    }
}

/// GPU accelerator model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Accelerator {
    /// NVIDIA Tesla K80 (as counted by AWS: one GK210 die ≈ 4.37/2 ≈ 2.2,
    /// but AWS lists the full K80 board per "GPU" on p2 — we use the
    /// published 4.1 TFLOPS fp32 figure per listed GPU).
    K80,
    /// NVIDIA Tesla V100 (15.7 TFLOPS fp32).
    V100,
}

impl Accelerator {
    /// Peak single-precision throughput per accelerator, in GFLOPS.
    pub fn peak_gflops(&self) -> f64 {
        match self {
            Accelerator::K80 => 4_100.0,
            Accelerator::V100 => 15_700.0,
        }
    }

    /// Device memory per accelerator in GiB.
    pub fn memory_gib(&self) -> f64 {
        match self {
            Accelerator::K80 => 12.0,
            Accelerator::V100 => 16.0,
        }
    }
}

/// One concrete EC2 instance type in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the AWS type names
pub enum InstanceType {
    C4Large,
    C4Xlarge,
    C42xlarge,
    C44xlarge,
    C48xlarge,
    C5Large,
    C5Xlarge,
    C52xlarge,
    C54xlarge,
    C59xlarge,
    C5nLarge,
    C5nXlarge,
    C5n2xlarge,
    C5n4xlarge,
    C5n9xlarge,
    P2Xlarge,
    P28xlarge,
    P32xlarge,
    P38xlarge,
}

/// Full specification of an instance type.
///
/// Serialisable (for experiment dumps) but not deserialisable: the
/// authoritative copy is the compiled-in [`CATALOG`] and `name` borrows
/// from it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct InstanceSpec {
    /// Which catalog entry this is.
    pub itype: InstanceType,
    /// Family.
    pub family: InstanceFamily,
    /// AWS API name, e.g. `"c5.xlarge"`.
    pub name: &'static str,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Host memory in GiB.
    pub memory_gib: f64,
    /// GPU accelerators on the instance (type, count); `None` for CPU-only.
    pub accelerators: Option<(Accelerator, u32)>,
    /// Sustained network bandwidth in Gbit/s (the baseline figure, not the
    /// "up to" burst figure, since distributed training saturates links).
    pub network_gbps: f64,
    /// On-demand hourly price in us-east-1, USD.
    pub hourly_usd: f64,
    /// Aggregate peak CPU single-precision throughput in GFLOPS.
    pub cpu_peak_gflops: f64,
}

impl InstanceSpec {
    /// Aggregate peak GPU throughput in GFLOPS (0 for CPU instances).
    pub fn gpu_peak_gflops(&self) -> f64 {
        self.accelerators.map_or(0.0, |(a, n)| a.peak_gflops() * n as f64)
    }

    /// Whether the instance carries GPUs.
    pub fn has_gpu(&self) -> bool {
        self.accelerators.is_some()
    }

    /// Price per second, USD.
    pub fn per_second_usd(&self) -> f64 {
        self.hourly_usd / 3600.0
    }
}

/// Effective CPU GFLOPS per vCPU used for the aggregate figure: AVX2-era
/// c4 sustains less per cycle than AVX-512-era c5/c5n.
const C4_GFLOPS_PER_VCPU: f64 = 16.0;
const C5_GFLOPS_PER_VCPU: f64 = 26.0;
/// GPU-instance host CPUs (Broadwell) — relevant when a model runs its
/// input pipeline on the host.
const P_GFLOPS_PER_VCPU: f64 = 14.0;

macro_rules! spec {
    ($itype:ident, $family:ident, $name:expr, $vcpus:expr, $mem:expr,
     $accel:expr, $net:expr, $price:expr, $cpu_per_vcpu:expr) => {
        InstanceSpec {
            itype: InstanceType::$itype,
            family: InstanceFamily::$family,
            name: $name,
            vcpus: $vcpus,
            memory_gib: $mem,
            accelerators: $accel,
            network_gbps: $net,
            hourly_usd: $price,
            cpu_peak_gflops: $vcpus as f64 * $cpu_per_vcpu,
        }
    };
}

/// The full catalog. Order is stable and used for display.
pub const CATALOG: [InstanceSpec; 19] = [
    spec!(C4Large, C4, "c4.large", 2, 3.75, None, 0.62, 0.100, C4_GFLOPS_PER_VCPU),
    spec!(C4Xlarge, C4, "c4.xlarge", 4, 7.5, None, 0.75, 0.199, C4_GFLOPS_PER_VCPU),
    spec!(C42xlarge, C4, "c4.2xlarge", 8, 15.0, None, 1.0, 0.398, C4_GFLOPS_PER_VCPU),
    spec!(C44xlarge, C4, "c4.4xlarge", 16, 30.0, None, 2.0, 0.796, C4_GFLOPS_PER_VCPU),
    spec!(C48xlarge, C4, "c4.8xlarge", 36, 60.0, None, 10.0, 1.591, C4_GFLOPS_PER_VCPU),
    spec!(C5Large, C5, "c5.large", 2, 4.0, None, 0.75, 0.085, C5_GFLOPS_PER_VCPU),
    spec!(C5Xlarge, C5, "c5.xlarge", 4, 8.0, None, 1.25, 0.170, C5_GFLOPS_PER_VCPU),
    spec!(C52xlarge, C5, "c5.2xlarge", 8, 16.0, None, 2.5, 0.340, C5_GFLOPS_PER_VCPU),
    spec!(C54xlarge, C5, "c5.4xlarge", 16, 32.0, None, 5.0, 0.680, C5_GFLOPS_PER_VCPU),
    spec!(C59xlarge, C5, "c5.9xlarge", 36, 72.0, None, 10.0, 1.530, C5_GFLOPS_PER_VCPU),
    spec!(C5nLarge, C5n, "c5n.large", 2, 5.25, None, 3.0, 0.108, C5_GFLOPS_PER_VCPU),
    spec!(C5nXlarge, C5n, "c5n.xlarge", 4, 10.5, None, 5.0, 0.216, C5_GFLOPS_PER_VCPU),
    spec!(C5n2xlarge, C5n, "c5n.2xlarge", 8, 21.0, None, 10.0, 0.432, C5_GFLOPS_PER_VCPU),
    spec!(C5n4xlarge, C5n, "c5n.4xlarge", 16, 42.0, None, 15.0, 0.864, C5_GFLOPS_PER_VCPU),
    spec!(C5n9xlarge, C5n, "c5n.9xlarge", 36, 96.0, None, 50.0, 1.944, C5_GFLOPS_PER_VCPU),
    spec!(
        P2Xlarge,
        P2,
        "p2.xlarge",
        4,
        61.0,
        Some((Accelerator::K80, 1)),
        1.25,
        0.900,
        P_GFLOPS_PER_VCPU
    ),
    spec!(
        P28xlarge,
        P2,
        "p2.8xlarge",
        32,
        488.0,
        Some((Accelerator::K80, 8)),
        10.0,
        7.200,
        P_GFLOPS_PER_VCPU
    ),
    spec!(
        P32xlarge,
        P3,
        "p3.2xlarge",
        8,
        61.0,
        Some((Accelerator::V100, 1)),
        2.5,
        3.060,
        P_GFLOPS_PER_VCPU
    ),
    spec!(
        P38xlarge,
        P3,
        "p3.8xlarge",
        32,
        244.0,
        Some((Accelerator::V100, 4)),
        10.0,
        12.240,
        P_GFLOPS_PER_VCPU
    ),
];

impl InstanceType {
    /// Every type in the catalog, in catalog order.
    pub fn all() -> impl Iterator<Item = InstanceType> {
        CATALOG.iter().map(|s| s.itype)
    }

    /// The full spec for this type.
    pub fn spec(&self) -> &'static InstanceSpec {
        CATALOG.iter().find(|s| s.itype == *self).expect("every InstanceType has a catalog entry")
    }

    /// AWS API name, e.g. `"c5n.4xlarge"`.
    pub fn name(&self) -> &'static str {
        self.spec().name
    }

    /// Family.
    pub fn family(&self) -> InstanceFamily {
        self.spec().family
    }

    /// Hourly on-demand price, USD.
    pub fn hourly_usd(&self) -> f64 {
        self.spec().hourly_usd
    }

    /// Look up a type by its AWS API name.
    pub fn from_name(name: &str) -> Option<InstanceType> {
        CATALOG.iter().find(|s| s.name == name).map(|s| s.itype)
    }

    /// Hourly price normalised to c5.xlarge = 1 (the paper's Fig 1a axis).
    pub fn normalized_cost(&self) -> f64 {
        self.hourly_usd() / InstanceType::C5Xlarge.hourly_usd()
    }
}

impl std::fmt::Display for InstanceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_has_a_spec_and_roundtrips_by_name() {
        for t in InstanceType::all() {
            let s = t.spec();
            assert_eq!(s.itype, t);
            assert_eq!(InstanceType::from_name(s.name), Some(t));
        }
        assert_eq!(InstanceType::from_name("m5.24xlarge"), None);
    }

    #[test]
    fn paper_fig1a_price_ratio() {
        // Fig 1a: "the most costly GPU instance (p2.8xlarge) 42.5× more
        // expensive than CPU instance c5.xlarge".
        let ratio = InstanceType::P28xlarge.normalized_cost();
        assert!((ratio - 42.35).abs() < 0.5, "p2.8xlarge / c5.xlarge = {ratio}");
        assert_eq!(InstanceType::C5Xlarge.normalized_cost(), 1.0);
    }

    #[test]
    fn prices_scale_with_size_within_family() {
        // Within a family, doubling size roughly doubles price.
        let pairs = [
            (InstanceType::C5Xlarge, InstanceType::C52xlarge),
            (InstanceType::C5nXlarge, InstanceType::C5n2xlarge),
            (InstanceType::C4Xlarge, InstanceType::C42xlarge),
        ];
        for (small, big) in pairs {
            let r = big.hourly_usd() / small.hourly_usd();
            assert!((r - 2.0).abs() < 0.05, "{small} → {big}: ratio {r}");
        }
    }

    #[test]
    fn gpu_flags_consistent() {
        for t in InstanceType::all() {
            let s = t.spec();
            assert_eq!(s.has_gpu(), s.family.has_gpu(), "{t}");
            if s.has_gpu() {
                assert!(s.gpu_peak_gflops() > 0.0);
            } else {
                assert_eq!(s.gpu_peak_gflops(), 0.0);
            }
        }
    }

    #[test]
    fn gpu_peak_aggregates_count() {
        let p28 = InstanceType::P28xlarge.spec();
        let p2 = InstanceType::P2Xlarge.spec();
        assert!((p28.gpu_peak_gflops() / p2.gpu_peak_gflops() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn c5n_has_more_network_for_more_money() {
        // The c5n family's reason to exist: bandwidth.
        let c5 = InstanceType::C54xlarge.spec();
        let c5n = InstanceType::C5n4xlarge.spec();
        assert!(c5n.network_gbps > c5.network_gbps);
        assert!(c5n.hourly_usd > c5.hourly_usd);
    }

    #[test]
    fn per_second_price() {
        let s = InstanceType::C5Xlarge.spec();
        assert!((s.per_second_usd() * 3600.0 - s.hourly_usd).abs() < 1e-12);
    }

    #[test]
    fn sane_spec_values() {
        for s in &CATALOG {
            assert!(s.vcpus >= 2, "{}", s.name);
            assert!(s.memory_gib > 0.0);
            assert!(s.network_gbps > 0.0);
            assert!(s.hourly_usd > 0.0);
            assert!(s.cpu_peak_gflops > 0.0);
        }
    }

    #[test]
    fn serde_type_round_trip_and_spec_serialises() {
        let t = InstanceType::P32xlarge;
        let json = serde_json::to_string(&t).unwrap();
        let back: InstanceType = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        // The spec is dumpable for experiment records.
        let spec_json = serde_json::to_string(t.spec()).unwrap();
        assert!(spec_json.contains("p3.2xlarge"));
    }
}
