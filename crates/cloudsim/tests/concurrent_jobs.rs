//! Multi-tenant integration: several concurrent jobs driving one
//! `SimCloud` — one virtual clock, one capacity ledger, one bill.
//!
//! This is the engine-level capability the deployment-planning service
//! leans on: many sessions share a provider, so provisioning, revocation
//! and settlement must all flow through the shared event queue rather
//! than per-job bookkeeping.

use mlcd_cloudsim::catalog::InstanceType;
use mlcd_cloudsim::cluster::{ClusterState, ProvisioningModel};
use mlcd_cloudsim::provider::{CloudError, SimCloud};
use mlcd_cloudsim::sim::EventKind;
use mlcd_cloudsim::time::{SimDuration, SimTime};

#[test]
fn two_jobs_share_clock_capacity_and_bill() {
    let cloud =
        SimCloud::with_provisioning(99, ProvisioningModel { jitter: 0.0, ..Default::default() });
    cloud.set_capacity(InstanceType::C5Xlarge, 10);
    let job_a = cloud.clone();
    let job_b = cloud.clone();

    // Job A grabs most of the pool; job B's equal ask must bounce with the
    // true availability in the error.
    let a = job_a.launch(InstanceType::C5Xlarge, 7).unwrap();
    match job_b.launch(InstanceType::C5Xlarge, 7) {
        Err(CloudError::CapacityExhausted { requested: 7, available: 3, .. }) => {}
        other => panic!("expected CapacityExhausted, got {other:?}"),
    }
    let b = job_b.launch(InstanceType::C5Xlarge, 3).unwrap();

    // One clock: waiting on A's cluster moves B's view of time too.
    job_a.wait_until_running(&a);
    assert_eq!(job_a.now().as_secs().to_bits(), job_b.now().as_secs().to_bits());
    job_b.wait_until_running(&b);
    assert_eq!(job_b.cluster_state(&b).unwrap(), ClusterState::Running);

    // Both run concurrently over the same span; each settles its own end.
    let t0 = cloud.now();
    cloud.run_until(t0 + SimDuration::from_hours(2.0));
    job_a.terminate_at(&a, t0 + SimDuration::from_hours(1.0));
    job_b.terminate_at(&b, t0 + SimDuration::from_hours(2.0));

    // Termination released capacity back to the shared pool (via events).
    assert_eq!(cloud.capacity_available(InstanceType::C5Xlarge), Some(10));

    // The shared bill splits per job through cluster attribution, and the
    // per-job costs sum to the total.
    let bill = cloud.billing();
    let (ca, cb) = (bill.cost_for_cluster(a.id), bill.cost_for_cluster(b.id));
    let rate = InstanceType::C5Xlarge.hourly_usd();
    let setup_h = job_a.provisioning_delay(&a).unwrap().as_hours();
    assert!((ca.dollars() - rate * 7.0 * (1.0 + setup_h)).abs() < 1e-9);
    assert!((cb.dollars() - rate * 3.0 * (2.0 + setup_h)).abs() < 1e-9);
    assert_eq!((ca + cb).dollars().to_bits(), bill.total_cost().dollars().to_bits());
}

#[test]
fn spot_revocation_arrives_as_a_queued_event_other_tenants_observe() {
    // Find a seed where the big spot cluster is revoked within the window.
    for seed in 0..50u64 {
        let cloud = SimCloud::new(seed);
        let job_a = cloud.clone();
        let job_b = cloud.clone();
        let spot = job_a.launch_spot(InstanceType::C5Xlarge, 32).unwrap();
        let horizon = SimTime::from_secs(0.0) + SimDuration::from_hours(20.0);
        let Some(revoke_at) = job_a.revocation_before(&spot, horizon) else { continue };

        // Job B never touches the spot cluster: it just advances the
        // shared clock past the revocation instant. The revocation is a
        // queued event, so B's run delivers it.
        let od = job_b.launch(InstanceType::C5Xlarge, 1).unwrap();
        job_b.wait_until_running(&od);
        cloud.record_events(true);
        job_b.run_for(&od, SimDuration::from_hours(20.0)).unwrap();

        let log = cloud.take_event_log();
        let revocation = log
            .iter()
            .find(|r| r.event.kind() == EventKind::SpotRevoked)
            .expect("revocation dispatched during another tenant's run");
        assert_eq!(revocation.at.as_secs().to_bits(), revoke_at.as_secs().to_bits());
        // Settlement followed at the same instant, through the queue.
        assert!(log.iter().any(|r| {
            r.event.kind() == EventKind::ClusterTerminated
                && r.at.as_secs().to_bits() == revoke_at.as_secs().to_bits()
        }));

        // The revoked cluster is terminated and billed exactly to the
        // revocation instant, even though job A never polled it.
        assert_eq!(job_a.cluster_state(&spot).unwrap(), ClusterState::Terminated);
        let spot_cost = cloud.billing().cost_for_cluster(spot.id);
        assert!(spot_cost.dollars() > 0.0);
        // And job A's next interaction reports the revocation.
        match job_a.run_for(&spot, SimDuration::from_mins(1.0)) {
            Err(CloudError::SpotRevoked { at, .. }) => {
                assert_eq!(at.as_secs().to_bits(), revoke_at.as_secs().to_bits());
            }
            other => panic!("expected SpotRevoked, got {other:?}"),
        }
        return;
    }
    panic!("no revocation in 50 seeds for a 32-node 20-hour spot hold");
}

#[test]
fn three_jobs_interleaved_stepping_is_deterministic() {
    let run = || {
        let cloud = SimCloud::with_provisioning(
            5,
            ProvisioningModel { jitter: 0.05, ..Default::default() },
        );
        cloud.set_capacity(InstanceType::P2Xlarge, 6);
        let jobs: Vec<SimCloud> = (0..3).map(|_| cloud.clone()).collect();
        let mut handles = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            handles.push(job.launch(InstanceType::P2Xlarge, i as u32 + 1).unwrap());
        }
        // Drain everything one event at a time from alternating tenants.
        let mut i = 0;
        while jobs[i % 3].step().is_some() {
            i += 1;
        }
        for (job, h) in jobs.iter().zip(&handles) {
            job.terminate(h);
        }
        (
            cloud.now().as_secs().to_bits(),
            cloud.billing().total_cost().dollars().to_bits(),
            cloud.event_counters(),
        )
    };
    assert_eq!(run(), run());
}
