//! Property-based determinism tests for the discrete-event engine.
//!
//! Two pillars of the rewrite are pinned here:
//!
//! 1. **Replay determinism** — scheduling the same events (including
//!    equal-timestamp collisions and interleaved cancellations) into two
//!    engines drains bit-identically, and equal-time events fire in
//!    schedule order.
//! 2. **Step ≡ run** — driving a full provider scenario one event at a
//!    time with [`SimCloud::step`] produces bit-identical billing,
//!    metrics and counters to a single [`SimCloud::run_until`] call.

use mlcd_cloudsim::catalog::InstanceType;
use mlcd_cloudsim::cluster::ProvisioningModel;
use mlcd_cloudsim::provider::SimCloud;
use mlcd_cloudsim::sim::{EventRecord, SimEngine, SimEvent};
use mlcd_cloudsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// A small palette of instance types to launch in scenarios.
const TYPES: [InstanceType; 4] = [
    InstanceType::C5Xlarge,
    InstanceType::C54xlarge,
    InstanceType::P2Xlarge,
    InstanceType::P32xlarge,
];

/// One scheduling action for the engine-level replay test: an event at a
/// coarse time bucket (forcing plenty of equal-timestamp collisions), or
/// a cancellation of the `k`-th still-pending event.
#[derive(Debug, Clone, Copy)]
enum Action {
    Schedule { bucket: u8, kind_idx: u8 },
    Cancel { nth: u8 },
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        (0u8..2, 0u8..4, 0u8..8).prop_map(|(op, bucket, idx)| {
            if op == 0 {
                Action::Schedule { bucket, kind_idx: idx }
            } else {
                Action::Cancel { nth: idx }
            }
        }),
        1..40,
    )
}

/// Build an engine, apply the action list, and drain it fully, returning
/// the dispatched records.
fn replay(actions: &[Action]) -> Vec<EventRecord> {
    let mut engine = SimEngine::new();
    let mut ids = Vec::new();
    for a in actions {
        match *a {
            Action::Schedule { bucket, kind_idx } => {
                // A tiny event vocabulary is enough: the queue orders on
                // (time, seq), not payload.
                let event = if kind_idx % 2 == 0 {
                    SimEvent::MetricTick { period: SimDuration::from_secs(60.0) }
                } else {
                    SimEvent::CapacityChanged {
                        itype: InstanceType::C5Xlarge,
                        available: u32::from(kind_idx),
                    }
                };
                ids.push(engine.schedule(SimTime::from_secs(f64::from(bucket) * 10.0), event));
            }
            Action::Cancel { nth } => {
                if !ids.is_empty() {
                    let id = ids[usize::from(nth) % ids.len()];
                    engine.cancel(id);
                }
            }
        }
    }
    let mut out = Vec::new();
    while let Some(rec) = engine.pop_next() {
        out.push(rec);
    }
    out
}

/// A provider scenario: launch a handful of clusters (some spot), watch
/// prices, then run to a horizon and settle everything.
#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    clusters: Vec<(u8, u32, bool)>, // (type index, n, spot?)
    horizon_mins: u32,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        0u64..1000,
        proptest::collection::vec(
            (0u8..4, 1u32..6, 0u8..2).prop_map(|(t, n, s)| (t, n, s == 1)),
            1..5,
        ),
        30u32..240,
    )
        .prop_map(|(seed, clusters, horizon_mins)| Scenario { seed, clusters, horizon_mins })
}

/// Run a scenario on a fresh provider. When `stepwise` is true the horizon
/// is reached by single-stepping the engine; otherwise by one `run_until`.
fn run_scenario(s: &Scenario, stepwise: bool) -> SimCloud {
    let cloud = SimCloud::with_provisioning(s.seed, ProvisioningModel::default());
    cloud.watch_spot_prices(&[InstanceType::C5Xlarge], SimDuration::from_mins(7.0));
    let mut handles = Vec::new();
    for &(t, n, spot) in &s.clusters {
        let itype = TYPES[usize::from(t) % TYPES.len()];
        let c = if spot { cloud.launch_spot(itype, n) } else { cloud.launch(itype, n) };
        handles.push(c.expect("launch within quota"));
    }
    let horizon = SimTime::from_secs(f64::from(s.horizon_mins) * 60.0);
    if stepwise {
        while cloud.next_event_time().is_some_and(|t| t <= horizon) {
            cloud.step();
        }
        // Land exactly on the horizon (no events left inside it).
        cloud.run_until(horizon);
    } else {
        cloud.run_until(horizon);
    }
    for h in &handles {
        cloud.terminate(h);
    }
    cloud
}

/// Bit-pattern digest of a float sequence (NaN-proof, ulp-exact).
fn bits(vals: impl IntoIterator<Item = f64>) -> Vec<u64> {
    vals.into_iter().map(f64::to_bits).collect()
}

proptest! {
    #[test]
    fn equal_timestamp_drain_is_replay_deterministic(actions in actions()) {
        let a = replay(&actions);
        let b = replay(&actions);
        prop_assert_eq!(&a, &b);
        // Time never goes backwards, and equal-time events keep schedule
        // (seq) order — the FIFO tie-break the digests depend on.
        for w in a.windows(2) {
            prop_assert!(w[1].at.as_secs() >= w[0].at.as_secs());
            if w[1].at.as_secs() == w[0].at.as_secs() {
                prop_assert!(w[1].seq > w[0].seq, "FIFO violated at t={}", w[0].at.as_secs());
            }
        }
    }

    #[test]
    fn stepping_matches_run_until_bit_exactly(s in scenarios()) {
        let stepped = run_scenario(&s, true);
        let ran = run_scenario(&s, false);

        // Same virtual end time.
        prop_assert_eq!(stepped.now().as_secs().to_bits(), ran.now().as_secs().to_bits());

        // Billing ledgers agree record-for-record, bit-for-bit.
        let (ra, rb) = (stepped.billing().records(), ran.billing().records());
        prop_assert_eq!(&ra, &rb);
        prop_assert_eq!(
            stepped.billing().total_cost().dollars().to_bits(),
            ran.billing().total_cost().dollars().to_bits()
        );

        // Metric stores agree series-for-series, bit-for-bit.
        prop_assert_eq!(stepped.metrics().metric_names(), ran.metrics().metric_names());
        for name in stepped.metrics().metric_names() {
            let sa = stepped.metrics().series(&name);
            let sb = ran.metrics().series(&name);
            prop_assert_eq!(bits(sa.iter().map(|(t, _)| t.as_secs())),
                            bits(sb.iter().map(|(t, _)| t.as_secs())), "times of {}", name);
            prop_assert_eq!(bits(sa.iter().map(|(_, v)| *v)),
                            bits(sb.iter().map(|(_, v)| *v)), "values of {}", name);
        }

        // Engine accounting agrees too.
        prop_assert_eq!(stepped.event_counters(), ran.event_counters());
        prop_assert_eq!(stepped.pending_events(), ran.pending_events());
    }
}
