#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! **MLCD** — the fully automated MLaaS training Cloud Deployment system,
//! driven by the **HeterBO** search method.
//!
//! This crate is the paper's primary contribution, reimplemented in full:
//!
//! * [`deployment`] — deployments `D(m, n)` and the search space (the
//!   paper's 62 scale-up × 50 scale-out grid, here over the catalog in
//!   `mlcd-cloudsim`).
//! * [`scenario`] — the three user scenarios from §III-A: fastest with
//!   unlimited budget, cheapest before a deadline, fastest within a budget.
//! * [`observation`] — profiling observations and search traces.
//! * [`acquisition`] — EI / UCB / POI and the paper's constraint-aware TEI
//!   with heterogeneous profiling-cost penalties (§III-C).
//! * [`env`](mod@crate::env) — the [`env::ProfilingEnv`] abstraction searchers probe
//!   through; production impl is the MLCD Profiler, tests use synthetic
//!   functions.
//! * [`search`] — the policy-driven [`search::SearchKernel`] and the
//!   searchers composed from it: [`search::HeterBo`] (the contribution),
//!   [`search::ConvBo`], [`search::CherryPick`], their budget-aware
//!   "improved" variants from Fig 18, [`search::RandomSearch`], and
//!   [`search::ExhaustiveSearch`] — plus the structured
//!   [`search::SearchTrace`] every kernel run can narrate.
//! * [`system`] — MLCD itself (Fig 8): Profiler, Scenario Analyzer,
//!   HeterBO Deployment Engine, Cloud Interface, ML Platform Interface.
//! * [`experiment`] — the harness that runs a searcher end-to-end
//!   (profile → pick → train) and reports the profiling/training
//!   time-and-cost breakdowns every figure plots.
//! * [`eval`] — searcher × scenario × seed sweeps over that harness,
//!   fanned out across threads with per-cell seeding, aggregated into
//!   summary tables (what the multi-seed figures and examples run on).
//!
//! # Quickstart
//!
//! ```
//! use mlcd::prelude::*;
//!
//! // "Train ResNet on CIFAR-10; I have $100; go as fast as possible."
//! let job = TrainingJob::resnet_cifar10();
//! let scenario = Scenario::FastestWithBudget(Money::from_dollars(100.0));
//! let outcome = ExperimentRunner::new(42).run(&HeterBo::default(), &job, &scenario);
//! let plan = outcome.plan.expect("found a deployment");
//! assert!(outcome.total_cost.dollars() <= 100.0);
//! assert!(plan.deployment.n >= 1);
//! ```

pub mod acquisition;
pub mod deployment;
pub mod env;
pub mod eval;
pub mod experiment;
pub mod observation;
pub mod scenario;
pub mod search;
pub mod system;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::acquisition::{expected_improvement, prob_improvement, ucb};
    pub use crate::deployment::{Deployment, SearchSpace};
    pub use crate::env::{ProfileError, ProfilingEnv};
    pub use crate::eval::{EvalCell, EvalGrid, EvalReport, EvalSummary};
    pub use crate::experiment::{ExperimentOutcome, ExperimentRunner, Optimum};
    pub use crate::observation::{Observation, SearchOutcome, SearchStep, StopReason};
    pub use crate::scenario::Scenario;
    pub use crate::search::{
        BoConfig, CherryPick, ConvBo, ExhaustiveSearch, HeterBo, NullSink, RandomSearch,
        SearchTrace, Searcher, TraceEvent, TraceSink,
    };
    pub use crate::system::{DeploymentEngine, DeploymentPlan, Profiler, ScenarioAnalyzer};
    pub use mlcd_cloudsim::{InstanceType, Money, SimDuration, SimTime};
    pub use mlcd_perfmodel::{Platform, ThroughputModel, TrainingJob};
}
