//! Deployments `D(m, n)` and the search space.
//!
//! The paper formulates deployment as a pair of instance type `m`
//! (scale-up) and node count `n` (scale-out), with "62 scale-up options and
//! a rule of thumb for scale-out \[of\] 50, so there are in total 3,100
//! deployment schemes". Our catalog has 19 types; experiments restrict the
//! type set exactly as the paper's figures do (e.g. Fig 15 searches
//! {c5.xlarge, c5.4xlarge, p2.xlarge} × n ≤ 50).

use mlcd_cloudsim::{InstanceType, Money, SimDuration};
use mlcd_perfmodel::{ThroughputModel, TrainingJob};
use serde::{Deserialize, Serialize};

/// One deployment scheme: `n` nodes of instance type `itype`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Deployment {
    /// Instance type (scale-up dimension).
    pub itype: InstanceType,
    /// Node count (scale-out dimension).
    pub n: u32,
}

impl Deployment {
    /// Construct, requiring at least one node.
    pub fn new(itype: InstanceType, n: u32) -> Self {
        assert!(n >= 1, "Deployment: need at least one node");
        Deployment { itype, n }
    }

    /// Cluster hourly price: n × per-instance price.
    pub fn hourly_cost(&self) -> Money {
        Money::from_dollars(self.itype.hourly_usd() * self.n as f64)
    }

    /// Cost of running this deployment for a duration.
    pub fn cost_for(&self, d: SimDuration) -> Money {
        self.hourly_cost().scale(d.as_hours())
    }
}

impl std::fmt::Display for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}×{}", self.n, self.itype)
    }
}

/// The set of candidate deployments for one search, plus the feature map
/// the GP works in.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    types: Vec<InstanceType>,
    max_nodes: u32,
    candidates: Vec<Deployment>,
}

impl SearchSpace {
    /// Build a search space over `types` × `1..=max_nodes`, keeping only
    /// deployments that can run `job` at all (memory and batch
    /// feasibility checked against the ground-truth rules — in the real
    /// system the user knows their model's footprint).
    pub fn new(
        types: &[InstanceType],
        max_nodes: u32,
        job: &TrainingJob,
        truth: &ThroughputModel,
    ) -> Self {
        assert!(!types.is_empty(), "SearchSpace: need at least one instance type");
        assert!(max_nodes >= 1, "SearchSpace: need at least one node");
        let mut candidates = Vec::new();
        for &t in types {
            for n in 1..=max_nodes {
                if truth.feasible(job, t, n).is_ok() {
                    candidates.push(Deployment::new(t, n));
                }
            }
        }
        SearchSpace { types: types.to_vec(), max_nodes, candidates }
    }

    /// The paper's full space: every catalog type, up to 50 nodes.
    pub fn full(job: &TrainingJob, truth: &ThroughputModel) -> Self {
        let types: Vec<InstanceType> = InstanceType::all().collect();
        Self::new(&types, 50, job, truth)
    }

    /// Instance types in this space.
    pub fn types(&self) -> &[InstanceType] {
        &self.types
    }

    /// Maximum node count.
    pub fn max_nodes(&self) -> u32 {
        self.max_nodes
    }

    /// All feasible candidate deployments.
    pub fn candidates(&self) -> &[Deployment] {
        &self.candidates
    }

    /// Whether a deployment is in this space.
    pub fn contains(&self, d: &Deployment) -> bool {
        self.candidates.contains(d)
    }

    /// GP feature vector for a deployment. Dimensions:
    /// `[log10 hourly price, log10 cpu GFLOPS, log10 (gpu GFLOPS + 1),
    ///   log10 network Gbps, n]`.
    ///
    /// Resource features (as in CherryPick/PARIS) let the GP share
    /// information across instance types instead of treating them as
    /// unrelated categories.
    pub fn features(&self, d: &Deployment) -> Vec<f64> {
        let mut out = vec![0.0; Self::FEATURE_DIM];
        self.features_into(d, &mut out);
        out
    }

    /// Dimensionality of [`features`](Self::features) vectors.
    pub const FEATURE_DIM: usize = 5;

    /// [`features`](Self::features) into a caller-owned slice — same values,
    /// no allocation, for hot loops that stage candidate features into a
    /// reusable buffer.
    ///
    /// # Panics
    /// Panics when `out.len() != FEATURE_DIM`.
    pub fn features_into(&self, d: &Deployment, out: &mut [f64]) {
        assert_eq!(out.len(), Self::FEATURE_DIM, "features_into: dim mismatch");
        let s = d.itype.spec();
        out[0] = s.hourly_usd.log10();
        out[1] = s.cpu_peak_gflops.log10();
        out[2] = (s.gpu_peak_gflops() + 1.0).log10();
        out[3] = s.network_gbps.log10();
        out[4] = d.n as f64;
    }

    /// Feature-space bounds for input scaling, derived from the candidates.
    pub fn feature_bounds(&self) -> Vec<(f64, f64)> {
        let mut bounds = vec![(f64::INFINITY, f64::NEG_INFINITY); Self::FEATURE_DIM];
        for d in &self.candidates {
            for (b, v) in bounds.iter_mut().zip(self.features(d)) {
                b.0 = b.0.min(v);
                b.1 = b.1.max(v);
            }
        }
        bounds
    }

    /// Restrict to a subset of types (CherryPick's "experience" trimming).
    pub fn restricted_to(&self, types: &[InstanceType]) -> SearchSpace {
        let kept: Vec<Deployment> =
            self.candidates.iter().filter(|d| types.contains(&d.itype)).copied().collect();
        assert!(!kept.is_empty(), "restricted_to: no candidates left");
        SearchSpace { types: types.to_vec(), max_nodes: self.max_nodes, candidates: kept }
    }

    /// Coarsen the scale-out grid to the given node counts (CherryPick
    /// samples a coarse grid rather than every n).
    pub fn coarsened(&self, node_grid: &[u32]) -> SearchSpace {
        let kept: Vec<Deployment> =
            self.candidates.iter().filter(|d| node_grid.contains(&d.n)).copied().collect();
        assert!(!kept.is_empty(), "coarsened: no candidates left");
        SearchSpace { types: self.types.clone(), max_nodes: self.max_nodes, candidates: kept }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd_perfmodel::TrainingJob;

    fn space() -> SearchSpace {
        let job = TrainingJob::resnet_cifar10();
        SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
            50,
            &job,
            &ThroughputModel::default(),
        )
    }

    #[test]
    fn full_space_size_is_paperlike() {
        let job = TrainingJob::resnet_cifar10();
        let s = SearchSpace::full(&job, &ThroughputModel::default());
        // 19 types × 50 nodes, minus infeasible points — on the order of
        // the paper's 3,100-point space.
        assert!(s.candidates().len() > 700, "space too small: {}", s.candidates().len());
        assert!(s.candidates().len() <= 19 * 50);
    }

    #[test]
    fn deployment_costs() {
        let d = Deployment::new(InstanceType::C5Xlarge, 10);
        assert!((d.hourly_cost().dollars() - 1.7).abs() < 1e-12);
        assert!((d.cost_for(SimDuration::from_hours(2.0)).dollars() - 3.4).abs() < 1e-12);
        assert_eq!(d.to_string(), "10×c5.xlarge");
    }

    #[test]
    fn contains_and_candidates() {
        let s = space();
        assert!(s.contains(&Deployment::new(InstanceType::C5Xlarge, 25)));
        assert!(!s.contains(&Deployment::new(InstanceType::C5nXlarge, 2)));
        assert_eq!(s.candidates().len(), 150);
    }

    #[test]
    fn features_distinguish_types_and_sizes() {
        let s = space();
        let a = s.features(&Deployment::new(InstanceType::C5Xlarge, 4));
        let b = s.features(&Deployment::new(InstanceType::P2Xlarge, 4));
        let c = s.features(&Deployment::new(InstanceType::C5Xlarge, 5));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn feature_bounds_cover_candidates() {
        let s = space();
        let bounds = s.feature_bounds();
        for d in s.candidates() {
            for (v, (lo, hi)) in s.features(d).iter().zip(&bounds) {
                assert!(v >= lo && v <= hi);
            }
        }
    }

    #[test]
    fn restriction_and_coarsening() {
        let s = space();
        let r = s.restricted_to(&[InstanceType::C54xlarge]);
        assert!(r.candidates().iter().all(|d| d.itype == InstanceType::C54xlarge));
        assert_eq!(r.candidates().len(), 50);
        let c = s.coarsened(&[1, 8, 32]);
        assert_eq!(c.candidates().len(), 9);
        assert!(c.candidates().iter().all(|d| [1, 8, 32].contains(&d.n)));
    }

    #[test]
    fn infeasible_deployments_excluded() {
        // ZeRO-20B on p3.8xlarge needs ≥5 nodes for memory.
        use mlcd_perfmodel::{CommTopology, DatasetSpec, ModelSpec, Platform};
        let job = TrainingJob {
            model: ModelSpec::zero_20b(),
            dataset: DatasetSpec::bert_corpus(),
            epochs: 1,
            global_batch: 2048,
            platform: Platform::PyTorch,
            topology: CommTopology::RingAllReduce,
            grad_keep_frac: 1.0,
            scaling: mlcd_perfmodel::ScalingMode::Strong,
        };
        let s = SearchSpace::new(&[InstanceType::P38xlarge], 20, &job, &ThroughputModel::default());
        assert!(s.candidates().iter().all(|d| d.n >= 5));
        assert!(!s.candidates().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_deployment_rejected() {
        let _ = Deployment::new(InstanceType::C5Xlarge, 0);
    }
}
