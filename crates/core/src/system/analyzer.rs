//! The Scenario Analyzer: user requirements → search constraints.
//!
//! Paper §IV: "The Scenario Analyzer takes the training requirements from
//! user (e.g., training deadline, budget) and forms them into the search
//! constraints and feeds them into the HeterBO Deployment Engine."

use crate::scenario::Scenario;
use mlcd_cloudsim::{Money, SimDuration};

/// Raw user inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UserRequirements {
    /// "Finish within this long", if given.
    pub deadline: Option<SimDuration>,
    /// "Spend at most this much", if given.
    pub budget: Option<Money>,
}

/// Why requirements could not be analysed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The paper's formulation supports one binding constraint at a time.
    BothConstraints,
    /// A non-positive deadline or budget can never be met.
    Degenerate(&'static str),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::BothConstraints => {
                write!(f, "specify a deadline or a budget, not both")
            }
            AnalyzeError::Degenerate(what) => write!(f, "degenerate requirement: {what}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Maps requirements onto the paper's three scenarios.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioAnalyzer;

impl ScenarioAnalyzer {
    /// Analyse the user's requirements.
    ///
    /// * nothing given → Scenario-1 (fastest, unlimited);
    /// * deadline given → Scenario-2 (cheapest within the deadline);
    /// * budget given → Scenario-3 (fastest within the budget).
    pub fn analyze(&self, req: &UserRequirements) -> Result<Scenario, AnalyzeError> {
        match (req.deadline, req.budget) {
            (Some(_), Some(_)) => Err(AnalyzeError::BothConstraints),
            (Some(t), None) => {
                if t.as_secs() <= 0.0 {
                    Err(AnalyzeError::Degenerate("deadline must be positive"))
                } else {
                    Ok(Scenario::CheapestWithDeadline(t))
                }
            }
            (None, Some(b)) => {
                if b.dollars() <= 0.0 {
                    Err(AnalyzeError::Degenerate("budget must be positive"))
                } else {
                    Ok(Scenario::FastestWithBudget(b))
                }
            }
            (None, None) => Ok(Scenario::FastestUnlimited),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_to_the_three_scenarios() {
        let a = ScenarioAnalyzer;
        assert_eq!(a.analyze(&UserRequirements::default()), Ok(Scenario::FastestUnlimited));
        assert_eq!(
            a.analyze(&UserRequirements {
                deadline: Some(SimDuration::from_hours(6.0)),
                budget: None
            }),
            Ok(Scenario::CheapestWithDeadline(SimDuration::from_hours(6.0)))
        );
        assert_eq!(
            a.analyze(&UserRequirements {
                deadline: None,
                budget: Some(Money::from_dollars(100.0))
            }),
            Ok(Scenario::FastestWithBudget(Money::from_dollars(100.0)))
        );
    }

    #[test]
    fn rejects_over_and_under_specification() {
        let a = ScenarioAnalyzer;
        assert_eq!(
            a.analyze(&UserRequirements {
                deadline: Some(SimDuration::from_hours(1.0)),
                budget: Some(Money::from_dollars(10.0)),
            }),
            Err(AnalyzeError::BothConstraints)
        );
        assert!(matches!(
            a.analyze(&UserRequirements { deadline: Some(SimDuration::ZERO), budget: None }),
            Err(AnalyzeError::Degenerate(_))
        ));
        assert!(matches!(
            a.analyze(&UserRequirements {
                deadline: None,
                budget: Some(Money::from_dollars(-5.0))
            }),
            Err(AnalyzeError::Degenerate(_))
        ));
    }
}
