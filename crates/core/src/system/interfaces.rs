//! Cloud Interface and ML Platform Interface.
//!
//! MLCD's portability claims rest on these two seams (paper §IV): the
//! Cloud Interface wraps instance lifecycle + billing + metrics for one
//! provider, the ML Platform Interface wraps "run this training job and
//! tell me its throughput" for one framework. The simulator implements
//! both; a production deployment would implement them with EC2/CloudWatch
//! and TensorFlow/MXNet/PyTorch launchers.

use crate::deployment::Deployment;
use mlcd_cloudsim::{
    CloudError, Cluster, InstanceType, MetricStore, Money, SimCloud, SimDuration, SimTime,
};
use mlcd_perfmodel::{Infeasible, NoiseModel, ThroughputModel, TrainingJob};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Provider-side operations MLCD needs.
pub trait CloudInterface {
    /// Launch `n` instances of a type as one cluster.
    fn launch(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError>;
    /// Block (in virtual time) until the cluster is ready; returns the
    /// provisioning delay.
    fn wait_until_running(&self, cluster: &Cluster) -> SimDuration;
    /// Occupy the cluster with work for a duration.
    fn run_for(&self, cluster: &Cluster, d: SimDuration) -> Result<(), CloudError>;
    /// Terminate and bill.
    fn terminate(&self, cluster: &Cluster);
    /// Current (virtual) time.
    fn now(&self) -> SimTime;
    /// Cumulative billed spend.
    fn total_spent(&self) -> Money;
    /// Metric sink (CloudWatch-style).
    fn metrics(&self) -> &MetricStore;

    // --- concurrency capabilities (optional) -------------------------
    // A provider that can answer these lets the Profiler run probes in
    // parallel clusters and charge only the slowest one's wall-clock.

    /// Provisioning delay of a launched cluster, if the provider can tell
    /// without blocking. `None` (the default) makes batch probing fall
    /// back to sequential.
    fn provisioning_delay(&self, _cluster: &Cluster) -> Option<SimDuration> {
        None
    }

    /// Terminate retroactively at `end ≤ now`, billing only that span.
    /// The default ignores `end` and bills to now (sequential semantics).
    fn terminate_at(&self, cluster: &Cluster, _end: SimTime) {
        self.terminate(cluster);
    }

    /// Move time forward to `t` without occupying any particular cluster
    /// (e.g. waiting for the slowest of several concurrent probes). The
    /// default does nothing.
    fn skip_to(&self, _t: SimTime) {}

    /// Launch on the spot market when the provider has one; the default
    /// quietly falls back to on-demand, so callers must treat the result's
    /// billing as authoritative rather than assuming a discount.
    fn launch_spot(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        self.launch(itype, n)
    }

    /// The instant at or before `t` when the spot market revokes this
    /// cluster, if it does. Concurrent probing settles clusters
    /// retroactively (it never occupies them with
    /// [`run_for`](Self::run_for), which is where sequential probing
    /// learns about revocations), so it asks for the market's verdict
    /// through this. The default — matching the default
    /// [`launch_spot`](Self::launch_spot) on-demand fallback — is
    /// "never revoked".
    fn revocation_before(&self, _cluster: &Cluster, _t: SimTime) -> Option<SimTime> {
        None
    }
}

impl CloudInterface for SimCloud {
    fn launch(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        SimCloud::launch(self, itype, n)
    }
    fn wait_until_running(&self, cluster: &Cluster) -> SimDuration {
        SimCloud::wait_until_running(self, cluster)
    }
    fn run_for(&self, cluster: &Cluster, d: SimDuration) -> Result<(), CloudError> {
        SimCloud::run_for(self, cluster, d)
    }
    fn terminate(&self, cluster: &Cluster) {
        SimCloud::terminate(self, cluster)
    }
    fn now(&self) -> SimTime {
        SimCloud::now(self)
    }
    fn total_spent(&self) -> Money {
        self.billing().total_cost()
    }
    fn metrics(&self) -> &MetricStore {
        SimCloud::metrics(self)
    }
    fn provisioning_delay(&self, cluster: &Cluster) -> Option<SimDuration> {
        SimCloud::provisioning_delay(self, cluster)
    }
    fn terminate_at(&self, cluster: &Cluster, end: SimTime) {
        SimCloud::terminate_at(self, cluster, end)
    }
    fn skip_to(&self, t: SimTime) {
        // Run the event engine forward rather than just moving the clock,
        // so due lifecycle events (e.g. spot revocations) are delivered.
        self.run_until(t);
    }
    fn launch_spot(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        SimCloud::launch_spot(self, itype, n)
    }
    fn revocation_before(&self, cluster: &Cluster, t: SimTime) -> Option<SimTime> {
        SimCloud::revocation_before(self, cluster, t)
    }
}

/// Framework-side operations MLCD needs.
pub trait MlPlatformInterface {
    /// The job being deployed.
    fn job(&self) -> &TrainingJob;
    /// Sample per-window training throughput on a (running) deployment —
    /// each sample is one measurement window's noisy samples/second.
    fn sample_throughput(&mut self, d: &Deployment, windows: usize) -> Result<Vec<f64>, String>;
    /// The speed a full training run actually sustains (the profiler never
    /// sees this; the engine's real deployment runs at it).
    fn true_speed(&self, d: &Deployment) -> Result<f64, String>;
}

/// Simulated ML platform: ground truth from `mlcd-perfmodel`, observation
/// noise from its noise model.
pub struct SimMlPlatform {
    job: TrainingJob,
    truth: ThroughputModel,
    noise: NoiseModel,
    rng: SmallRng,
}

impl SimMlPlatform {
    /// Build with a seed controlling observation noise.
    pub fn new(job: TrainingJob, truth: ThroughputModel, noise: NoiseModel, seed: u64) -> Self {
        SimMlPlatform { job, truth, noise, rng: SmallRng::seed_from_u64(seed) }
    }

    fn speed(&self, d: &Deployment) -> Result<f64, Infeasible> {
        self.truth.throughput(&self.job, d.itype, d.n)
    }
}

impl MlPlatformInterface for SimMlPlatform {
    fn job(&self) -> &TrainingJob {
        &self.job
    }

    fn sample_throughput(&mut self, d: &Deployment, windows: usize) -> Result<Vec<f64>, String> {
        let speed = self.speed(d).map_err(|e| e.to_string())?;
        Ok(self.noise.observe_n(speed, windows, &mut self.rng))
    }

    fn true_speed(&self, d: &Deployment) -> Result<f64, String> {
        self.speed(d).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(sigma: f64) -> SimMlPlatform {
        SimMlPlatform::new(
            TrainingJob::resnet_cifar10(),
            ThroughputModel::default(),
            NoiseModel { sigma, straggler_prob: 0.0, straggler_slowdown: 1.0 },
            1,
        )
    }

    #[test]
    fn samples_scatter_around_truth() {
        let mut p = platform(0.05);
        let d = Deployment::new(InstanceType::C54xlarge, 8);
        let truth = p.true_speed(&d).unwrap();
        let samples = p.sample_throughput(&d, 200).unwrap();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean / truth - 1.0).abs() < 0.03, "mean {mean} vs truth {truth}");
        assert!(samples.iter().any(|&s| (s - truth).abs() > 1e-9), "noise should perturb");
    }

    #[test]
    fn noiseless_platform_reports_truth() {
        let mut p = SimMlPlatform::new(
            TrainingJob::resnet_cifar10(),
            ThroughputModel::default(),
            NoiseModel::noiseless(),
            2,
        );
        let d = Deployment::new(InstanceType::C5Xlarge, 4);
        let truth = p.true_speed(&d).unwrap();
        let samples = p.sample_throughput(&d, 5).unwrap();
        assert!(samples.iter().all(|&s| s == truth));
    }

    #[test]
    fn infeasible_deployment_errors() {
        use mlcd_perfmodel::{CommTopology, DatasetSpec, ModelSpec, Platform};
        let job = TrainingJob {
            model: ModelSpec::zero_20b(),
            dataset: DatasetSpec::bert_corpus(),
            epochs: 1,
            global_batch: 2048,
            platform: Platform::PyTorch,
            topology: CommTopology::RingAllReduce,
            grad_keep_frac: 1.0,
            scaling: mlcd_perfmodel::ScalingMode::Strong,
        };
        let mut p = SimMlPlatform::new(job, ThroughputModel::default(), NoiseModel::noiseless(), 3);
        let d = Deployment::new(InstanceType::P38xlarge, 1);
        assert!(p.true_speed(&d).is_err());
        assert!(p.sample_throughput(&d, 3).is_err());
    }

    #[test]
    fn sim_cloud_satisfies_cloud_interface() {
        let cloud = SimCloud::new(7);
        let c = CloudInterface::launch(&cloud, InstanceType::C5Xlarge, 2).unwrap();
        CloudInterface::wait_until_running(&cloud, &c);
        CloudInterface::run_for(&cloud, &c, SimDuration::from_mins(5.0)).unwrap();
        CloudInterface::terminate(&cloud, &c);
        assert!(cloud.total_spent().dollars() > 0.0);
    }
}
