//! The MLCD system (paper Fig 8).
//!
//! * [`interfaces`] — the Cloud Interface and ML Platform Interface
//!   traits, with simulated implementations (`mlcd-cloudsim` /
//!   `mlcd-perfmodel` backed). A real AWS/GCE backend would implement the
//!   same traits.
//! * [`profiler`] — the Profiler: launches a candidate cluster, runs the
//!   training job for a bounded measurement window, watches throughput
//!   stability (extending unstable probes), and reports the observation
//!   with its true time/money cost.
//! * [`analyzer`] — the Scenario Analyzer: user requirements → search
//!   constraints.
//! * [`engine`] — the HeterBO Deployment Engine: drives a searcher
//!   through the Profiler and then deploys the chosen configuration.

pub mod analyzer;
pub mod engine;
pub mod interfaces;
pub mod profiler;

pub use analyzer::{ScenarioAnalyzer, UserRequirements};
pub use engine::{DeploymentEngine, DeploymentPlan, TrainReport};
pub use interfaces::{CloudInterface, MlPlatformInterface, SimMlPlatform};
pub use profiler::{Profiler, ProfilerConfig};
