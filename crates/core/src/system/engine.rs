//! The HeterBO Deployment Engine.
//!
//! Orchestrates one full MLCD session: drive a searcher through the
//! Profiler to pick a deployment, then actually deploy it — launch the
//! chosen cluster, run the training job to completion at its true
//! sustained speed, and bill the whole thing.

use crate::deployment::Deployment;
use crate::observation::SearchOutcome;
use crate::scenario::Scenario;
use crate::search::Searcher;
use crate::system::interfaces::{CloudInterface, MlPlatformInterface};
use crate::system::profiler::Profiler;
use mlcd_cloudsim::{Money, SimDuration};
use serde::{Deserialize, Serialize};

/// The engine's recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// The chosen deployment.
    pub deployment: Deployment,
    /// Speed observed during profiling (samples/s).
    pub observed_speed: f64,
}

/// What actually happened when the plan was executed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TrainReport {
    /// The deployment that trained.
    pub deployment: Deployment,
    /// True sustained speed during the run.
    pub true_speed: f64,
    /// Wall-clock of the run (provisioning + training).
    pub train_time: SimDuration,
    /// Billed cost of the run.
    pub train_cost: Money,
}

/// Drives search then deployment.
pub struct DeploymentEngine<S> {
    searcher: S,
}

impl<S: Searcher> DeploymentEngine<S> {
    /// Engine around a searcher.
    pub fn new(searcher: S) -> Self {
        DeploymentEngine { searcher }
    }

    /// The searcher's name.
    pub fn searcher_name(&self) -> &'static str {
        self.searcher.name()
    }

    /// Run the search phase. Returns the outcome and (if anything was
    /// found) the plan.
    pub fn plan<C: CloudInterface, P: MlPlatformInterface>(
        &self,
        profiler: &mut Profiler<C, P>,
        scenario: &Scenario,
    ) -> (SearchOutcome, Option<DeploymentPlan>) {
        self.plan_traced(profiler, scenario, &mut crate::search::NullSink)
    }

    /// Run the search phase while narrating the searcher's structured
    /// trace into `sink`. Tracing never perturbs the search — the outcome
    /// is bit-identical to [`DeploymentEngine::plan`].
    pub fn plan_traced<C: CloudInterface, P: MlPlatformInterface>(
        &self,
        profiler: &mut Profiler<C, P>,
        scenario: &Scenario,
        sink: &mut dyn crate::search::TraceSink,
    ) -> (SearchOutcome, Option<DeploymentPlan>) {
        let outcome = self.searcher.search_traced(profiler, scenario, sink);
        let plan = outcome
            .best
            .map(|obs| DeploymentPlan { deployment: obs.deployment, observed_speed: obs.speed });
        (outcome, plan)
    }

    /// Execute a plan: launch the cluster, train the full job at the true
    /// sustained speed, terminate, and report actuals.
    pub fn execute<C: CloudInterface, P: MlPlatformInterface>(
        &self,
        cloud: &C,
        platform: &P,
        plan: &DeploymentPlan,
    ) -> Result<TrainReport, String> {
        let d = plan.deployment;
        let true_speed = platform.true_speed(&d)?;
        let t_start = cloud.now();
        let c_start = cloud.total_spent();

        let cluster = cloud.launch(d.itype, d.n).map_err(|e| e.to_string())?;
        cloud.wait_until_running(&cluster);
        let train = SimDuration::from_secs(platform.job().total_samples() / true_speed);
        cloud.run_for(&cluster, train).map_err(|e| e.to_string())?;
        cloud.terminate(&cluster);

        Ok(TrainReport {
            deployment: d,
            true_speed,
            train_time: cloud.now().since(t_start),
            train_cost: cloud.total_spent() - c_start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::SearchSpace;
    use crate::search::HeterBo;
    use crate::system::interfaces::SimMlPlatform;
    use crate::system::profiler::ProfilerConfig;
    use mlcd_cloudsim::{InstanceType, SimCloud};
    use mlcd_perfmodel::{NoiseModel, ThroughputModel, TrainingJob};

    fn session() -> (Profiler<SimCloud, SimMlPlatform>, Scenario) {
        let job = TrainingJob::resnet_cifar10();
        let truth = ThroughputModel::default();
        let space =
            SearchSpace::new(&[InstanceType::C5Xlarge, InstanceType::C54xlarge], 30, &job, &truth);
        let cloud = SimCloud::new(21);
        let platform = SimMlPlatform::new(job, truth, NoiseModel::noiseless(), 22);
        (
            Profiler::new(cloud, platform, space, ProfilerConfig::default()),
            Scenario::FastestUnlimited,
        )
    }

    #[test]
    fn plan_then_execute_end_to_end() {
        let (mut profiler, scenario) = session();
        let engine = DeploymentEngine::new(HeterBo::seeded(1));
        let (outcome, plan) = engine.plan(&mut profiler, &scenario);
        let plan = plan.expect("found a plan");
        assert!(outcome.n_probes() >= 2);

        let (cloud, platform) = profiler.into_parts();
        let report = engine.execute(&cloud, &platform, &plan).unwrap();
        assert_eq!(report.deployment, plan.deployment);
        assert!(report.train_time.as_hours() > 0.1);
        assert!(report.train_cost.dollars() > 0.0);
        // With a noiseless profiler, observed == true speed.
        assert!((report.true_speed - plan.observed_speed).abs() < 1e-9);
    }

    #[test]
    fn report_costs_are_billed_costs() {
        let (mut profiler, scenario) = session();
        let engine = DeploymentEngine::new(HeterBo::seeded(2));
        let (_, plan) = engine.plan(&mut profiler, &scenario);
        let plan = plan.unwrap();
        let (cloud, platform) = profiler.into_parts();
        let before = cloud.billing().total_cost();
        let report = engine.execute(&cloud, &platform, &plan).unwrap();
        let after = cloud.billing().total_cost();
        assert!(((after - before).dollars() - report.train_cost.dollars()).abs() < 1e-9);
    }
}
