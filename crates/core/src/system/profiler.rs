//! The MLCD Profiler.
//!
//! For each candidate deployment the Profiler (paper §IV): launches the
//! cluster through the Cloud Interface, waits through setup/warm-up, runs
//! the training job for a bounded measurement window through the ML
//! Platform Interface, monitors throughput stability across windows —
//! extending the probe "when large discrepancy is observed" — publishes
//! the series to the metric store, terminates the cluster, and reports the
//! observation with the exact wall-clock and billed cost it consumed.
//!
//! It implements [`ProfilingEnv`], so any [`crate::search::Searcher`] can
//! drive it directly.

use crate::deployment::{Deployment, SearchSpace};
use crate::env::{model_warmup, paper_probe_duration, ProfileError, ProfilingEnv};
use crate::observation::Observation;
use crate::system::interfaces::{CloudInterface, MlPlatformInterface};
use mlcd_cloudsim::{CloudError, Money, SimDuration};
use mlcd_linalg::OnlineStats;

/// Profiler tunables.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Throughput samples (measurement windows) per probe.
    pub windows: usize,
    /// Coefficient-of-variation threshold above which the probe is
    /// extended once.
    pub cv_threshold: f64,
    /// Extension length as a fraction of the base measurement time.
    pub extension_frac: f64,
    /// Probe on the spot market: probes are short and restartable, so the
    /// ~3× discount usually wins. A probe revoked mid-measurement is
    /// retried once on-demand (both launches are billed).
    pub use_spot: bool,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig { windows: 10, cv_threshold: 0.08, extension_frac: 0.5, use_spot: false }
    }
}

/// The Profiler: owns the cloud + platform handles for one search session.
pub struct Profiler<C: CloudInterface, P: MlPlatformInterface> {
    cloud: C,
    platform: P,
    space: SearchSpace,
    cfg: ProfilerConfig,
    elapsed: SimDuration,
    spent: Money,
    n_probes: usize,
    n_extended: usize,
    n_revoked: usize,
}

impl<C: CloudInterface, P: MlPlatformInterface> Profiler<C, P> {
    /// Build a profiler session.
    pub fn new(cloud: C, platform: P, space: SearchSpace, cfg: ProfilerConfig) -> Self {
        Profiler {
            cloud,
            platform,
            space,
            cfg,
            elapsed: SimDuration::ZERO,
            spent: Money::ZERO,
            n_probes: 0,
            n_extended: 0,
            n_revoked: 0,
        }
    }

    /// Probes run so far.
    pub fn n_probes(&self) -> usize {
        self.n_probes
    }

    /// Probes that needed a stability extension.
    pub fn n_extended(&self) -> usize {
        self.n_extended
    }

    /// Spot probes that were revoked mid-measurement (and retried
    /// on-demand).
    pub fn n_revoked(&self) -> usize {
        self.n_revoked
    }

    /// The cloud handle (for the engine to reuse for the real deployment).
    pub fn cloud(&self) -> &C {
        &self.cloud
    }

    /// The platform handle.
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// Consume the profiler, returning its parts.
    pub fn into_parts(self) -> (C, P) {
        (self.cloud, self.platform)
    }

    fn run_probe(&mut self, d: &Deployment) -> Result<Observation, ProfileError> {
        match self.run_probe_attempt(d, self.cfg.use_spot) {
            Err(ProfileError::SpotRevoked { .. }) => {
                // A revoked spot probe is retried once on-demand. Both the
                // interrupted spot cluster and the retry are billed and
                // counted into this probe's totals.
                self.n_revoked += 1;
                self.run_probe_attempt(d, false)
            }
            other => other,
        }
    }

    fn run_probe_attempt(
        &mut self,
        d: &Deployment,
        spot: bool,
    ) -> Result<Observation, ProfileError> {
        let t_start = self.cloud.now();
        let c_start = self.cloud.total_spent();

        let cluster = if spot {
            self.cloud.launch_spot(d.itype, d.n)
        } else {
            self.cloud.launch(d.itype, d.n)
        }
        .map_err(|e| ProfileError::Failed(e.to_string()))?;
        let setup = self.cloud.wait_until_running(&cluster);

        // The paper's probe-duration rule covers setup + warm-up +
        // measurement; large models additionally pay state-distribution
        // warm-up. Measure for whatever remains after setup, with a small
        // floor so a slow provision still yields data.
        let quoted =
            paper_probe_duration(d.n) + model_warmup(self.platform.job().model.state_bytes());
        let measure = (quoted - setup).max(SimDuration::from_mins(2.0));

        let sample = |profiler: &mut Self,
                      cluster: &mlcd_cloudsim::Cluster,
                      dur: SimDuration,
                      windows: usize|
         -> Result<Vec<f64>, ProfileError> {
            profiler.cloud.run_for(cluster, dur).map_err(|e| match e {
                CloudError::SpotRevoked { at, .. } => {
                    ProfileError::SpotRevoked { deployment: *d, at }
                }
                other => ProfileError::Failed(other.to_string()),
            })?;
            profiler.platform.sample_throughput(d, windows).map_err(ProfileError::Failed)
        };

        let result = (|| -> Result<f64, ProfileError> {
            let mut stats = OnlineStats::new();
            let samples = sample(self, &cluster, measure, self.cfg.windows)?;
            for (i, s) in samples.iter().enumerate() {
                stats.push(*s);
                self.cloud.metrics().put(
                    &format!("throughput/{}", d),
                    self.cloud.now(),
                    samples[i],
                );
            }
            // Paper: "extends the profiling time when large discrepancy is
            // observed" across iterations.
            if stats.cv() > self.cfg.cv_threshold {
                self.n_extended += 1;
                let extra = sample(
                    self,
                    &cluster,
                    measure * self.cfg.extension_frac,
                    (self.cfg.windows / 2).max(1),
                )?;
                for s in extra {
                    stats.push(s);
                    self.cloud.metrics().put(&format!("throughput/{}", d), self.cloud.now(), s);
                }
            }
            Ok(stats.mean())
        })();

        // Terminate no matter what happened — the instances were up and
        // must be billed and released. Failed attempts (platform errors,
        // spot revocations) still consumed time and money, so they are
        // accounted before propagating the error.
        self.cloud.terminate(&cluster);
        let profile_time = self.cloud.now().since(t_start);
        let profile_cost = self.cloud.total_spent() - c_start;
        self.elapsed += profile_time;
        self.spent += profile_cost;

        let speed = result?;
        self.n_probes += 1;
        Ok(Observation { deployment: *d, speed, profile_time, profile_cost })
    }
}

impl<C: CloudInterface, P: MlPlatformInterface> Profiler<C, P> {
    /// Parallel batch probing: launch every cluster at once, let each run
    /// its own probe duration, advance the clock only to the *slowest*
    /// finisher, and bill each cluster its own span. Probes go to the spot
    /// market when the config asks for it; members the market revokes
    /// mid-wave are retried once on-demand in a second wave, mirroring the
    /// sequential retry. Falls back to sequential probing when the
    /// provider cannot report provisioning delays without blocking.
    fn run_batch(&mut self, ds: &[Deployment]) -> Vec<Result<Observation, ProfileError>> {
        let mut results: Vec<Option<Result<Observation, ProfileError>>> =
            ds.iter().map(|_| None).collect();
        let all: Vec<usize> = (0..ds.len()).collect();
        let revoked = self.run_batch_wave(ds, &all, self.cfg.use_spot, &mut results);
        if !revoked.is_empty() {
            self.n_revoked += revoked.len();
            for &i in &revoked {
                results[i] = None;
            }
            // On-demand clusters are never revoked, so the retry wave
            // settles every remaining member.
            self.run_batch_wave(ds, &revoked, false, &mut results);
        }
        results.into_iter().map(|r| r.expect("every slot settled")).collect()
    }

    /// One concurrent probing wave over the `idx` members of `ds`. Fills
    /// `results` for every member that settles (with an observation or an
    /// error) and returns the indices whose spot cluster the market
    /// revoked mid-wave — those slots hold the `SpotRevoked` error until
    /// the caller decides whether to retry them.
    fn run_batch_wave(
        &mut self,
        ds: &[Deployment],
        idx: &[usize],
        spot: bool,
        results: &mut [Option<Result<Observation, ProfileError>>],
    ) -> Vec<usize> {
        let t0 = self.cloud.now();
        let c_start = self.cloud.total_spent();

        // Launch phase: all clusters come up concurrently.
        let mut launched: Vec<(usize, mlcd_cloudsim::Cluster, SimDuration)> = Vec::new();
        for &i in idx {
            let d = &ds[i];
            if !self.space.contains(d) {
                results[i] = Some(Err(ProfileError::NotInSpace(*d)));
                continue;
            }
            let handle = if spot {
                self.cloud.launch_spot(d.itype, d.n)
            } else {
                self.cloud.launch(d.itype, d.n)
            };
            match handle {
                Ok(cluster) => match self.cloud.provisioning_delay(&cluster) {
                    Some(setup) => launched.push((i, cluster, setup)),
                    None => {
                        // Provider can't run this concurrently: settle this
                        // cluster and take the sequential path for the rest.
                        self.cloud.terminate(&cluster);
                        results[i] = Some(self.run_probe(d));
                    }
                },
                Err(e) => results[i] = Some(Err(ProfileError::Failed(e.to_string()))),
            }
        }

        // Measurement phase (virtual-time independent): work out each
        // probe's duration and observation, and ask the market whether
        // the cluster survives that long.
        let warmup = model_warmup(self.platform.job().model.state_bytes());
        let mut ends: Vec<(usize, mlcd_cloudsim::Cluster, mlcd_cloudsim::SimTime, f64)> =
            Vec::new();
        let mut revoked: Vec<usize> = Vec::new();
        for (i, cluster, setup) in launched {
            let d = ds[i];
            let quoted = paper_probe_duration(d.n) + warmup;
            let mut dur = setup + (quoted - setup).max(SimDuration::from_mins(2.0));
            let mut speed = f64::NAN;
            match self.platform.sample_throughput(&d, self.cfg.windows) {
                Ok(samples) => {
                    let mut stats = OnlineStats::new();
                    for s in &samples {
                        stats.push(*s);
                    }
                    if stats.cv() > self.cfg.cv_threshold {
                        self.n_extended += 1;
                        let extra_dur = (quoted - setup).max(SimDuration::from_mins(2.0))
                            * self.cfg.extension_frac;
                        dur += extra_dur;
                        if let Ok(extra) =
                            self.platform.sample_throughput(&d, (self.cfg.windows / 2).max(1))
                        {
                            for s in extra {
                                stats.push(s);
                            }
                        }
                    }
                    speed = stats.mean();
                }
                Err(msg) => results[i] = Some(Err(ProfileError::Failed(msg))),
            }
            match self.cloud.revocation_before(&cluster, t0 + dur) {
                Some(at) => {
                    // The market kills this member before its probe ends:
                    // it is billed up to the revocation instant and its
                    // measurements are lost.
                    ends.push((i, cluster, at, f64::NAN));
                    results[i] = Some(Err(ProfileError::SpotRevoked { deployment: d, at }));
                    revoked.push(i);
                }
                None => ends.push((i, cluster, t0 + dur, speed)),
            }
        }

        // Settlement phase: wait for the slowest, bill each its own span —
        // from the provider's ledger, exactly as the sequential path does,
        // so spot discounts, billing minimums and revoked partial spans
        // all land in the observation rather than diverging from
        // `spent()`.
        let latest =
            ends.iter().map(|(_, _, end, _)| *end).fold(t0, |a, b| if b > a { b } else { a });
        self.cloud.skip_to(latest);
        for (i, cluster, end, speed) in ends {
            let before = self.cloud.total_spent();
            self.cloud.terminate_at(&cluster, end);
            let profile_cost = self.cloud.total_spent() - before;
            if results[i].is_none() {
                let d = ds[i];
                let profile_time = end.since(t0);
                self.cloud.metrics().put(&format!("throughput/{}", d), end, speed);
                self.n_probes += 1;
                results[i] =
                    Some(Ok(Observation { deployment: d, speed, profile_time, profile_cost }));
            }
        }

        // The wave consumes wall-clock equal to its slowest member but
        // money equal to the sum.
        self.elapsed += latest.since(t0);
        self.spent += self.cloud.total_spent() - c_start;
        revoked
    }
}

impl<C: CloudInterface, P: MlPlatformInterface> ProfilingEnv for Profiler<C, P> {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn total_samples(&self) -> f64 {
        self.platform.job().total_samples()
    }

    fn quote(&self, d: &Deployment) -> (SimDuration, Money) {
        let t = paper_probe_duration(d.n) + model_warmup(self.platform.job().model.state_bytes());
        (t, d.cost_for(t))
    }

    fn profile(&mut self, d: &Deployment) -> Result<Observation, ProfileError> {
        if !self.space.contains(d) {
            return Err(ProfileError::NotInSpace(*d));
        }
        self.run_probe(d)
    }

    fn profile_batch(&mut self, ds: &[Deployment]) -> Vec<Result<Observation, ProfileError>> {
        if ds.len() <= 1 {
            return ds.iter().map(|d| self.profile(d)).collect();
        }
        self.run_batch(ds)
    }

    fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    fn spent(&self) -> Money {
        self.spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::interfaces::SimMlPlatform;
    use mlcd_cloudsim::{InstanceType, SimCloud};
    use mlcd_perfmodel::{NoiseModel, ThroughputModel, TrainingJob};

    fn make_profiler(noise: NoiseModel) -> Profiler<SimCloud, SimMlPlatform> {
        let job = TrainingJob::resnet_cifar10();
        let truth = ThroughputModel::default();
        let space = SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
            50,
            &job,
            &truth,
        );
        let cloud = SimCloud::new(11);
        let platform = SimMlPlatform::new(job, truth, noise, 12);
        Profiler::new(cloud, platform, space, ProfilerConfig::default())
    }

    #[test]
    fn probe_time_close_to_paper_rule() {
        let mut p = make_profiler(NoiseModel::noiseless());
        let d = Deployment::new(InstanceType::C54xlarge, 10);
        let obs = p.profile(&d).unwrap();
        let quoted = paper_probe_duration(10);
        // Provisioning jitter can stretch a little past the quote.
        assert!(obs.profile_time.as_secs() >= quoted.as_secs() * 0.9);
        assert!(obs.profile_time.as_secs() <= quoted.as_secs() * 1.6);
    }

    #[test]
    fn cost_matches_billing() {
        let mut p = make_profiler(NoiseModel::noiseless());
        let d = Deployment::new(InstanceType::P2Xlarge, 4);
        let before = p.cloud().total_spent();
        let obs = p.profile(&d).unwrap();
        let after = p.cloud().total_spent();
        assert!((obs.profile_cost.dollars() - (after - before).dollars()).abs() < 1e-9);
        assert!(obs.profile_cost.dollars() > 0.0);
        assert_eq!(p.n_probes(), 1);
    }

    #[test]
    fn noiseless_probe_recovers_truth() {
        let mut p = make_profiler(NoiseModel::noiseless());
        let d = Deployment::new(InstanceType::C54xlarge, 8);
        let obs = p.profile(&d).unwrap();
        let truth = ThroughputModel::default()
            .throughput(&TrainingJob::resnet_cifar10(), InstanceType::C54xlarge, 8)
            .unwrap();
        assert!((obs.speed - truth).abs() < 1e-9);
        assert_eq!(p.n_extended(), 0);
    }

    #[test]
    fn unstable_throughput_triggers_extension() {
        // Violent noise → CV above threshold → probe extended.
        let noisy = NoiseModel { sigma: 0.4, straggler_prob: 0.3, straggler_slowdown: 0.5 };
        let mut p = make_profiler(noisy);
        let mut extended = 0;
        for n in [2u32, 4, 6, 8, 10] {
            let d = Deployment::new(InstanceType::C5Xlarge, n);
            let _ = p.profile(&d).unwrap();
            extended = p.n_extended();
        }
        assert!(extended >= 1, "expected at least one extension, got {extended}");
        // Extensions cost extra money relative to the quote.
    }

    #[test]
    fn gpu_probe_costs_more_than_cpu_probe() {
        let mut p = make_profiler(NoiseModel::noiseless());
        let cpu = p.profile(&Deployment::new(InstanceType::C5Xlarge, 1)).unwrap();
        let gpu = p.profile(&Deployment::new(InstanceType::P2Xlarge, 8)).unwrap();
        assert!(gpu.profile_cost.dollars() > cpu.profile_cost.dollars() * 10.0);
        assert!(gpu.profile_time > cpu.profile_time);
    }

    #[test]
    fn metrics_published() {
        let mut p = make_profiler(NoiseModel::noiseless());
        let d = Deployment::new(InstanceType::C5Xlarge, 2);
        p.profile(&d).unwrap();
        let series = p.cloud().metrics().series(&format!("throughput/{}", d));
        assert_eq!(series.len(), ProfilerConfig::default().windows);
    }

    #[test]
    fn rejects_out_of_space() {
        let mut p = make_profiler(NoiseModel::noiseless());
        let err = p.profile(&Deployment::new(InstanceType::C5n9xlarge, 2)).unwrap_err();
        assert!(matches!(err, ProfileError::NotInSpace(_)));
    }

    #[test]
    fn spot_probing_is_cheaper_in_expectation() {
        // Same probe plan on-demand vs spot; spot must be substantially
        // cheaper in aggregate despite occasional revocation retries.
        let plan: Vec<Deployment> = [2u32, 5, 8, 12, 16, 20, 24, 30]
            .iter()
            .map(|&n| Deployment::new(InstanceType::C54xlarge, n))
            .collect();
        let run = |use_spot: bool| {
            let job = TrainingJob::resnet_cifar10();
            let truth = ThroughputModel::default();
            let space = SearchSpace::new(&[InstanceType::C54xlarge], 50, &job, &truth);
            let cloud = SimCloud::new(5);
            let platform = SimMlPlatform::new(job, truth, NoiseModel::noiseless(), 6);
            let mut p = Profiler::new(
                cloud,
                platform,
                space,
                ProfilerConfig { use_spot, ..Default::default() },
            );
            for d in &plan {
                p.profile(d).unwrap();
            }
            (p.spent().dollars(), p.n_revoked())
        };
        let (od_cost, od_revoked) = run(false);
        let (spot_cost, _spot_revoked) = run(true);
        assert_eq!(od_revoked, 0);
        assert!(
            spot_cost < od_cost * 0.7,
            "spot ${spot_cost:.2} should be well under on-demand ${od_cost:.2}"
        );
    }

    #[test]
    fn revoked_spot_probe_retries_and_still_reports() {
        // Find a seed where a revocation actually happens, then check the
        // probe still returns a valid observation and the accounting holds.
        for seed in 0..60u64 {
            let job = TrainingJob::resnet_cifar10();
            let truth = ThroughputModel::default();
            let space = SearchSpace::new(&[InstanceType::C54xlarge], 50, &job, &truth);
            let cloud = SimCloud::new(seed);
            let platform = SimMlPlatform::new(job, truth, NoiseModel::noiseless(), seed + 1);
            let mut p = Profiler::new(
                cloud,
                platform,
                space,
                ProfilerConfig { use_spot: true, ..Default::default() },
            );
            // Large clusters probe longer (and more nodes) → more revocations.
            for n in [30u32, 40, 50, 45, 35] {
                let obs = p.profile(&Deployment::new(InstanceType::C54xlarge, n)).unwrap();
                assert!(obs.speed > 0.0);
            }
            // Accounting must match the cloud's ledger exactly, including
            // any revoked attempts.
            let billed = p.cloud().billing().total_cost();
            assert!(
                (p.spent().dollars() - billed.dollars()).abs() < 1e-9,
                "seed {seed}: profiler {} vs ledger {}",
                p.spent(),
                billed
            );
            if p.n_revoked() > 0 {
                return; // exercised the retry path — done
            }
        }
        panic!("no revocation in 60 seeds — retry path never exercised");
    }

    #[test]
    fn batch_probing_charges_max_time_but_sum_of_money() {
        let ds = [
            Deployment::new(InstanceType::C5Xlarge, 1),
            Deployment::new(InstanceType::C54xlarge, 10),
            Deployment::new(InstanceType::P2Xlarge, 25),
        ];
        // Sequential reference.
        let mut seq = make_profiler(NoiseModel::noiseless());
        let seq_obs: Vec<_> = ds.iter().map(|d| seq.profile(d).unwrap()).collect();

        // Parallel batch.
        let mut par = make_profiler(NoiseModel::noiseless());
        let par_obs: Vec<_> = par.profile_batch(&ds).into_iter().map(|r| r.unwrap()).collect();

        // Same speeds observed (noiseless ⇒ ground truth either way).
        for (a, b) in seq_obs.iter().zip(&par_obs) {
            assert_eq!(a.deployment, b.deployment);
            assert!((a.speed - b.speed).abs() < 1e-9);
        }
        // Money: batch total ≈ sum of its own probes' costs, same order of
        // magnitude as sequential.
        let par_sum: f64 = par_obs.iter().map(|o| o.profile_cost.dollars()).sum();
        assert!((par.spent().dollars() - par_sum).abs() < 1e-6);
        // Wall-clock: batch elapsed == slowest member, strictly less than
        // the sequential sum.
        let slowest = par_obs.iter().map(|o| o.profile_time.as_secs()).fold(0.0_f64, f64::max);
        assert!((par.elapsed().as_secs() - slowest).abs() < 1e-6);
        assert!(par.elapsed().as_secs() < seq.elapsed().as_secs() * 0.6);
        assert_eq!(par.n_probes(), 3);
    }

    fn spot_profiler(seed: u64, itypes: &[InstanceType]) -> Profiler<SimCloud, SimMlPlatform> {
        let job = TrainingJob::resnet_cifar10();
        let truth = ThroughputModel::default();
        let space = SearchSpace::new(itypes, 50, &job, &truth);
        let cloud = SimCloud::new(seed);
        let platform = SimMlPlatform::new(job, truth, NoiseModel::noiseless(), seed + 1);
        Profiler::new(
            cloud,
            platform,
            space,
            ProfilerConfig { use_spot: true, ..Default::default() },
        )
    }

    #[test]
    fn batch_spot_observation_costs_sum_to_spent() {
        // Regression: the batch settlement used to price observations with
        // an on-demand quote while `spent()` tracked the cloud ledger, so
        // under spot pricing the two diverged. Observations are now billed
        // from the ledger like the sequential path.
        let ds: Vec<Deployment> = [2u32, 6, 12, 20]
            .iter()
            .map(|&n| Deployment::new(InstanceType::C54xlarge, n))
            .collect();
        let mut checked = 0;
        for seed in 0..20u64 {
            let mut p = spot_profiler(seed, &[InstanceType::C54xlarge]);
            let obs: Vec<Observation> =
                p.profile_batch(&ds).into_iter().map(|r| r.unwrap()).collect();
            // The profiler's running total must match the ledger always.
            let ledger = p.cloud().billing().total_cost();
            assert!(
                (p.spent().dollars() - ledger.dollars()).abs() < 1e-9,
                "seed {seed}: profiler {} vs ledger {}",
                p.spent(),
                ledger
            );
            if p.n_revoked() > 0 {
                // A revoked first attempt is billed into `spent()` but
                // belongs to no observation (same as the sequential path).
                continue;
            }
            let sum: f64 = obs.iter().map(|o| o.profile_cost.dollars()).sum();
            assert!(
                (sum - p.spent().dollars()).abs() < 1e-9,
                "seed {seed}: observations ${sum} vs spent {}",
                p.spent()
            );
            // And the ledger rate really is the spot rate: an on-demand
            // quote over the same spans would cost substantially more.
            let quoted: f64 = obs
                .iter()
                .map(|o| {
                    mlcd_cloudsim::billing::quote(
                        o.deployment.itype,
                        o.deployment.n,
                        o.profile_time,
                    )
                    .dollars()
                })
                .sum();
            assert!(
                sum < quoted * 0.7,
                "seed {seed}: spot batch ${sum:.2} should undercut quote ${quoted:.2}"
            );
            checked += 1;
        }
        assert!(checked >= 10, "too few revocation-free seeds: {checked}/20");
    }

    #[test]
    fn batch_revoked_spot_member_retried_on_demand() {
        // Find a seed where the market revokes a batch member, then check
        // the retry wave still settles every member and the accounting
        // holds to the ledger.
        for seed in 0..80u64 {
            let mut p = spot_profiler(seed, &[InstanceType::C54xlarge]);
            let ds: Vec<Deployment> = [30u32, 40, 50, 45, 35]
                .iter()
                .map(|&n| Deployment::new(InstanceType::C54xlarge, n))
                .collect();
            let results = p.profile_batch(&ds);
            for r in &results {
                let obs = r.as_ref().unwrap();
                assert!(obs.speed > 0.0);
            }
            let ledger = p.cloud().billing().total_cost();
            assert!(
                (p.spent().dollars() - ledger.dollars()).abs() < 1e-9,
                "seed {seed}: profiler {} vs ledger {}",
                p.spent(),
                ledger
            );
            if p.n_revoked() > 0 {
                // Revoked first attempts cost money but yield no
                // observation, so the sum is strictly below spent().
                let sum: f64 =
                    results.iter().map(|r| r.as_ref().unwrap().profile_cost.dollars()).sum();
                assert!(sum < p.spent().dollars());
                assert_eq!(p.n_probes(), ds.len());
                return; // exercised the batch retry path — done
            }
        }
        panic!("no revocation in 80 seeds — batch retry path never exercised");
    }

    #[test]
    fn batch_with_invalid_member_still_probes_the_rest() {
        let mut p = make_profiler(NoiseModel::noiseless());
        let ds = [
            Deployment::new(InstanceType::C5Xlarge, 2),
            Deployment::new(InstanceType::C5n9xlarge, 1), // not in the space
            Deployment::new(InstanceType::C54xlarge, 4),
        ];
        let results = p.profile_batch(&ds);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ProfileError::NotInSpace(_))));
        assert!(results[2].is_ok());
        assert_eq!(p.n_probes(), 2);
    }

    #[test]
    fn singleton_batch_is_just_a_probe() {
        let mut p = make_profiler(NoiseModel::noiseless());
        let d = Deployment::new(InstanceType::C5Xlarge, 4);
        let batch = p.profile_batch(std::slice::from_ref(&d));
        assert_eq!(batch.len(), 1);
        assert!(batch[0].is_ok());
    }
}
