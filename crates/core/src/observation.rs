//! Profiling observations, search steps and search outcomes.

use crate::deployment::Deployment;
use mlcd_cloudsim::{Money, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One completed profiling probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The deployment that was probed.
    pub deployment: Deployment,
    /// Observed training speed, samples/second (noisy).
    pub speed: f64,
    /// Wall-clock the probe took (setup + warm-up + measurement,
    /// including any stability extension).
    pub profile_time: SimDuration,
    /// What the probe cost.
    pub profile_cost: Money,
}

/// Why a search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Expected improvement fell below the threshold.
    Converged,
    /// The protective mechanism: any further probe would eat into the
    /// budget/deadline reserve needed to finish training on the incumbent.
    ReserveProtection,
    /// Every candidate was explored or pruned.
    SpaceExhausted,
    /// Hit the step cap.
    MaxSteps,
    /// The searcher never found any feasible deployment.
    NothingFeasible,
}

/// One step of a search trace (for the paper's trajectory figures 9a, 15–17).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchStep {
    /// 1-based step index.
    pub index: usize,
    /// The observation made at this step.
    pub observation: Observation,
    /// Cumulative profiling time after this step.
    pub cum_profile_time: SimDuration,
    /// Cumulative profiling cost after this step.
    pub cum_profile_cost: Money,
}

/// The result of running a searcher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The deployment the searcher recommends, with its observed speed.
    /// `None` when nothing feasible was found.
    pub best: Option<Observation>,
    /// Full probe-by-probe trace.
    pub steps: Vec<SearchStep>,
    /// Total profiling wall-clock.
    pub profile_time: SimDuration,
    /// Total profiling spend.
    pub profile_cost: Money,
    /// Why the search ended.
    pub stop_reason: StopReason,
}

impl SearchOutcome {
    /// Number of probes made.
    pub fn n_probes(&self) -> usize {
        self.steps.len()
    }

    /// An empty outcome for searches that could not probe anything.
    pub fn empty(reason: StopReason) -> Self {
        SearchOutcome {
            best: None,
            steps: Vec::new(),
            profile_time: SimDuration::ZERO,
            profile_cost: Money::ZERO,
            stop_reason: reason,
        }
    }

    /// Canonical, bit-exact text digest of this outcome: every f64 is
    /// rendered as its raw bit pattern, so two digests compare equal iff
    /// the outcomes are bit-identical — no epsilon, no rounding. The
    /// golden snapshot tests and the service layer's crash-resume
    /// verification both compare exactly this rendering.
    pub fn digest(&self) -> String {
        let mut s = String::new();
        match &self.best {
            Some(b) => {
                writeln!(s, "best {} speed={}", b.deployment, f64_bits(b.speed)).unwrap();
            }
            None => writeln!(s, "best none").unwrap(),
        }
        for step in &self.steps {
            writeln!(
                s,
                "step {:02} {} speed={} t={} c={} cum_t={} cum_c={}",
                step.index,
                step.observation.deployment,
                f64_bits(step.observation.speed),
                f64_bits(step.observation.profile_time.as_secs()),
                f64_bits(step.observation.profile_cost.dollars()),
                f64_bits(step.cum_profile_time.as_secs()),
                f64_bits(step.cum_profile_cost.dollars()),
            )
            .unwrap();
        }
        writeln!(
            s,
            "totals t={} c={} stop={:?}",
            f64_bits(self.profile_time.as_secs()),
            f64_bits(self.profile_cost.dollars()),
            self.stop_reason
        )
        .unwrap();
        s
    }
}

/// Exact bit pattern of an f64, for digests that must compare exactly.
pub fn f64_bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd_cloudsim::InstanceType;

    #[test]
    fn empty_outcome() {
        let o = SearchOutcome::empty(StopReason::NothingFeasible);
        assert!(o.best.is_none());
        assert_eq!(o.n_probes(), 0);
        assert_eq!(o.stop_reason, StopReason::NothingFeasible);
    }

    #[test]
    fn serialises_for_experiment_dumps() {
        let obs = Observation {
            deployment: Deployment::new(InstanceType::C5Xlarge, 3),
            speed: 123.4,
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.08),
        };
        let step = SearchStep {
            index: 1,
            observation: obs,
            cum_profile_time: SimDuration::from_mins(10.0),
            cum_profile_cost: Money::from_dollars(0.08),
        };
        let outcome = SearchOutcome {
            best: Some(obs),
            steps: vec![step],
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.08),
            stop_reason: StopReason::Converged,
        };
        let json = serde_json::to_string(&outcome).unwrap();
        assert!(json.contains("C5Xlarge"));
        assert!(json.contains("Converged"));
    }
}
