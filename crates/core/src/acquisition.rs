//! Acquisition functions.
//!
//! The paper's §III-C builds on conventional Expected Improvement (its
//! eq. 4) and extends it two ways:
//!
//! 1. **Constraint awareness (TEI)** — eqs. 5–6 subtract the profiling
//!    spend and the *projected training spend at the candidate's predicted
//!    speed* from the remaining deadline/budget; a candidate with negative
//!    TEI cannot possibly pay off and is discarded.
//! 2. **Heterogeneous-cost penalty** — eqs. 7–8: a probe's own
//!    time/monetary cost divides its score, so an expensive 50-node GPU
//!    probe must promise proportionally more improvement than a one-node
//!    CPU probe.

use mlcd_gp::Prediction;
use mlcd_linalg::{norm_cdf, norm_pdf};

/// Expected improvement of a *maximisation* objective over incumbent
/// `best`, for a Gaussian belief `pred` about the candidate's value.
///
/// `xi` is the usual exploration margin (0 for the paper's plain EI).
pub fn expected_improvement(pred: &Prediction, best: f64, xi: f64) -> f64 {
    let sigma = pred.stddev();
    let gap = pred.mean - best - xi;
    if sigma < 1e-12 {
        return gap.max(0.0);
    }
    let z = gap / sigma;
    let ei = gap * norm_cdf(z) + sigma * norm_pdf(z);
    ei.max(0.0)
}

/// Probability the candidate improves on `best` by more than `margin`
/// (POI acquisition; also HeterBO's confidence-aware stop test).
pub fn prob_improvement(pred: &Prediction, best: f64, margin: f64) -> f64 {
    let sigma = pred.stddev();
    let gap = pred.mean - (best + margin);
    if sigma < 1e-12 {
        return if gap > 0.0 { 1.0 } else { 0.0 };
    }
    norm_cdf(gap / sigma)
}

/// Upper confidence bound `μ + κσ` for a maximisation objective.
pub fn ucb(pred: &Prediction, kappa: f64) -> f64 {
    pred.mean + kappa * pred.stddev()
}

/// Which acquisition function ranks candidates (paper §II-D lists the
/// three standard choices; HeterBO builds on EI because "it does not
/// require hyperparameter tuning and it is easier for setting the stop
/// condition").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AcquisitionKind {
    /// Expected improvement over the incumbent (the default).
    #[default]
    ExpectedImprovement,
    /// Upper confidence bound `μ + κσ`, scored as its excess over the
    /// incumbent.
    UpperConfidenceBound {
        /// Exploration weight κ (≈2 is conventional).
        kappa: f64,
    },
    /// Probability of improving on the incumbent by at least
    /// `margin_frac × |incumbent|`.
    ProbabilityOfImprovement {
        /// Required improvement margin as a fraction of the incumbent.
        margin_frac: f64,
    },
}

impl AcquisitionKind {
    /// Score a candidate's Gaussian belief against the incumbent `best`
    /// (maximisation). All kinds return ≥ 0, with 0 meaning "not worth
    /// probing", so scores can be divided by probing-cost penalties.
    pub fn score(&self, pred: &Prediction, best: f64) -> f64 {
        match *self {
            AcquisitionKind::ExpectedImprovement => expected_improvement(pred, best, 0.0),
            AcquisitionKind::UpperConfidenceBound { kappa } => (ucb(pred, kappa) - best).max(0.0),
            AcquisitionKind::ProbabilityOfImprovement { margin_frac } => {
                prob_improvement(pred, best, margin_frac * best.abs())
            }
        }
    }
}

/// Convert a Gaussian belief about *speed* into a Gaussian belief about
/// *training cost* via the delta method: `cost = k / speed` with
/// `k = total_samples × hourly_price / 3600`, so
/// `σ_cost ≈ |dcost/dspeed| σ_speed = k σ / μ²`.
///
/// Returns `None` when the speed belief dips too close to zero for the
/// linearisation to mean anything (those candidates are treated as
/// unknown-cost and scored by speed EI instead).
pub fn cost_belief(pred: &Prediction, total_samples: f64, hourly_usd: f64) -> Option<Prediction> {
    if pred.mean <= 1e-9 {
        return None;
    }
    // Beyond ~2.5σ of mass below zero speed the Gaussian-cost approximation
    // is garbage.
    if pred.mean - 2.5 * pred.stddev() <= 0.0 && pred.stddev() > 0.0 {
        return None;
    }
    let k = total_samples * hourly_usd / 3600.0;
    let mean = k / pred.mean;
    let sd = k * pred.stddev() / (pred.mean * pred.mean);
    Some(Prediction { mean, var: sd * sd, var_with_noise: sd * sd })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(mean: f64, sd: f64) -> Prediction {
        Prediction { mean, var: sd * sd, var_with_noise: sd * sd }
    }

    #[test]
    fn ei_zero_when_certainly_worse() {
        let p = pred(1.0, 0.0);
        assert_eq!(expected_improvement(&p, 2.0, 0.0), 0.0);
    }

    #[test]
    fn ei_equals_gap_when_certain_and_better() {
        let p = pred(5.0, 0.0);
        assert_eq!(expected_improvement(&p, 2.0, 0.0), 3.0);
    }

    #[test]
    fn ei_at_incumbent_with_uncertainty() {
        // gap = 0: EI = σ φ(0) = σ × 0.39894…
        let p = pred(2.0, 1.0);
        let ei = expected_improvement(&p, 2.0, 0.0);
        assert!((ei - 0.3989422804014327).abs() < 1e-12);
    }

    #[test]
    fn ei_increases_with_mean_and_sigma() {
        let base = expected_improvement(&pred(1.0, 0.5), 2.0, 0.0);
        assert!(expected_improvement(&pred(1.5, 0.5), 2.0, 0.0) > base);
        assert!(expected_improvement(&pred(1.0, 1.5), 2.0, 0.0) > base);
    }

    #[test]
    fn xi_discourages_marginal_candidates() {
        let p = pred(2.05, 0.1);
        assert!(expected_improvement(&p, 2.0, 0.5) < expected_improvement(&p, 2.0, 0.0));
    }

    #[test]
    fn poi_limits() {
        assert_eq!(prob_improvement(&pred(5.0, 0.0), 2.0, 0.0), 1.0);
        assert_eq!(prob_improvement(&pred(1.0, 0.0), 2.0, 0.0), 0.0);
        let half = prob_improvement(&pred(2.0, 1.0), 2.0, 0.0);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ucb_is_linear_in_kappa() {
        let p = pred(3.0, 2.0);
        assert_eq!(ucb(&p, 0.0), 3.0);
        assert_eq!(ucb(&p, 1.0), 5.0);
        assert_eq!(ucb(&p, 2.0), 7.0);
    }

    #[test]
    fn cost_belief_delta_method() {
        // 3.6M samples at $3.6/h → k = 3600; speed 100 → cost $36.
        let b = cost_belief(&pred(100.0, 5.0), 3_600_000.0, 3.6).unwrap();
        assert!((b.mean - 36.0).abs() < 1e-9);
        // σ_cost = k σ/μ² = 3600×5/10000 = 1.8.
        assert!((b.stddev() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn cost_belief_rejects_near_zero_speed() {
        assert!(cost_belief(&pred(1.0, 0.9), 1e6, 1.0).is_none());
        assert!(cost_belief(&pred(0.0, 1.0), 1e6, 1.0).is_none());
        assert!(cost_belief(&pred(10.0, 1.0), 1e6, 1.0).is_some());
    }

    #[test]
    fn acquisition_kinds_rank_sensibly() {
        let best = 10.0;
        let promising = pred(12.0, 1.0);
        let hopeless = pred(2.0, 0.5);
        for kind in [
            AcquisitionKind::ExpectedImprovement,
            AcquisitionKind::UpperConfidenceBound { kappa: 2.0 },
            AcquisitionKind::ProbabilityOfImprovement { margin_frac: 0.05 },
        ] {
            let hi = kind.score(&promising, best);
            let lo = kind.score(&hopeless, best);
            assert!(hi > lo, "{kind:?}: {hi} vs {lo}");
            assert!(lo >= 0.0, "{kind:?} must be non-negative");
        }
    }

    #[test]
    fn ucb_score_is_excess_over_incumbent() {
        let kind = AcquisitionKind::UpperConfidenceBound { kappa: 2.0 };
        // μ + 2σ = 5 + 4 = 9, incumbent 7 → score 2.
        assert!((kind.score(&pred(5.0, 2.0), 7.0) - 2.0).abs() < 1e-12);
        // Below the incumbent → clamped to 0.
        assert_eq!(kind.score(&pred(1.0, 0.5), 7.0), 0.0);
    }

    #[test]
    fn poi_kind_uses_relative_margin() {
        let kind = AcquisitionKind::ProbabilityOfImprovement { margin_frac: 0.10 };
        // Needs > 11.0; belief centred at exactly 11 → probability 1/2.
        let p = kind.score(&pred(11.0, 1.0), 10.0);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ei_never_negative_or_nan() {
        for mean in [-5.0, 0.0, 1.0, 100.0] {
            for sd in [0.0, 0.1, 10.0] {
                let e = expected_improvement(&pred(mean, sd), 1.0, 0.0);
                assert!(e.is_finite() && e >= 0.0, "mean={mean} sd={sd} → {e}");
            }
        }
    }
}
