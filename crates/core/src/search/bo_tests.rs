//! Behavioural tests for the BO searchers (child module of `bo.rs` so it
//! can reach private fields like `HeterBo::0`).

use super::*;
use crate::deployment::{Deployment, SearchSpace};
use crate::env::SyntheticEnv;
use crate::observation::{Observation, StopReason};
use crate::search::policies::pruning::update_pruning;
use crate::search::trace::SearchTrace;
use mlcd_cloudsim::{Money, SimDuration};
use mlcd_perfmodel::{ThroughputModel, TrainingJob};
use std::collections::BTreeMap;

/// Concave single-type response surface peaking at n = 20.
fn concave_speed(d: &Deployment) -> f64 {
    let base = match d.itype {
        InstanceType::C54xlarge => 1.0,
        InstanceType::C5Xlarge => 0.4,
        InstanceType::P2Xlarge => 0.5,
        _ => 0.3,
    };
    base * (500.0 - 0.9 * (d.n as f64 - 20.0).powi(2)).max(20.0)
}

fn make_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
    let job = TrainingJob::resnet_cifar10();
    let space = SearchSpace::new(
        &[InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
        50,
        &job,
        &ThroughputModel::default(),
    );
    SyntheticEnv::new(space, 5e6, concave_speed as fn(&Deployment) -> f64)
}

#[test]
fn builder_configs_match_the_pre_refactor_literals() {
    // The builder-made constructor configs must equal the exact structs
    // the searchers shipped with before the policy split (field for
    // field — a silent default drift here would un-pin every golden
    // snapshot).
    let expect_heterbo = BoConfig {
        init: InitStrategy::TypeSweep,
        ei_rel_threshold: 0.10,
        ci_stop: true,
        cost_penalty: true,
        constraint_aware: true,
        reserve_protection: true,
        concave_prior: true,
        max_steps: 8,
        min_obs_before_stop: 6,
        account_sunk: true,
        parallel_init: false,
        acquisition: AcquisitionKind::ExpectedImprovement,
        gp_refit_every: 1,
        gp_warm_start: false,
        gp_warm_burnin: 8,
        gp_warm_restarts: 3,
        seed: 42,
    };
    assert_eq!(*HeterBo::seeded(42).core().config(), expect_heterbo);

    let expect_convbo = BoConfig {
        init: InitStrategy::RandomPoints(2),
        ei_rel_threshold: 0.001,
        ci_stop: false,
        cost_penalty: false,
        constraint_aware: false,
        reserve_protection: false,
        concave_prior: false,
        max_steps: 28,
        min_obs_before_stop: 12,
        account_sunk: false,
        parallel_init: false,
        acquisition: AcquisitionKind::ExpectedImprovement,
        gp_refit_every: 1,
        gp_warm_start: false,
        gp_warm_burnin: 8,
        gp_warm_restarts: 3,
        seed: 42,
    };
    assert_eq!(ConvBo::base_config(42), expect_convbo);

    let expect_cherrypick = BoConfig {
        init: InitStrategy::RandomPoints(3),
        ei_rel_threshold: 0.10,
        max_steps: 27,
        min_obs_before_stop: 10,
        seed: 42,
        ..expect_convbo.clone()
    };
    assert_eq!(*CherryPick::seeded(42).0.config(), expect_cherrypick);

    // Budget-aware variants flip exactly the three guard flags.
    let imprd = ConvBo::budget_aware(42);
    let expect_imprd = BoConfig {
        reserve_protection: true,
        constraint_aware: true,
        account_sunk: true,
        ..expect_convbo
    };
    assert_eq!(*imprd.config(), expect_imprd);
}

#[test]
fn heterbo_finds_near_optimal_deployment() {
    let mut env = make_env();
    let out = HeterBo::seeded(1).search(&mut env, &Scenario::FastestUnlimited);
    let best = out.best.expect("should find something");
    // True optimum: c5.4xlarge n=20 at 500 samples/s.
    assert_eq!(best.deployment.itype, InstanceType::C54xlarge);
    assert!(best.speed > 450.0, "found {} at {}, want near 500", best.speed, best.deployment);
}

#[test]
fn heterbo_initialises_with_single_nodes() {
    let mut env = make_env();
    let out = HeterBo::seeded(2).search(&mut env, &Scenario::FastestUnlimited);
    // First three probes are the three types at n=1, cheapest first.
    assert!(out.steps.len() >= 3);
    for step in &out.steps[..3] {
        assert_eq!(step.observation.deployment.n, 1, "init probe {:?}", step.observation);
    }
    assert_eq!(out.steps[0].observation.deployment.itype, InstanceType::C5Xlarge);
}

#[test]
fn heterbo_respects_budget() {
    let mut env = make_env();
    let budget = Money::from_dollars(60.0);
    let out = HeterBo::seeded(3).search(&mut env, &Scenario::FastestWithBudget(budget));
    let best = out.best.expect("should find something");
    let train_cost = Scenario::training_cost(&best.deployment, 5e6, best.speed);
    let total = out.profile_cost + train_cost;
    assert!(
        total.dollars() <= budget.dollars() + 1e-6,
        "HeterBO blew the budget: profiling {} + training {} > {}",
        out.profile_cost,
        train_cost,
        budget
    );
}

#[test]
fn heterbo_respects_deadline() {
    let mut env = make_env();
    let deadline = SimDuration::from_hours(6.0);
    let out = HeterBo::seeded(4).search(&mut env, &Scenario::CheapestWithDeadline(deadline));
    let best = out.best.expect("should find something");
    let train_t = Scenario::training_time(5e6, best.speed);
    assert!(
        (out.profile_time + train_t).as_hours() <= deadline.as_hours() + 1e-9,
        "HeterBO blew the deadline: profiling {:.2} h + training {:.2} h",
        out.profile_time.as_hours(),
        train_t.as_hours()
    );
}

#[test]
fn heterbo_cheaper_profiling_than_convbo() {
    // The headline claim, on the synthetic surface, in the scenario
    // where it is structural: under a budget, HeterBO's cost-penalised
    // acquisition and protective reserve keep probing spend low while
    // ConvBO probes wherever EI points. Averaged over seeds to avoid
    // single-draw luck.
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));
    let (mut h_cost, mut c_cost, mut h_speed, mut c_speed) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..3 {
        let mut env_h = make_env();
        let h = HeterBo::seeded(seed).search(&mut env_h, &scenario);
        let mut env_c = make_env();
        let c = ConvBo::seeded(seed).search(&mut env_c, &scenario);
        h_cost += h.profile_cost.dollars();
        c_cost += c.profile_cost.dollars();
        h_speed += h.best.unwrap().speed;
        c_speed += c.best.unwrap().speed;
    }
    assert!(
        h_cost < c_cost,
        "HeterBO mean profiling ${:.2} vs ConvBO ${:.2}",
        h_cost / 3.0,
        c_cost / 3.0
    );
    // And it still finds comparable deployments on average.
    assert!(h_speed >= c_speed * 0.8, "HeterBO {h_speed} vs ConvBO {c_speed}");
}

#[test]
fn concave_prior_prunes_scale_out() {
    // After observing a decline, no probe of that type goes further out.
    let mut env = make_env();
    let out = HeterBo::seeded(6).search(&mut env, &Scenario::FastestUnlimited);
    // Find, per type, the first adjacent-observed decline; later steps
    // must not exceed it.
    let mut decline_at: BTreeMap<InstanceType, u32> = BTreeMap::new();
    let mut seen: Vec<Observation> = Vec::new();
    for step in &out.steps {
        let o = step.observation;
        if let Some(&cap) = decline_at.get(&o.deployment.itype) {
            assert!(
                o.deployment.n <= cap,
                "probed {} beyond pruned cap {} (step {})",
                o.deployment,
                cap,
                step.index
            );
        }
        seen.push(o);
        let mut map = BTreeMap::new();
        update_pruning(&seen, &mut map);
        decline_at = map;
    }
}

#[test]
fn convbo_ignores_constraints_and_can_violate() {
    // With a tiny budget, ConvBO happily profiles expensive clusters.
    let mut env = make_env();
    let budget = Money::from_dollars(5.0);
    let out = ConvBo::seeded(7).search(&mut env, &Scenario::FastestWithBudget(budget));
    // ConvBO still returns its objective-best; its profiling spend alone
    // may exceed the budget.
    assert!(out.best.is_some());
    let total = out.profile_cost;
    // (Not asserting violation must happen for every seed — but the
    // search must NOT have stopped due to reserve protection.)
    assert_ne!(out.stop_reason, StopReason::ReserveProtection);
    let _ = total;
}

#[test]
fn budget_aware_variants_stop_in_time() {
    let budget = Money::from_dollars(40.0);
    let scenario = Scenario::FastestWithBudget(budget);
    for core in [ConvBo::budget_aware(8), CherryPick::budget_aware(8, None)] {
        let mut env = make_env();
        let out = core.search(&mut env, &scenario);
        if let Some(best) = out.best {
            let train = Scenario::training_cost(&best.deployment, 5e6, best.speed);
            assert!(
                (out.profile_cost + train).dollars() <= budget.dollars() + 1e-6,
                "{}: profiling {} + training {}",
                core.name(),
                out.profile_cost,
                train
            );
        }
    }
}

#[test]
fn cherrypick_sticks_to_coarse_grid_and_trimmed_types() {
    let mut env = make_env();
    let cp = CherryPick::with_experience(9, vec![InstanceType::C54xlarge]);
    let out = cp.search(&mut env, &Scenario::FastestUnlimited);
    for step in &out.steps {
        let d = step.observation.deployment;
        assert_eq!(d.itype, InstanceType::C54xlarge);
        assert!(CherryPick::DEFAULT_NODE_GRID.contains(&d.n), "off-grid probe {d}");
    }
    assert!(out.best.is_some());
}

#[test]
fn ucb_and_poi_acquisitions_also_find_the_optimum() {
    // The acquisition choice is pluggable; on the easy synthetic
    // surface every standard kind should land near the peak.
    for kind in [
        AcquisitionKind::UpperConfidenceBound { kappa: 2.0 },
        AcquisitionKind::ProbabilityOfImprovement { margin_frac: 0.02 },
    ] {
        let mut cfg = HeterBo::seeded(21).core().config().clone();
        cfg.acquisition = kind;
        let core = BoCore::new("acq-variant", cfg);
        let mut env = make_env();
        let out = core.search(&mut env, &Scenario::FastestUnlimited);
        let best = out.best.expect("found something");
        assert!(best.speed > 430.0, "{kind:?} found only {} at {}", best.speed, best.deployment);
    }
}

#[test]
fn parallel_init_probes_the_same_points() {
    // On the synthetic env (no concurrency support → sequential
    // fallback) parallel-init must behave identically.
    let mut env_a = make_env();
    let a = HeterBo::seeded(13).search(&mut env_a, &Scenario::FastestUnlimited);
    let mut env_b = make_env();
    let b = HeterBo::with_parallel_init(13).search(&mut env_b, &Scenario::FastestUnlimited);
    let firsts = |o: &SearchOutcome| {
        o.steps.iter().take(3).map(|s| s.observation.deployment).collect::<Vec<_>>()
    };
    assert_eq!(firsts(&a), firsts(&b));
    assert_eq!(a.best.unwrap().deployment, b.best.unwrap().deployment);
}

#[test]
fn searches_are_deterministic_per_seed() {
    let run = |seed| {
        let mut env = make_env();
        let out = HeterBo::seeded(seed).search(&mut env, &Scenario::FastestUnlimited);
        (out.best.map(|b| b.deployment), out.steps.len())
    };
    assert_eq!(run(11), run(11));
}

#[test]
fn traced_search_is_bit_identical_to_untraced() {
    // The trace layer is pure observation: running the same searcher with
    // a collecting sink must reproduce the silent run bit for bit, for
    // every searcher family.
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(120.0));
    let searchers: Vec<Box<dyn Searcher>> = vec![
        Box::new(HeterBo::seeded(23)),
        Box::new(ConvBo::seeded(23)),
        Box::new(CherryPick::seeded(23)),
    ];
    for s in searchers {
        let mut env_a = make_env();
        let silent = s.search(&mut env_a, &scenario);
        let mut env_b = make_env();
        let mut trace = SearchTrace::default();
        let traced = s.search_traced(&mut env_b, &scenario, &mut trace);
        assert_eq!(silent.steps.len(), traced.steps.len(), "{}", s.name());
        for (x, y) in silent.steps.iter().zip(&traced.steps) {
            assert_eq!(x.observation.deployment, y.observation.deployment);
            assert_eq!(x.observation.speed.to_bits(), y.observation.speed.to_bits());
            assert_eq!(x.cum_profile_cost, y.cum_profile_cost);
        }
        assert_eq!(silent.stop_reason, traced.stop_reason);
        assert_eq!(trace.probes().count(), traced.steps.len(), "{}", s.name());
        assert_eq!(trace.stop_reason(), Some(traced.stop_reason));
    }
}

#[test]
fn warm_started_searches_are_deterministic_at_every_burnin_boundary() {
    // The warm-start restart shrink kicks in when the observation count
    // crosses `gp_warm_burnin` mid-search. Wherever that boundary
    // lands — never (large burn-in), immediately (0), or mid-loop —
    // two runs with the same seed must produce identical trajectories,
    // step for step and observation for observation.
    for burnin in [0usize, 4, 6, 100] {
        let run = || {
            let mut h = HeterBo::seeded(17);
            h.0.cfg.gp_warm_start = true;
            h.0.cfg.gp_warm_burnin = burnin;
            let mut env = make_env();
            h.search(&mut env, &Scenario::FastestUnlimited)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.steps.len(), b.steps.len(), "burnin {burnin}");
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert_eq!(x.observation.deployment, y.observation.deployment);
            assert_eq!(x.observation.speed, y.observation.speed);
            assert_eq!(x.observation.profile_cost, y.observation.profile_cost);
        }
        assert_eq!(a.best.map(|o| o.deployment), b.best.map(|o| o.deployment), "burnin {burnin}");
        assert_eq!(a.profile_cost, b.profile_cost);
        assert_eq!(a.profile_time, b.profile_time);
    }
}

#[test]
fn warm_start_on_is_still_deterministic_and_finds_the_optimum() {
    let run = || {
        let mut h = HeterBo::seeded(19);
        h.0.cfg.gp_warm_start = true;
        let mut env = make_env();
        h.search(&mut env, &Scenario::FastestUnlimited)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.best.as_ref().unwrap().deployment, b.best.as_ref().unwrap().deployment);
    assert_eq!(a.steps.len(), b.steps.len());
    assert!(a.best.unwrap().speed > 430.0);
}

#[test]
fn empty_space_yields_nothing_feasible() {
    // A pool emptied by type restriction.
    let mut env = make_env();
    let core =
        BoCore::new("empty", ConvBo::base_config(0)).with_types(vec![InstanceType::C5n9xlarge]);
    let out = core.search(&mut env, &Scenario::FastestUnlimited);
    assert!(out.best.is_none());
    assert_eq!(out.stop_reason, StopReason::NothingFeasible);
}

#[test]
fn max_steps_is_respected() {
    let mut env = make_env();
    let mut cfg = ConvBo::base_config(1);
    cfg.ei_rel_threshold = 0.0; // never converge
    cfg.max_steps = 5;
    let out = BoCore::new("capped", cfg).search(&mut env, &Scenario::FastestUnlimited);
    // max_steps caps BO-loop probes; the 2 random init probes are extra.
    assert_eq!(out.steps.len(), 2 + 5);
    assert_eq!(out.stop_reason, StopReason::MaxSteps);
}
