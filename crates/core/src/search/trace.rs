//! Structured search-trace events.
//!
//! The [`crate::search::kernel::SearchKernel`] narrates every decision it
//! takes — init probes, candidate scores, prunes, reserve blocks,
//! incumbent changes, the stop — as [`TraceEvent`]s pushed into a
//! [`TraceSink`]. The trace is pure observation: recording it never
//! perturbs the search (the golden snapshot tests pin this), so the same
//! kernel run can be silent ([`NullSink`]) or fully narrated
//! ([`SearchTrace`]) with bit-identical outcomes.

use crate::deployment::Deployment;
use crate::observation::{Observation, StopReason};
use mlcd_cloudsim::{Money, SimDuration};
use serde::{Deserialize, Serialize};

/// Why the kernel discarded a candidate before probing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruneReason {
    /// The TEI filter (paper eqs. 5–6): even at an optimistic speed the
    /// candidate could not finish within the remaining deadline/budget
    /// after paying its own probing cost.
    TeiInfeasible,
    /// The concave scale-out prior observed a speed decline for this
    /// type and capped all larger scale-outs.
    ConcavePrior,
}

/// One event of the kernel's structured trace, in emission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An initialisation probe completed.
    InitProbe {
        /// What the probe observed.
        observation: Observation,
        /// Profiling wall-clock so far, including this probe.
        cum_profile_time: SimDuration,
        /// Profiling spend so far, including this probe.
        cum_profile_cost: Money,
    },
    /// A BO-loop probe completed.
    Probe {
        /// What the probe observed.
        observation: Observation,
        /// Profiling wall-clock so far, including this probe.
        cum_profile_time: SimDuration,
        /// Profiling spend so far, including this probe.
        cum_profile_cost: Money,
    },
    /// The environment refused a probe (quota, spot revocation…).
    ProbeFailed {
        /// The deployment whose probe failed.
        deployment: Deployment,
        /// The environment's error, rendered.
        error: String,
    },
    /// The acquisition policy scored a candidate.
    CandidateScored {
        /// The candidate.
        deployment: Deployment,
        /// Expected improvement in the scenario's utility units (for
        /// frontier candidates: the discounted scaling bonus).
        ei: f64,
        /// Probability of a meaningful improvement (1.0 for frontier
        /// candidates, which bypass the GP).
        poi: f64,
        /// Final rank score: `ei` divided by the probing-cost penalty.
        score: f64,
    },
    /// A candidate was discarded without probing.
    CandidatePruned {
        /// The discarded candidate.
        deployment: Deployment,
        /// Why it was discarded.
        reason: PruneReason,
    },
    /// A pruner capped a type's scale-out (concave prior bend observed).
    ScaleOutCapped {
        /// The instance type whose curve bent.
        itype: mlcd_cloudsim::InstanceType,
        /// Scale-outs strictly above this node count are pruned.
        cap: u32,
    },
    /// The protective reserve refused to start a probe.
    ReserveBlocked {
        /// The candidate the reserve blocked.
        deployment: Deployment,
    },
    /// The incumbent strictly improved on the best traced so far.
    ///
    /// Emitted only for strict utility improvements, so consecutive
    /// events form a monotone increasing utility sequence even when
    /// feasibility-aware ranking temporarily demotes the incumbent.
    IncumbentChanged {
        /// The new incumbent observation.
        observation: Observation,
        /// Its utility under the scenario's objective.
        utility: f64,
    },
    /// The search ended.
    Stopped {
        /// Why it ended.
        reason: StopReason,
    },
}

/// Receives trace events as the kernel emits them.
pub trait TraceSink {
    /// Record one event.
    fn record(&mut self, event: TraceEvent);
}

/// Discards every event — the zero-overhead sink for untraced searches.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// An in-memory event stream collected from one search.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SearchTrace {
    /// Every event, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for SearchTrace {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

impl SearchTrace {
    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every probe observation (init sweep and BO loop), in probe order.
    pub fn probes(&self) -> impl Iterator<Item = &Observation> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::InitProbe { observation, .. } | TraceEvent::Probe { observation, .. } => {
                Some(observation)
            }
            _ => None,
        })
    }

    /// The cumulative profiling spend after the last traced probe.
    pub fn final_probe_spend(&self) -> Option<Money> {
        self.events.iter().rev().find_map(|e| match e {
            TraceEvent::InitProbe { cum_profile_cost, .. }
            | TraceEvent::Probe { cum_profile_cost, .. } => Some(*cum_profile_cost),
            _ => None,
        })
    }

    /// The traced stop reason, if the search ran to completion.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.events.iter().rev().find_map(|e| match e {
            TraceEvent::Stopped { reason } => Some(*reason),
            _ => None,
        })
    }

    /// The utilities of the incumbent-change events, in order.
    pub fn incumbent_utilities(&self) -> Vec<f64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::IncumbentChanged { utility, .. } => Some(*utility),
                _ => None,
            })
            .collect()
    }

    /// Render the stream as JSON Lines — one event object per line, the
    /// format `mlcd search --trace <path>` writes and the service journal
    /// extends. A serialisation failure surfaces as an error instead of a
    /// panic so a long-running server can degrade the one session rather
    /// than lose a worker thread.
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e)?);
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd_cloudsim::InstanceType;

    fn obs(n: u32, speed: f64) -> Observation {
        Observation {
            deployment: Deployment::new(InstanceType::C5Xlarge, n),
            speed,
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.5),
        }
    }

    #[test]
    fn sink_collects_in_order_and_jsonl_is_one_object_per_line() {
        let mut t = SearchTrace::default();
        t.record(TraceEvent::InitProbe {
            observation: obs(1, 100.0),
            cum_profile_time: SimDuration::from_mins(10.0),
            cum_profile_cost: Money::from_dollars(0.5),
        });
        t.record(TraceEvent::Stopped { reason: StopReason::Converged });
        assert_eq!(t.len(), 2);
        assert_eq!(t.probes().count(), 1);
        assert_eq!(t.stop_reason(), Some(StopReason::Converged));
        assert_eq!(t.final_probe_spend(), Some(Money::from_dollars(0.5)));
        let jsonl = t.to_jsonl().unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(matches!(v, serde_json::Value::Object(_)));
        }
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.record(TraceEvent::Stopped { reason: StopReason::MaxSteps });
        // Nothing to assert beyond "it compiles and does not panic".
    }

    #[test]
    fn incumbent_utilities_in_order() {
        let mut t = SearchTrace::default();
        for (u, speed) in [(1.0, 10.0), (2.0, 20.0)] {
            t.record(TraceEvent::IncumbentChanged { observation: obs(1, speed), utility: u });
        }
        assert_eq!(t.incumbent_utilities(), vec![1.0, 2.0]);
    }
}
