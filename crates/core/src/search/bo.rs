//! The Bayesian-optimisation core and the three BO searchers built on it:
//! HeterBO (the paper's contribution), ConvBO and CherryPick (the
//! baselines), plus the Fig 18 budget-aware "improved" baseline variants.
//!
//! One loop implements all of them; the paper's mechanisms are independent
//! switches on [`BoConfig`] (see the table in [`crate::search`]). This
//! keeps the comparison honest — the baselines differ from HeterBO by
//! exactly the mechanisms the paper claims matter, nothing else — and
//! gives the ablation benchmarks their knobs for free.

use crate::acquisition::{cost_belief, prob_improvement, AcquisitionKind};
use crate::deployment::Deployment;
use crate::env::{ProfileError, ProfilingEnv};
use crate::observation::{Observation, SearchOutcome, SearchStep, StopReason};
use crate::scenario::{projection_margin, Objective, Scenario};
use crate::search::surrogate::{RefitPolicy, Surrogate};
use crate::search::{pick_incumbent, Searcher};
use mlcd_cloudsim::InstanceType;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// How the first probes are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Conventional BO: `k` uniformly random candidates — which can land
    /// on a 50-node GPU cluster and burn a large slice of the budget
    /// before the model knows anything.
    RandomPoints(usize),
    /// HeterBO (§III-C "Initial points"): one single-node probe of each
    /// instance type, cheapest first — bounded cost, full scale-up
    /// coverage.
    TypeSweep,
}

/// Switches for the paper's mechanisms.
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Initialisation strategy.
    pub init: InitStrategy,
    /// Relative expected-improvement stop threshold (fraction of the
    /// incumbent's utility).
    pub ei_rel_threshold: f64,
    /// HeterBO's confidence-aware stop: stop only when *no* candidate has
    /// ≥5 % probability of improving by more than the threshold (the
    /// paper's "95 % confidence interval of the expected improvement").
    pub ci_stop: bool,
    /// Divide each candidate's EI by its own probing cost (paper
    /// eqs. 7–8).
    pub cost_penalty: bool,
    /// Constraint-aware acquisition: discard candidates whose TEI
    /// (paper eqs. 5–6) says they can never pay off, and rank incumbents
    /// with the scenario's feasibility filter.
    pub constraint_aware: bool,
    /// Protective mechanism: never start a probe that would eat the
    /// reserve needed to finish training on the current best.
    pub reserve_protection: bool,
    /// Concave scale-out prior: once two neighbouring probes of a type
    /// show declining speed, prune all larger scale-outs of that type.
    pub concave_prior: bool,
    /// Cap on BO-loop probes *after* initialisation (the init sweep is
    /// budgeted separately — a 19-type sweep must not starve the loop).
    pub max_steps: usize,
    /// Minimum observations before a convergence-based stop may fire —
    /// guards against declaring victory off a 2-point surrogate.
    pub min_obs_before_stop: usize,
    /// Whether profiling time/money already spent counts against the
    /// deadline/budget when ranking deployments. HeterBO: yes — that is
    /// the paper's whole point. ConvBO/CherryPick: no — they pick a
    /// deployment whose *training alone* fits the constraint and then
    /// overrun by roughly their profiling overhead, exactly the violation
    /// the paper measures in Figs 10–11 and 14.
    pub account_sunk: bool,
    /// Run the initial probes as one concurrent batch (the type sweep is
    /// embarrassingly parallel): same money, wall-clock of the slowest
    /// probe only. An extension beyond the paper, off by default.
    pub parallel_init: bool,
    /// Which acquisition function ranks candidates. The paper (and every
    /// searcher here by default) uses EI; UCB and POI are selectable for
    /// the acquisition-choice comparison.
    pub acquisition: AcquisitionKind,
    /// Refit GP hyperparameters every k-th observation and extend the
    /// posterior incrementally (`O(n²)`) in between. 1 = refit every step
    /// (the default; exact but `O(n³)` per step).
    pub gp_refit_every: usize,
    /// Warm-start each GP refit from the previous step's fitted
    /// hyperparameters (extra optimiser start; deterministic). See
    /// [`RefitPolicy::warm_start`]. The paper-faithful constructors
    /// leave this off: warm starts can land a (better) different
    /// likelihood optimum, which perturbs search trajectories and the
    /// seed-pinned figure reproductions. Flip it on for speed — the
    /// `search_gp_refits` bench measures the whole-search effect.
    pub gp_warm_start: bool,
    /// Observation count from which warm-started refits shrink their
    /// restart budget. See [`RefitPolicy::warm_burnin`].
    pub gp_warm_burnin: usize,
    /// Latin-hypercube restarts kept per refit past the burn-in. See
    /// [`RefitPolicy::warm_restarts`].
    pub gp_warm_restarts: usize,
    /// RNG seed (init points, tie-breaks, GP restarts).
    pub seed: u64,
}

/// Speed must decline by more than this fraction between neighbouring
/// scale-outs before the concave prior prunes (guards against noise).
const CONCAVE_MARGIN: f64 = 0.03;
/// CI-stop significance: stop when P(improvement > threshold) < this for
/// every candidate.
const CI_ALPHA: f64 = 0.05;
/// Optimism used in the TEI projection: candidate speed at +2σ.
const TEI_SIGMAS: f64 = 2.0;
/// A probe can cost more than its quote (stability extensions,
/// provisioning jitter, billing round-ups); reserve arithmetic scales the
/// quoted money by this factor…
const PROBE_COST_OVERRUN: f64 = 1.6;
/// …and the quoted time by this one.
const PROBE_TIME_OVERRUN: f64 = 1.3;
/// The cold-start exploration fallback may burn at most this fraction of
/// the deadline/budget before conceding that the constraint is lost.
const HATCH_FRACTION: f64 = 0.5;
/// How much of the linear-scaling upper bound a frontier probe is credited
/// with when competing against GP-EI scores (scaling is sublinear in
/// reality, so the bound is discounted).
const FRONTIER_DISCOUNT: f64 = 0.25;

/// The shared BO loop.
pub struct BoCore {
    name: &'static str,
    cfg: BoConfig,
    /// CherryPick's experience trimming: only search these types.
    restrict_types: Option<Vec<InstanceType>>,
    /// CherryPick's coarse scale-out grid.
    coarse_grid: Option<Vec<u32>>,
}

impl BoCore {
    /// Build a core with a display name.
    pub fn new(name: &'static str, cfg: BoConfig) -> Self {
        BoCore { name, cfg, restrict_types: None, coarse_grid: None }
    }

    /// Restrict candidates to the given types.
    pub fn with_types(mut self, types: Vec<InstanceType>) -> Self {
        self.restrict_types = Some(types);
        self
    }

    /// Restrict candidate node counts to a coarse grid.
    pub fn with_node_grid(mut self, grid: Vec<u32>) -> Self {
        self.coarse_grid = Some(grid);
        self
    }

    /// The configuration (for ablation reporting).
    pub fn config(&self) -> &BoConfig {
        &self.cfg
    }

    fn candidate_pool(&self, env: &dyn ProfilingEnv) -> Vec<Deployment> {
        env.space()
            .candidates()
            .iter()
            .filter(|d| {
                self.restrict_types.as_ref().is_none_or(|ts| ts.contains(&d.itype))
                    && self.coarse_grid.as_ref().is_none_or(|g| g.contains(&d.n))
            })
            .copied()
            .collect()
    }

    /// Raw-constraint guard used before an incumbent exists: a probe may
    /// not by itself blow the deadline/budget.
    fn probe_fits_raw(&self, env: &dyn ProfilingEnv, scenario: &Scenario, d: &Deployment) -> bool {
        if !self.cfg.reserve_protection {
            return true;
        }
        let (qt, qc) = env.quote(d);
        match scenario {
            Scenario::FastestUnlimited => true,
            Scenario::CheapestWithDeadline(tmax) => {
                (env.elapsed() + qt * PROBE_TIME_OVERRUN).as_secs() <= tmax.as_secs()
            }
            Scenario::FastestWithBudget(cmax) => {
                (env.spent() + qc.scale(PROBE_COST_OVERRUN)).dollars() <= cmax.dollars()
            }
        }
    }

    /// Whether the incumbent could still finish within the constraint if
    /// training started right now (with headroom). Only such an incumbent
    /// is worth protecting a reserve for.
    fn incumbent_feasible(
        env: &dyn ProfilingEnv,
        scenario: &Scenario,
        incumbent: &Observation,
    ) -> bool {
        let s = env.total_samples();
        match scenario {
            Scenario::FastestUnlimited => true,
            Scenario::CheapestWithDeadline(tmax) => {
                let m = projection_margin(incumbent.deployment.n);
                let train = Scenario::training_time(s, incumbent.speed) * m;
                (env.elapsed() + train).as_secs() <= tmax.as_secs()
            }
            Scenario::FastestWithBudget(cmax) => {
                let m = projection_margin(incumbent.deployment.n);
                let train =
                    Scenario::training_cost(&incumbent.deployment, s, incumbent.speed).scale(m);
                (env.spent() + train).dollars() <= cmax.dollars()
            }
        }
    }

    /// The protective reserve (§III-C "Stop condition"): starting this
    /// probe must leave enough deadline/budget to finish training on the
    /// incumbent. When no *feasible* incumbent exists yet, there is
    /// nothing to protect — exploration continues under the raw guard
    /// (a probe may never single-handedly blow the constraint).
    fn probe_respects_reserve(
        &self,
        env: &dyn ProfilingEnv,
        scenario: &Scenario,
        d: &Deployment,
        incumbent: &Observation,
    ) -> bool {
        if !self.cfg.reserve_protection {
            return true;
        }
        if !Self::incumbent_feasible(env, scenario, incumbent) {
            return self.probe_fits_raw(env, scenario, d);
        }
        let s = env.total_samples();
        let (qt, qc) = env.quote(d);
        match scenario {
            Scenario::FastestUnlimited => true,
            Scenario::CheapestWithDeadline(tmax) => {
                let m = projection_margin(incumbent.deployment.n);
                let train = Scenario::training_time(s, incumbent.speed) * m;
                (env.elapsed() + qt * PROBE_TIME_OVERRUN + train).as_secs() <= tmax.as_secs()
            }
            Scenario::FastestWithBudget(cmax) => {
                let m = projection_margin(incumbent.deployment.n);
                let train =
                    Scenario::training_cost(&incumbent.deployment, s, incumbent.speed).scale(m);
                (env.spent() + qc.scale(PROBE_COST_OVERRUN) + train).dollars() <= cmax.dollars()
            }
        }
    }

    /// Best observed per-node speed for each type: `max over obs of
    /// speed/n`. Parallel efficiency only falls with scale, so
    /// `rate × n` is a true upper bound on any same-type deployment's
    /// speed — the safe optimism TEI prunes against.
    fn per_type_speed_rate(observations: &[Observation]) -> HashMap<InstanceType, f64> {
        let mut rates: HashMap<InstanceType, f64> = HashMap::new();
        for o in observations {
            let rate = o.speed / o.deployment.n as f64;
            let e = rates.entry(o.deployment.itype).or_insert(rate);
            *e = e.max(rate);
        }
        rates
    }

    /// The rising branch of the concave prior, used for *exploration*: for
    /// each type whose speed curve has not yet been seen to bend (no
    /// pruning cap), the next scale-out step — a doubling of the largest
    /// probed size — might still multiply speed. A GP fitted on the swept
    /// single-node probes is blind to this, so these frontier candidates
    /// get a discounted linear-scaling utility bonus and block convergence
    /// while any of them remains promising.
    ///
    /// Returns `(candidate, discounted utility-improvement bonus)` pairs.
    /// With `chase_speed` the bonus is in speed units regardless of the
    /// scenario objective — used when the incumbent cannot meet a deadline
    /// and raw speed is what buys feasibility (under ~linear scaling,
    /// scale-out leaves *cost* flat, so a cost bonus would never fire).
    #[allow(clippy::too_many_arguments)]
    fn frontier_candidates(
        &self,
        unprobed: &[Deployment],
        observations: &[Observation],
        pruned_above: &HashMap<InstanceType, u32>,
        rates: &HashMap<InstanceType, f64>,
        scenario: &Scenario,
        incumbent: &Observation,
        chase_speed: bool,
    ) -> Vec<(Deployment, f64)> {
        if !self.cfg.concave_prior {
            return Vec::new();
        }
        // Largest probed n per type.
        let mut n_max: HashMap<InstanceType, u32> = HashMap::new();
        for o in observations {
            let e = n_max.entry(o.deployment.itype).or_insert(o.deployment.n);
            *e = (*e).max(o.deployment.n);
        }
        // The frontier reasons in speed units: either the objective is
        // speed, or a deadline incumbent is infeasible and speed buys
        // feasibility. For a *feasible* cost objective, scale-out cannot
        // reduce cost under (sub)linear scaling, so there is no frontier.
        if scenario.objective() == Objective::MinCost && !chase_speed {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (&t, &nm) in &n_max {
            if pruned_above.contains_key(&t) {
                continue; // curve already bent: exploit via the GP instead
            }
            let Some(&rate) = rates.get(&t) else { continue };
            // Jump to the larger of (a) a factor-4 geometric step — three
            // probes cover a 50-node range — and (b) the smallest scale at
            // which this type's linear bound could beat the incumbent at
            // all (no point probing scales that cannot win even in the
            // best case).
            let n_beat = (incumbent.speed / rate).ceil().max(1.0) as u32;
            let n_target = (nm.saturating_mul(4)).max(n_beat.saturating_add(1)).max(nm + 1);
            let step = unprobed
                .iter()
                .filter(|d| d.itype == t && d.n >= n_target)
                .min_by_key(|d| d.n)
                .or_else(|| {
                    // Nothing at or past the target: take the largest
                    // remaining step of this type, if it can still win.
                    unprobed
                        .iter()
                        .filter(|d| d.itype == t && d.n > nm && rate * d.n as f64 > incumbent.speed)
                        .max_by_key(|d| d.n)
                });
            let Some(&d) = step else { continue };
            let bound_speed = rate * d.n as f64;
            let bonus = (bound_speed - incumbent.speed).max(0.0) * FRONTIER_DISCOUNT;
            if bonus > 0.0 {
                out.push((d, bonus));
            }
        }
        out
    }

    /// The TEI filter (paper eqs. 5–6): even at an optimistic speed, could
    /// this candidate still finish within the remaining deadline/budget
    /// after paying its own probing cost?
    ///
    /// "Optimistic" is the larger of the GP's +2σ belief and the
    /// linear-scaling bound from the candidate's own type (a GP fitted on
    /// single-node probes cannot see that scale-out multiplies speed, and
    /// pruning on that blindness would discard the true optimum).
    ///
    /// Normally the filter waits until the surrogate rests on
    /// `min_obs_before_stop` observations — budget safety is the reserve's
    /// job and early pruning would only cost exploration. The exception is
    /// `budget_rescue`: a budget incumbent is infeasible, so the search is
    /// trying to buy feasibility back while every probe drains the very
    /// dollars training needs. There the filter activates immediately — a
    /// candidate whose own completion cannot fit even optimistically can
    /// never restore feasibility, and probing it just digs deeper (the
    /// failure mode of a random init landing on a deployment whose
    /// training alone overruns the budget). Deadline infeasibility gets no
    /// such early pruning: it is repaired by *finding speed*, which is the
    /// chase-speed frontier's job.
    #[allow(clippy::too_many_arguments)]
    fn tei_feasible(
        &self,
        env: &dyn ProfilingEnv,
        scenario: &Scenario,
        d: &Deployment,
        pred: &mlcd_gp::Prediction,
        n_obs: usize,
        rates: &HashMap<InstanceType, f64>,
        budget_rescue: bool,
    ) -> bool {
        if !self.cfg.constraint_aware {
            return true;
        }
        if n_obs < self.cfg.min_obs_before_stop && !budget_rescue {
            return true;
        }
        let gp_opt = pred.mean + TEI_SIGMAS * pred.stddev();
        let scaling_bound = rates.get(&d.itype).map_or(0.0, |r| r * d.n as f64);
        let optimistic = gp_opt.max(scaling_bound).max(1e-9);
        let s = env.total_samples();
        let (qt, qc) = env.quote(d);
        match scenario {
            Scenario::FastestUnlimited => true,
            Scenario::CheapestWithDeadline(tmax) => {
                let train = s / optimistic;
                tmax.as_secs() - (env.elapsed() + qt).as_secs() - train >= 0.0
            }
            Scenario::FastestWithBudget(cmax) => {
                let train_cost = d.hourly_cost().dollars() * (s / optimistic) / 3600.0;
                cmax.dollars() - (env.spent() + qc).dollars() - train_cost >= 0.0
            }
        }
    }

    /// EI of a candidate in the scenario's utility units, given the
    /// incumbent's utility.
    fn utility_ei(
        &self,
        scenario: &Scenario,
        total_samples: f64,
        d: &Deployment,
        pred: &mlcd_gp::Prediction,
        incumbent: &Observation,
    ) -> f64 {
        let kind = self.cfg.acquisition;
        match scenario.objective() {
            Objective::MaxSpeed => kind.score(pred, incumbent.speed),
            Objective::MinCost => {
                let inc_cost =
                    Scenario::training_cost(&incumbent.deployment, total_samples, incumbent.speed)
                        .dollars();
                match cost_belief(pred, total_samples, d.hourly_cost().dollars()) {
                    Some(cb) => {
                        // Minimisation: negate both sides.
                        let neg = mlcd_gp::Prediction {
                            mean: -cb.mean,
                            var: cb.var,
                            var_with_noise: cb.var_with_noise,
                        };
                        kind.score(&neg, -inc_cost)
                    }
                    // Speed belief too uncertain for a cost belief: score
                    // by the speed acquisition scaled into cost units via
                    // the incumbent.
                    None => {
                        kind.score(pred, incumbent.speed) * inc_cost / incumbent.speed.max(1e-9)
                    }
                }
            }
        }
    }

    /// Probability this candidate improves utility by more than
    /// `threshold` — HeterBO's CI-aware stop statistic.
    fn utility_poi(
        &self,
        scenario: &Scenario,
        total_samples: f64,
        d: &Deployment,
        pred: &mlcd_gp::Prediction,
        incumbent: &Observation,
        threshold: f64,
    ) -> f64 {
        match scenario.objective() {
            Objective::MaxSpeed => prob_improvement(pred, incumbent.speed, threshold),
            Objective::MinCost => {
                let inc_cost =
                    Scenario::training_cost(&incumbent.deployment, total_samples, incumbent.speed)
                        .dollars();
                match cost_belief(pred, total_samples, d.hourly_cost().dollars()) {
                    Some(cb) => {
                        let neg = mlcd_gp::Prediction {
                            mean: -cb.mean,
                            var: cb.var,
                            var_with_noise: cb.var_with_noise,
                        };
                        prob_improvement(&neg, -inc_cost, threshold)
                    }
                    None => 1.0, // too uncertain to rule out: keep searching
                }
            }
        }
    }

    /// The probing-cost penalty (paper eqs. 7–8): time for Scenario-1
    /// (the objective is wall-clock), money when a budget or a cost
    /// objective is in play.
    fn penalty(&self, env: &dyn ProfilingEnv, scenario: &Scenario, d: &Deployment) -> f64 {
        if !self.cfg.cost_penalty {
            return 1.0;
        }
        let (qt, qc) = env.quote(d);
        match scenario {
            Scenario::FastestUnlimited => qt.as_secs(),
            Scenario::CheapestWithDeadline(_) | Scenario::FastestWithBudget(_) => qc.dollars(),
        }
    }

    /// Update the concave-prior pruning map after new observations: for
    /// each type, find the smallest scale-out at which a decline between
    /// neighbouring observed points starts, and prune everything larger.
    fn update_pruning(observations: &[Observation], pruned_above: &mut HashMap<InstanceType, u32>) {
        let mut by_type: HashMap<InstanceType, Vec<(u32, f64)>> = HashMap::new();
        for o in observations {
            by_type.entry(o.deployment.itype).or_default().push((o.deployment.n, o.speed));
        }
        for (t, mut pts) in by_type {
            pts.sort_by_key(|&(n, _)| n);
            for w in pts.windows(2) {
                let (_, s1) = w[0];
                let (n2, s2) = w[1];
                if s2 < s1 * (1.0 - CONCAVE_MARGIN) {
                    let cap = pruned_above.entry(t).or_insert(n2);
                    *cap = (*cap).min(n2);
                    break;
                }
            }
        }
    }

    fn run(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let pool = self.candidate_pool(env);
        if pool.is_empty() {
            return SearchOutcome::empty(StopReason::NothingFeasible);
        }
        let total_samples = env.total_samples();

        let mut observations: Vec<Observation> = Vec::new();
        let mut steps: Vec<SearchStep> = Vec::new();
        let mut pruned_above: HashMap<InstanceType, u32> = HashMap::new();
        let mut probed: Vec<Deployment> = Vec::new();

        let probe = |d: &Deployment,
                     env: &mut dyn ProfilingEnv,
                     observations: &mut Vec<Observation>,
                     steps: &mut Vec<SearchStep>,
                     probed: &mut Vec<Deployment>|
         -> Result<(), ProfileError> {
            let obs = env.profile(d)?;
            observations.push(obs);
            probed.push(*d);
            steps.push(SearchStep {
                index: steps.len() + 1,
                observation: obs,
                cum_profile_time: env.elapsed(),
                cum_profile_cost: env.spent(),
            });
            Ok(())
        };

        // ----- Initialisation -----
        let init_points: Vec<Deployment> = match self.cfg.init {
            InitStrategy::TypeSweep => {
                // One minimal-n probe per type, cheapest hourly rate first.
                let mut types: Vec<InstanceType> = {
                    let mut ts: Vec<InstanceType> = pool.iter().map(|d| d.itype).collect();
                    ts.sort();
                    ts.dedup();
                    ts
                };
                types.sort_by(|a, b| a.hourly_usd().total_cmp(&b.hourly_usd()));
                types
                    .into_iter()
                    .filter_map(|t| {
                        pool.iter().filter(|d| d.itype == t).min_by_key(|d| d.n).copied()
                    })
                    .collect()
            }
            InitStrategy::RandomPoints(k) => {
                let mut shuffled = pool.clone();
                shuffled.shuffle(&mut rng);
                shuffled.into_iter().take(k).collect()
            }
        };
        // Ranking totals: HeterBO counts profiling spend against the
        // constraint; the oblivious baselines rank as if profiling were
        // free (and then pay for it in the executed total).
        let rank_totals = |env: &dyn ProfilingEnv| {
            if self.cfg.account_sunk {
                (env.elapsed(), env.spent())
            } else {
                (mlcd_cloudsim::SimDuration::ZERO, mlcd_cloudsim::Money::ZERO)
            }
        };

        if self.cfg.parallel_init {
            // Concurrent sweep: guard the batch as a whole. Money accrues
            // across the batch — every cluster bills simultaneously — so
            // the budget check runs against the accumulated sum of the
            // quotes kept so far. Wall-clock of a concurrent batch is its
            // *slowest member*, so each candidate is checked against the
            // deadline on its own; admitting one never tightens the check
            // for the next.
            let affordable: Vec<Deployment> = {
                let mut kept = Vec::new();
                let mut acc_c = env.spent();
                for d in &init_points {
                    let (qt, qc) = env.quote(d);
                    let fits = match scenario {
                        Scenario::FastestUnlimited => true,
                        Scenario::CheapestWithDeadline(tmax) => {
                            (env.elapsed() + qt * PROBE_TIME_OVERRUN).as_secs() <= tmax.as_secs()
                        }
                        Scenario::FastestWithBudget(cmax) => {
                            (acc_c + qc.scale(PROBE_COST_OVERRUN)).dollars() <= cmax.dollars()
                        }
                    };
                    if fits || !self.cfg.reserve_protection {
                        acc_c += qc.scale(PROBE_COST_OVERRUN);
                        kept.push(*d);
                    }
                }
                kept
            };
            for (d, result) in affordable.iter().zip(env.profile_batch(&affordable)) {
                if let Ok(obs) = result {
                    observations.push(obs);
                    probed.push(*d);
                    steps.push(SearchStep {
                        index: steps.len() + 1,
                        observation: obs,
                        cum_profile_time: env.elapsed(),
                        cum_profile_cost: env.spent(),
                    });
                }
            }
        } else {
            for d in &init_points {
                let (re, rs) = rank_totals(env);
                let guard_ok = match pick_incumbent(
                    &observations,
                    scenario,
                    total_samples,
                    re,
                    rs,
                    self.cfg.constraint_aware,
                ) {
                    Some(inc) => {
                        let inc = *inc;
                        self.probe_respects_reserve(env, scenario, d, &inc)
                    }
                    None => self.probe_fits_raw(env, scenario, d),
                };
                if !guard_ok {
                    continue;
                }
                let _ = probe(d, env, &mut observations, &mut steps, &mut probed);
            }
        }
        if observations.is_empty() {
            return SearchOutcome::empty(StopReason::NothingFeasible);
        }
        if self.cfg.concave_prior {
            Self::update_pruning(&observations, &mut pruned_above);
        }

        // ----- BO loop -----
        let init_count = steps.len();
        let mut surrogate_state: Option<Surrogate> = None;
        let stop_reason = loop {
            if steps.len() >= init_count + self.cfg.max_steps {
                break StopReason::MaxSteps;
            }
            let (re, rs) = rank_totals(env);
            let incumbent = match pick_incumbent(
                &observations,
                scenario,
                total_samples,
                re,
                rs,
                self.cfg.constraint_aware,
            ) {
                Some(i) => *i,
                None => break StopReason::NothingFeasible,
            };
            let inc_utility =
                scenario.utility(&incumbent.deployment, total_samples, incumbent.speed);
            let threshold = self.cfg.ei_rel_threshold * inc_utility.abs().max(1e-9);

            let unprobed: Vec<Deployment> = pool
                .iter()
                .filter(|d| !probed.contains(d))
                .filter(|d| pruned_above.get(&d.itype).is_none_or(|&cap| d.n <= cap))
                .copied()
                .collect();
            if unprobed.is_empty() {
                break StopReason::SpaceExhausted;
            }

            surrogate_state = Surrogate::update(
                surrogate_state.take(),
                env.space(),
                &observations,
                self.cfg.seed,
                &RefitPolicy {
                    refit_every: self.cfg.gp_refit_every,
                    warm_start: self.cfg.gp_warm_start,
                    warm_burnin: self.cfg.gp_warm_burnin,
                    warm_restarts: self.cfg.gp_warm_restarts,
                },
            );
            let Some(ref surrogate) = surrogate_state else {
                // Not enough data for a model yet: explore a random
                // reserve-respecting candidate.
                let mut shuffled = unprobed.clone();
                shuffled.shuffle(&mut rng);
                let pick = shuffled
                    .iter()
                    .find(|d| self.probe_respects_reserve(env, scenario, d, &incumbent));
                match pick {
                    Some(d) => {
                        let d = *d;
                        let _ = probe(&d, env, &mut observations, &mut steps, &mut probed);
                        if self.cfg.concave_prior {
                            Self::update_pruning(&observations, &mut pruned_above);
                        }
                        continue;
                    }
                    None => break StopReason::ReserveProtection,
                }
            };

            // One batched GP posterior over the whole pool per step —
            // shared by the acquisition scoring, the frontier filter and
            // the CI-stop scan below, so each candidate costs exactly one
            // prediction per step.
            let preds = surrogate.predict_batch(env.space(), &unprobed);
            let pred_of = |d: &Deployment| unprobed.iter().position(|u| u == d).map(|i| &preds[i]);
            let incumbent_ok = Self::incumbent_feasible(env, scenario, &incumbent);
            // Budget-rescue mode: see `tei_feasible` — an infeasible budget
            // incumbent turns the TEI filter on regardless of how young the
            // surrogate is.
            let budget_rescue = !incumbent_ok && matches!(scenario, Scenario::FastestWithBudget(_));

            // Score every candidate.
            let mut any_reserve_blocked = false;
            let mut best: Option<(
                Deployment,
                f64, /*score*/
                f64, /*poi*/
                f64, /*ei*/
            )> = None;
            // Candidates that pass the reserve but fail TEI — kept around
            // for the cold-start exploration fallback below.
            let mut tei_blocked: Vec<(Deployment, f64 /*optimistic speed*/)> = Vec::new();
            let rates = Self::per_type_speed_rate(&observations);
            for (d, pred) in unprobed.iter().zip(&preds) {
                if !self.probe_respects_reserve(env, scenario, d, &incumbent) {
                    any_reserve_blocked = true;
                    continue;
                }
                if !self.tei_feasible(
                    env,
                    scenario,
                    d,
                    pred,
                    observations.len(),
                    &rates,
                    budget_rescue,
                ) {
                    tei_blocked.push((*d, pred.mean + TEI_SIGMAS * pred.stddev()));
                    continue;
                }
                let ei = self.utility_ei(scenario, total_samples, d, pred, &incumbent);
                let poi = self.utility_poi(scenario, total_samples, d, pred, &incumbent, threshold);
                let score = ei / self.penalty(env, scenario, d);
                if best.as_ref().is_none_or(|b| score > b.1) {
                    best = Some((*d, score, poi, ei));
                }
            }

            // Frontier exploration from the concave prior's rising branch:
            // un-bent types whose next scale-out step could still pay.
            // When a deadline incumbent is infeasible, the frontier chases
            // raw speed (feasibility first); its bonus then lives in speed
            // units and must pre-empt the cost-unit EI comparison rather
            // than join it.
            let chase_speed = !incumbent_ok && scenario.objective() == Objective::MinCost;
            let frontier = self.frontier_candidates(
                &unprobed,
                &observations,
                &pruned_above,
                &rates,
                scenario,
                &incumbent,
                chase_speed,
            );
            let mut max_frontier_bonus = 0.0_f64;
            let mut forced_frontier: Option<(Deployment, f64)> = None;
            for (d, bonus) in &frontier {
                if !self.probe_respects_reserve(env, scenario, d, &incumbent) {
                    any_reserve_blocked = true;
                    continue;
                }
                // While rescuing a busted budget, a frontier step whose own
                // completion cannot fit is as useless as any other — apply
                // the same TEI filter the scored candidates went through.
                if budget_rescue {
                    if let Some(pred) = pred_of(d) {
                        if !self.tei_feasible(
                            env,
                            scenario,
                            d,
                            pred,
                            observations.len(),
                            &rates,
                            budget_rescue,
                        ) {
                            tei_blocked.push((*d, pred.mean + TEI_SIGMAS * pred.stddev()));
                            continue;
                        }
                    }
                }
                max_frontier_bonus = max_frontier_bonus.max(*bonus);
                let score = bonus / self.penalty(env, scenario, d);
                if chase_speed {
                    if forced_frontier.as_ref().is_none_or(|f| score > f.1) {
                        forced_frontier = Some((*d, score));
                    }
                } else if best.as_ref().is_none_or(|b| score > b.1) {
                    best = Some((*d, score, 1.0, *bonus));
                }
            }
            if let Some((d_force, _)) = forced_frontier {
                let _ = probe(&d_force, env, &mut observations, &mut steps, &mut probed);
                if self.cfg.concave_prior {
                    Self::update_pruning(&observations, &mut pruned_above);
                }
                continue;
            }

            let Some((d_next, _, _, best_ei)) = best else {
                // Cold-start escape hatch: TEI judged every candidate
                // hopeless, but the judgment rests on a near-empty model
                // and we hold no feasible incumbent to retreat to. The
                // constraint may well still be reachable at scales the GP
                // knows nothing about — explore the most optimistic
                // blocked candidate (raw guard already vetted) instead of
                // giving up with an infeasible answer.
                let hatch_open = match scenario {
                    Scenario::FastestUnlimited => true,
                    Scenario::CheapestWithDeadline(tmax) => {
                        env.elapsed().as_secs() < HATCH_FRACTION * tmax.as_secs()
                    }
                    Scenario::FastestWithBudget(cmax) => {
                        env.spent().dollars() < HATCH_FRACTION * cmax.dollars()
                    }
                };
                if hatch_open && !incumbent_ok && !tei_blocked.is_empty() {
                    let (d_explore, _) = tei_blocked
                        .iter()
                        .max_by(|a, b| a.1.total_cmp(&b.1))
                        .copied()
                        .expect("non-empty");
                    let _ = probe(&d_explore, env, &mut observations, &mut steps, &mut probed);
                    if self.cfg.concave_prior {
                        Self::update_pruning(&observations, &mut pruned_above);
                    }
                    continue;
                }
                break if any_reserve_blocked {
                    StopReason::ReserveProtection
                } else {
                    StopReason::SpaceExhausted
                };
            };

            // Stop tests — only once the surrogate rests on enough data to
            // be trusted about "nothing left to gain", and never while a
            // promising frontier step remains unexplored.
            let may_converge = observations.len() >= self.cfg.min_obs_before_stop
                && max_frontier_bonus < threshold;
            if !may_converge {
                // Fall through to probing without a convergence check.
            } else if self.cfg.ci_stop {
                // Stop when no candidate retains a real chance of a
                // meaningful improvement.
                // Reuse the batched posterior computed above — the pool has
                // not changed within this step.
                let max_poi = unprobed
                    .iter()
                    .zip(&preds)
                    .map(|(d, pred)| {
                        self.utility_poi(scenario, total_samples, d, pred, &incumbent, threshold)
                    })
                    .fold(0.0_f64, f64::max);
                if max_poi < CI_ALPHA {
                    break StopReason::Converged;
                }
            } else if best_ei < threshold {
                break StopReason::Converged;
            }

            if probe(&d_next, env, &mut observations, &mut steps, &mut probed).is_err() {
                // Cloud refused (quota etc.) — drop it from the pool by
                // marking it probed, and continue.
                probed.push(d_next);
                continue;
            }
            if self.cfg.concave_prior {
                Self::update_pruning(&observations, &mut pruned_above);
            }
        };

        let (re, rs) = rank_totals(env);
        let best = pick_incumbent(&observations, scenario, total_samples, re, rs, true).copied();
        SearchOutcome {
            best,
            steps,
            profile_time: env.elapsed(),
            profile_cost: env.spent(),
            stop_reason,
        }
    }
}

impl Searcher for BoCore {
    fn name(&self) -> &'static str {
        self.name
    }

    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.run(env, scenario)
    }
}

/// HeterBO — the paper's searcher: type-sweep init, cost-penalised
/// constraint-aware acquisition, protective reserve, concave prior,
/// CI-aware stop.
///
/// ```
/// use mlcd::prelude::*;
/// use mlcd::deployment::{Deployment, SearchSpace};
/// use mlcd::env::SyntheticEnv;
///
/// // A synthetic response surface: concave in n, peaking at n = 20.
/// let space = SearchSpace::new(
///     &[InstanceType::C54xlarge],
///     50,
///     &TrainingJob::resnet_cifar10(),
///     &ThroughputModel::default(),
/// );
/// let f = |d: &Deployment| (500.0 - 0.9 * (d.n as f64 - 20.0).powi(2)).max(20.0);
/// let mut env = SyntheticEnv::new(space, 5e6, f);
///
/// let outcome = HeterBo::seeded(1).search(&mut env, &Scenario::FastestUnlimited);
/// let best = outcome.best.unwrap();
/// assert!(best.speed > 450.0); // near the 500-samples/s optimum
/// ```
pub struct HeterBo(BoCore);

impl HeterBo {
    /// HeterBO with a seed.
    pub fn seeded(seed: u64) -> Self {
        HeterBo(BoCore::new(
            "HeterBO",
            BoConfig {
                init: InitStrategy::TypeSweep,
                ei_rel_threshold: 0.10,
                ci_stop: true,
                cost_penalty: true,
                constraint_aware: true,
                reserve_protection: true,
                concave_prior: true,
                // HeterBO's whole design is probe economy; the paper's
                // trajectories finish in 7–9 probes total (type sweep +
                // a handful of BO steps). The CI stop and the reserve end
                // most searches before this cap.
                max_steps: 8,
                min_obs_before_stop: 6,
                account_sunk: true,
                parallel_init: false,
                acquisition: AcquisitionKind::ExpectedImprovement,
                gp_refit_every: 1,
                gp_warm_start: false,
                gp_warm_burnin: 8,
                gp_warm_restarts: 3,
                seed,
            },
        ))
    }

    /// HeterBO with the initial type sweep run as one concurrent batch of
    /// clusters — same money, wall-clock of the slowest probe only. An
    /// extension beyond the paper (its sweep is sequential).
    pub fn with_parallel_init(seed: u64) -> Self {
        let mut h = HeterBo::seeded(seed);
        h.0.cfg.parallel_init = true;
        h
    }

    /// Access the underlying core (for ablation tweaks).
    pub fn core(self) -> BoCore {
        self.0
    }
}

impl Default for HeterBo {
    fn default() -> Self {
        HeterBo::seeded(0)
    }
}

impl Searcher for HeterBo {
    fn name(&self) -> &'static str {
        "HeterBO"
    }
    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.0.search(env, scenario)
    }
}

/// Conventional BO: random init, plain EI, oblivious to cost and
/// constraints.
pub struct ConvBo(BoCore);

impl ConvBo {
    /// ConvBO with a seed.
    pub fn seeded(seed: u64) -> Self {
        ConvBo(BoCore::new("ConvBO", Self::base_config(seed)))
    }

    fn base_config(seed: u64) -> BoConfig {
        BoConfig {
            init: InitStrategy::RandomPoints(2),
            // Conventional BO keeps polishing until EI is truly exhausted —
            // this is the "over-exploration" the paper measures: its
            // profiling phase rivals the training run it is optimising.
            ei_rel_threshold: 0.001,
            ci_stop: false,
            cost_penalty: false,
            constraint_aware: false,
            reserve_protection: false,
            concave_prior: false,
            max_steps: 28,
            min_obs_before_stop: 12,
            account_sunk: false,
            parallel_init: false,
            acquisition: AcquisitionKind::ExpectedImprovement,
            gp_refit_every: 1,
            gp_warm_start: false,
            gp_warm_burnin: 8,
            gp_warm_restarts: 3,
            seed,
        }
    }

    /// The Fig 18 "BO_imprd" variant: ConvBO plus the protective budget
    /// reserve (so it stops profiling in time) — but still cost-oblivious
    /// in *where* it probes.
    pub fn budget_aware(seed: u64) -> BoCore {
        BoCore::new(
            "BO_imprd",
            BoConfig {
                reserve_protection: true,
                constraint_aware: true,
                account_sunk: true,
                ..Self::base_config(seed)
            },
        )
    }
}

impl Default for ConvBo {
    fn default() -> Self {
        ConvBo::seeded(0)
    }
}

impl Searcher for ConvBo {
    fn name(&self) -> &'static str {
        "ConvBO"
    }
    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.0.search(env, scenario)
    }
}

/// CherryPick (NSDI'17): ConvBO plus experience-based space trimming, a
/// coarse scale-out grid, 3 random initial probes and the documented 10 %
/// EI stop rule.
pub struct CherryPick(BoCore);

impl CherryPick {
    /// The default coarse scale-out grid CherryPick samples.
    pub const DEFAULT_NODE_GRID: [u32; 11] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48];

    /// CherryPick with a seed, searching all types on the coarse grid.
    pub fn seeded(seed: u64) -> Self {
        CherryPick(
            BoCore::new("CherryPick", Self::base_config(seed))
                .with_node_grid(Self::DEFAULT_NODE_GRID.to_vec()),
        )
    }

    /// CherryPick with its search space trimmed "based on experience" to
    /// the given types (the paper grants it this prior knowledge to favour
    /// it).
    pub fn with_experience(seed: u64, types: Vec<InstanceType>) -> Self {
        CherryPick(
            BoCore::new("CherryPick", Self::base_config(seed))
                .with_node_grid(Self::DEFAULT_NODE_GRID.to_vec())
                .with_types(types),
        )
    }

    fn base_config(seed: u64) -> BoConfig {
        BoConfig {
            init: InitStrategy::RandomPoints(3),
            ei_rel_threshold: 0.10,
            ci_stop: false,
            cost_penalty: false,
            constraint_aware: false,
            reserve_protection: false,
            concave_prior: false,
            max_steps: 27,
            min_obs_before_stop: 10,
            account_sunk: false,
            parallel_init: false,
            acquisition: AcquisitionKind::ExpectedImprovement,
            gp_refit_every: 1,
            gp_warm_start: false,
            gp_warm_burnin: 8,
            gp_warm_restarts: 3,
            seed,
        }
    }

    /// The Fig 18 "CP_imprd" variant: CherryPick plus the protective
    /// reserve, optionally with trimmed types.
    pub fn budget_aware(seed: u64, types: Option<Vec<InstanceType>>) -> BoCore {
        let core = BoCore::new(
            "CP_imprd",
            BoConfig {
                reserve_protection: true,
                constraint_aware: true,
                account_sunk: true,
                ..Self::base_config(seed)
            },
        )
        .with_node_grid(Self::DEFAULT_NODE_GRID.to_vec());
        match types {
            Some(t) => core.with_types(t),
            None => core,
        }
    }
}

impl Default for CherryPick {
    fn default() -> Self {
        CherryPick::seeded(0)
    }
}

impl Searcher for CherryPick {
    fn name(&self) -> &'static str {
        "CherryPick"
    }
    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.0.search(env, scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::SearchSpace;
    use crate::env::SyntheticEnv;
    use mlcd_cloudsim::{Money, SimDuration};
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    /// Concave single-type response surface peaking at n = 20.
    fn concave_speed(d: &Deployment) -> f64 {
        let base = match d.itype {
            InstanceType::C54xlarge => 1.0,
            InstanceType::C5Xlarge => 0.4,
            InstanceType::P2Xlarge => 0.5,
            _ => 0.3,
        };
        base * (500.0 - 0.9 * (d.n as f64 - 20.0).powi(2)).max(20.0)
    }

    fn make_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
        let job = TrainingJob::resnet_cifar10();
        let space = SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
            50,
            &job,
            &ThroughputModel::default(),
        );
        SyntheticEnv::new(space, 5e6, concave_speed as fn(&Deployment) -> f64)
    }

    #[test]
    fn heterbo_finds_near_optimal_deployment() {
        let mut env = make_env();
        let out = HeterBo::seeded(1).search(&mut env, &Scenario::FastestUnlimited);
        let best = out.best.expect("should find something");
        // True optimum: c5.4xlarge n=20 at 500 samples/s.
        assert_eq!(best.deployment.itype, InstanceType::C54xlarge);
        assert!(best.speed > 450.0, "found {} at {}, want near 500", best.speed, best.deployment);
    }

    #[test]
    fn heterbo_initialises_with_single_nodes() {
        let mut env = make_env();
        let out = HeterBo::seeded(2).search(&mut env, &Scenario::FastestUnlimited);
        // First three probes are the three types at n=1, cheapest first.
        assert!(out.steps.len() >= 3);
        for step in &out.steps[..3] {
            assert_eq!(step.observation.deployment.n, 1, "init probe {:?}", step.observation);
        }
        assert_eq!(out.steps[0].observation.deployment.itype, InstanceType::C5Xlarge);
    }

    #[test]
    fn heterbo_respects_budget() {
        let mut env = make_env();
        let budget = Money::from_dollars(60.0);
        let out = HeterBo::seeded(3).search(&mut env, &Scenario::FastestWithBudget(budget));
        let best = out.best.expect("should find something");
        let train_cost = Scenario::training_cost(&best.deployment, 5e6, best.speed);
        let total = out.profile_cost + train_cost;
        assert!(
            total.dollars() <= budget.dollars() + 1e-6,
            "HeterBO blew the budget: profiling {} + training {} > {}",
            out.profile_cost,
            train_cost,
            budget
        );
    }

    #[test]
    fn heterbo_respects_deadline() {
        let mut env = make_env();
        let deadline = SimDuration::from_hours(6.0);
        let out = HeterBo::seeded(4).search(&mut env, &Scenario::CheapestWithDeadline(deadline));
        let best = out.best.expect("should find something");
        let train_t = Scenario::training_time(5e6, best.speed);
        assert!(
            (out.profile_time + train_t).as_hours() <= deadline.as_hours() + 1e-9,
            "HeterBO blew the deadline: profiling {:.2} h + training {:.2} h",
            out.profile_time.as_hours(),
            train_t.as_hours()
        );
    }

    #[test]
    fn heterbo_cheaper_profiling_than_convbo() {
        // The headline claim, on the synthetic surface, in the scenario
        // where it is structural: under a budget, HeterBO's cost-penalised
        // acquisition and protective reserve keep probing spend low while
        // ConvBO probes wherever EI points. Averaged over seeds to avoid
        // single-draw luck.
        let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));
        let (mut h_cost, mut c_cost, mut h_speed, mut c_speed) = (0.0, 0.0, 0.0, 0.0);
        for seed in 0..3 {
            let mut env_h = make_env();
            let h = HeterBo::seeded(seed).search(&mut env_h, &scenario);
            let mut env_c = make_env();
            let c = ConvBo::seeded(seed).search(&mut env_c, &scenario);
            h_cost += h.profile_cost.dollars();
            c_cost += c.profile_cost.dollars();
            h_speed += h.best.unwrap().speed;
            c_speed += c.best.unwrap().speed;
        }
        assert!(
            h_cost < c_cost,
            "HeterBO mean profiling ${:.2} vs ConvBO ${:.2}",
            h_cost / 3.0,
            c_cost / 3.0
        );
        // And it still finds comparable deployments on average.
        assert!(h_speed >= c_speed * 0.8, "HeterBO {h_speed} vs ConvBO {c_speed}");
    }

    #[test]
    fn concave_prior_prunes_scale_out() {
        // After observing a decline, no probe of that type goes further out.
        let mut env = make_env();
        let out = HeterBo::seeded(6).search(&mut env, &Scenario::FastestUnlimited);
        // Find, per type, the first adjacent-observed decline; later steps
        // must not exceed it.
        let mut decline_at: HashMap<InstanceType, u32> = HashMap::new();
        let mut seen: Vec<Observation> = Vec::new();
        for step in &out.steps {
            let o = step.observation;
            if let Some(&cap) = decline_at.get(&o.deployment.itype) {
                assert!(
                    o.deployment.n <= cap,
                    "probed {} beyond pruned cap {} (step {})",
                    o.deployment,
                    cap,
                    step.index
                );
            }
            seen.push(o);
            let mut map = HashMap::new();
            BoCore::update_pruning(&seen, &mut map);
            decline_at = map;
        }
    }

    #[test]
    fn convbo_ignores_constraints_and_can_violate() {
        // With a tiny budget, ConvBO happily profiles expensive clusters.
        let mut env = make_env();
        let budget = Money::from_dollars(5.0);
        let out = ConvBo::seeded(7).search(&mut env, &Scenario::FastestWithBudget(budget));
        // ConvBO still returns its objective-best; its profiling spend alone
        // may exceed the budget.
        assert!(out.best.is_some());
        let total = out.profile_cost;
        // (Not asserting violation must happen for every seed — but the
        // search must NOT have stopped due to reserve protection.)
        assert_ne!(out.stop_reason, StopReason::ReserveProtection);
        let _ = total;
    }

    #[test]
    fn budget_aware_variants_stop_in_time() {
        let budget = Money::from_dollars(40.0);
        let scenario = Scenario::FastestWithBudget(budget);
        for core in [ConvBo::budget_aware(8), CherryPick::budget_aware(8, None)] {
            let mut env = make_env();
            let out = core.search(&mut env, &scenario);
            if let Some(best) = out.best {
                let train = Scenario::training_cost(&best.deployment, 5e6, best.speed);
                assert!(
                    (out.profile_cost + train).dollars() <= budget.dollars() + 1e-6,
                    "{}: profiling {} + training {}",
                    core.name(),
                    out.profile_cost,
                    train
                );
            }
        }
    }

    #[test]
    fn cherrypick_sticks_to_coarse_grid_and_trimmed_types() {
        let mut env = make_env();
        let cp = CherryPick::with_experience(9, vec![InstanceType::C54xlarge]);
        let out = cp.search(&mut env, &Scenario::FastestUnlimited);
        for step in &out.steps {
            let d = step.observation.deployment;
            assert_eq!(d.itype, InstanceType::C54xlarge);
            assert!(CherryPick::DEFAULT_NODE_GRID.contains(&d.n), "off-grid probe {d}");
        }
        assert!(out.best.is_some());
    }

    #[test]
    fn ucb_and_poi_acquisitions_also_find_the_optimum() {
        // The acquisition choice is pluggable; on the easy synthetic
        // surface every standard kind should land near the peak.
        for kind in [
            AcquisitionKind::UpperConfidenceBound { kappa: 2.0 },
            AcquisitionKind::ProbabilityOfImprovement { margin_frac: 0.02 },
        ] {
            let mut cfg = HeterBo::seeded(21).core().config().clone();
            cfg.acquisition = kind;
            let core = BoCore::new("acq-variant", cfg);
            let mut env = make_env();
            let out = core.search(&mut env, &Scenario::FastestUnlimited);
            let best = out.best.expect("found something");
            assert!(
                best.speed > 430.0,
                "{kind:?} found only {} at {}",
                best.speed,
                best.deployment
            );
        }
    }

    #[test]
    fn parallel_init_probes_the_same_points() {
        // On the synthetic env (no concurrency support → sequential
        // fallback) parallel-init must behave identically.
        let mut env_a = make_env();
        let a = HeterBo::seeded(13).search(&mut env_a, &Scenario::FastestUnlimited);
        let mut env_b = make_env();
        let b = HeterBo::with_parallel_init(13).search(&mut env_b, &Scenario::FastestUnlimited);
        let firsts = |o: &SearchOutcome| {
            o.steps.iter().take(3).map(|s| s.observation.deployment).collect::<Vec<_>>()
        };
        assert_eq!(firsts(&a), firsts(&b));
        assert_eq!(a.best.unwrap().deployment, b.best.unwrap().deployment);
    }

    #[test]
    fn searches_are_deterministic_per_seed() {
        let run = |seed| {
            let mut env = make_env();
            let out = HeterBo::seeded(seed).search(&mut env, &Scenario::FastestUnlimited);
            (out.best.map(|b| b.deployment), out.steps.len())
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn warm_started_searches_are_deterministic_at_every_burnin_boundary() {
        // The warm-start restart shrink kicks in when the observation count
        // crosses `gp_warm_burnin` mid-search. Wherever that boundary
        // lands — never (large burn-in), immediately (0), or mid-loop —
        // two runs with the same seed must produce identical trajectories,
        // step for step and observation for observation.
        for burnin in [0usize, 4, 6, 100] {
            let run = || {
                let mut h = HeterBo::seeded(17);
                h.0.cfg.gp_warm_start = true;
                h.0.cfg.gp_warm_burnin = burnin;
                let mut env = make_env();
                h.search(&mut env, &Scenario::FastestUnlimited)
            };
            let (a, b) = (run(), run());
            assert_eq!(a.steps.len(), b.steps.len(), "burnin {burnin}");
            for (x, y) in a.steps.iter().zip(&b.steps) {
                assert_eq!(x.observation.deployment, y.observation.deployment);
                assert_eq!(x.observation.speed, y.observation.speed);
                assert_eq!(x.observation.profile_cost, y.observation.profile_cost);
            }
            assert_eq!(
                a.best.map(|o| o.deployment),
                b.best.map(|o| o.deployment),
                "burnin {burnin}"
            );
            assert_eq!(a.profile_cost, b.profile_cost);
            assert_eq!(a.profile_time, b.profile_time);
        }
    }

    #[test]
    fn warm_start_on_is_still_deterministic_and_finds_the_optimum() {
        let run = || {
            let mut h = HeterBo::seeded(19);
            h.0.cfg.gp_warm_start = true;
            let mut env = make_env();
            h.search(&mut env, &Scenario::FastestUnlimited)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best.as_ref().unwrap().deployment, b.best.as_ref().unwrap().deployment);
        assert_eq!(a.steps.len(), b.steps.len());
        assert!(a.best.unwrap().speed > 430.0);
    }

    #[test]
    fn empty_space_yields_nothing_feasible() {
        // A pool emptied by type restriction.
        let mut env = make_env();
        let core =
            BoCore::new("empty", ConvBo::base_config(0)).with_types(vec![InstanceType::C5n9xlarge]);
        let out = core.search(&mut env, &Scenario::FastestUnlimited);
        assert!(out.best.is_none());
        assert_eq!(out.stop_reason, StopReason::NothingFeasible);
    }

    #[test]
    fn max_steps_is_respected() {
        let mut env = make_env();
        let mut cfg = ConvBo::base_config(1);
        cfg.ei_rel_threshold = 0.0; // never converge
        cfg.max_steps = 5;
        let out = BoCore::new("capped", cfg).search(&mut env, &Scenario::FastestUnlimited);
        // max_steps caps BO-loop probes; the 2 random init probes are extra.
        assert_eq!(out.steps.len(), 2 + 5);
        assert_eq!(out.stop_reason, StopReason::MaxSteps);
    }
}
